//! Property-based tests (proptest) of the classification machinery and the
//! solvers: the combinatorial lemmas of Section 4, the monotonicity of the
//! complexity classes, and end-to-end agreement between the dispatcher and
//! the oracle on randomly generated queries and instances.

use proptest::prelude::*;

use path_cqa::prelude::*;

/// A random word over a small alphabet, as a `String` of single letters.
fn word_strategy(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('R'), Just('S'), Just('T')], 1..=max_len)
        .prop_map(|chars| chars.into_iter().collect())
}

/// A random small database instance over the given letters.
fn instance_strategy(letters: &'static str) -> impl Strategy<Value = Vec<(char, u8, u8)>> {
    let letter = proptest::sample::select(letters.chars().collect::<Vec<char>>());
    proptest::collection::vec((letter, 0u8..5, 0u8..5), 1..12)
}

fn build_db(facts: &[(char, u8, u8)]) -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    for &(rel, a, b) in facts {
        db.insert_parsed(&rel.to_string(), &format!("v{a}"), &format!("v{b}"));
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: C1 ⇒ C2 ⇒ C3, and the B-forms match (Lemmas 1–3).
    #[test]
    fn conditions_form_a_chain_and_match_the_regex_forms(word in word_strategy(6)) {
        let w = Word::from_letters(&word);
        let c1 = satisfies_c1(&w);
        let c2 = satisfies_c2(&w);
        let c3 = satisfies_c3(&w);
        prop_assert!(!c1 || c2, "C1 must imply C2 for {word}");
        prop_assert!(!c2 || c3, "C2 must imply C3 for {word}");
        prop_assert_eq!(c1, satisfies_b1(&w), "Lemma 1 fails for {}", &word);
        prop_assert_eq!(c2, satisfies_b2a(&w) || satisfies_b2b(&w), "Lemma 3 fails for {}", &word);
        prop_assert_eq!(
            c3,
            satisfies_b2a(&w) || satisfies_b2b(&w) || satisfies_b3(&w),
            "Lemma 2 fails for {}", &word
        );
    }

    /// Rewinding never makes a condition easier to satisfy in the wrong
    /// direction: if `q` satisfies C1 then `q` is a prefix of each single
    /// rewind; if it satisfies C3 then a factor (Lemma 5, bounded form).
    #[test]
    fn rewinds_respect_prefix_and_factor_containment(word in word_strategy(6)) {
        let w = Word::from_letters(&word);
        for (_, _, rewound) in w.rewinds() {
            if satisfies_c1(&w) {
                prop_assert!(w.is_prefix_of(&rewound));
            }
            if satisfies_c3(&w) {
                prop_assert!(w.is_factor_of(&rewound));
            }
        }
    }

    /// The strict B2b decomposition, when it exists, reassembles the query
    /// and has a self-join-free core.
    #[test]
    fn strict_decompositions_reassemble(word in word_strategy(6)) {
        let w = Word::from_letters(&word);
        if let Some(dec) = b2b_strict_decomposition(&w) {
            prop_assert_eq!(dec.reassemble(), w);
            prop_assert!(dec.u.concat(&dec.v).concat(&dec.w).is_self_join_free());
            prop_assert!(dec.k >= 1);
        }
    }

    /// NFA(q) accepts the query itself and every single-step rewind of it.
    ///
    /// Note: the full closure `L↬(q)` of Definition 4 is *not* always
    /// accepted — rewinding an already-rewound word at a position that is not
    /// aligned with a prefix of `q` can leave the automaton's language (e.g.
    /// `q = TSST` and the twice-rewound word `TSSTSTSST`); see the remark in
    /// DESIGN.md. The paper's algorithms only use the automaton itself, which
    /// is what the solvers here are built on and validated against.
    #[test]
    fn query_nfa_accepts_single_rewinds(word in word_strategy(5)) {
        let w = Word::from_letters(&word);
        let q = PathQuery::new(w.clone()).unwrap();
        let a = QueryNfa::new(&q);
        prop_assert!(a.accepts(&w));
        for (_, _, p) in w.rewinds() {
            prop_assert!(a.accepts(&p), "NFA({}) must accept {}", w, p);
        }
    }

    /// End-to-end: the dispatcher agrees with the exhaustive oracle on random
    /// queries and random instances (capped repair count).
    #[test]
    fn dispatcher_agrees_with_oracle(
        word in word_strategy(4),
        facts in instance_strategy("RST"),
    ) {
        let q = PathQuery::parse(&word).unwrap();
        let db = build_db(&facts);
        prop_assume!(db.repair_count() <= 1 << 10);
        let expected = NaiveSolver::default().certain(&q, &db).unwrap();
        let got = solve_certainty(&q, &db).unwrap();
        prop_assert_eq!(got, expected, "query {} on {:?}", &word, &db);
    }

    /// The SAT-based solver agrees with the oracle on arbitrary queries.
    #[test]
    fn sat_solver_agrees_with_oracle(
        word in word_strategy(4),
        facts in instance_strategy("RST"),
    ) {
        let q = PathQuery::parse(&word).unwrap();
        let db = build_db(&facts);
        prop_assume!(db.repair_count() <= 1 << 10);
        let expected = NaiveSolver::default().certain(&q, &db).unwrap();
        let got = SatCertaintySolver::default().certain(&q, &db).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Adding a constant cap never turns a tractable query intractable
    /// (Theorem 5: with constants there is no PTIME-complete case), and the
    /// generalized solver agrees with the generalized oracle.
    #[test]
    fn generalized_queries_are_consistent_with_the_oracle(
        word in word_strategy(3),
        facts in instance_strategy("RST"),
        cap in 0u8..5,
    ) {
        let q = PathQuery::parse(&word).unwrap();
        let db = build_db(&facts);
        prop_assume!(db.repair_count() <= 1 << 10);
        let capped = q.ending_at(Symbol::new(&format!("v{cap}")));
        let class = classify_generalized(&capped).class;
        prop_assert_ne!(class, ComplexityClass::PtimeComplete);
        if class != ComplexityClass::CoNpComplete {
            let solver = GeneralizedSolver::new();
            let expected = NaiveSolver::default().certain_generalized(&capped, &db).unwrap();
            prop_assert_eq!(solver.certain(&capped, &db).unwrap(), expected);
        }
    }

    /// Repairs produced by the iterator are exactly the maximal consistent
    /// subinstances: right count, all consistent, all subsets.
    #[test]
    fn repair_enumeration_invariants(facts in instance_strategy("RS")) {
        let db = build_db(&facts);
        prop_assume!(db.repair_count() <= 1 << 8);
        let repairs: Vec<ConsistentInstance> = db.repairs().collect();
        prop_assert_eq!(repairs.len() as u128, db.repair_count());
        for r in &repairs {
            prop_assert!(r.is_repair_of(&db));
        }
        // Pairwise distinct.
        for i in 0..repairs.len() {
            for j in i + 1..repairs.len() {
                prop_assert_ne!(&repairs[i], &repairs[j]);
            }
        }
    }
}
