#!/usr/bin/env bash
# Runs the Datalog-relevant benchmarks and assembles BENCH_datalog.json at
# the repository root: one entry per benchmark with the median ns/iter, for
# the `datalog_engine` (scan vs indexed before/after, plus warm-plan runs),
# `nl_vs_ptime`, `certainty_scaling`, `session_batch` (warm sessions vs
# cold per-call dispatch, including a 4-thread batch fan-out),
# `datalog_parallel` (stratum evaluation at 1/2/4/8 worker threads),
# `session_cow` (copy-on-write shared-prefix families vs fresh-load,
# store-build amortization isolated), `server_throughput` (live loopback
# cqa-server vs direct in-process session calls on the same multi-tenant
# stream — the wire/dispatch overhead), `demand_transform` (demand-driven
# derivation off vs prune vs magic on goal-sparse, route-level and family
# workloads), `binary_kernels` (shape-specialized kernels off vs on over
# tc chains, the warm RRX route and shared-prefix family batches),
# `incremental` (checkpointed base derivation vs from-scratch on warm
# resident-family batches and live mutate-requery loops) and
# `server_saturation` (4 client threads racing the bounded work queue with
# a mixed QUERY/APPEND stream; prints the METRICS queue-wait vs
# service-time split and asserts the exposition's required families)
# suites. `server_throughput` carries the trace-knob overhead pair:
# `loopback_server` runs with PATH_CQA_TRACE off (always-on recorder only
# — its ratio against the checked-in baseline is the instrumentation
# overhead, budget <2%) and `loopback_trace_on` with spans on (the ratio
# between the two arms is the trace-knob cost).
# Before overwriting BENCH_datalog.json, fresh medians are diffed against the
# checked-in baseline with per-entry ratios, so regressions are visible in
# the run's own output instead of only in the git diff.
# Future PRs re-run this script to extend the perf trajectory; thread-scaling
# entries are only comparable against same-host baselines.
#
# Usage: scripts/bench_datalog.sh
# Knobs: CQA_BENCH_TARGET_MS (per-benchmark budget, default 300),
#        CQA_BENCH_MAX_FACTS / CQA_BENCH_SCAN_CUTOFF (instance-size caps,
#        used by the CI smoke job to stay at ~10^3 facts).

set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with their package directory as
# cwd, so a relative path would land inside crates/bench/.
jsonl="$(pwd)/target/bench_datalog.jsonl"
mkdir -p target
rm -f "$jsonl"

CQA_BENCH_JSON="$jsonl" cargo bench -p cqa-bench \
    --bench datalog_engine \
    --bench nl_vs_ptime \
    --bench certainty_scaling \
    --bench session_batch \
    --bench session_cow \
    --bench parallel_scaling \
    --bench server_throughput \
    --bench demand_transform \
    --bench binary_kernels \
    --bench incremental \
    --bench server_saturation

# Per-entry ratio diff against the checked-in baseline (fresh/baseline: < 1
# is faster, > 1 slower). New entries print "(new)"; nothing fails here —
# the numbers are for the operator re-anchoring the baseline.
if [ -f BENCH_datalog.json ]; then
    echo "--- vs checked-in BENCH_datalog.json (fresh/baseline) ---"
    python3 - "$jsonl" <<'EOF'
import json, sys
fresh = [json.loads(line) for line in open(sys.argv[1])]
baseline = {
    (b["group"], b["id"]): b["median_ns"]
    for b in json.load(open("BENCH_datalog.json"))["benches"]
}
for b in fresh:
    key = (b["group"], b["id"])
    name = f'{b["group"]}/{b["id"]}'
    if key in baseline and baseline[key] > 0:
        print(f'  {name}: {b["median_ns"] / baseline[key]:.2f}x')
    else:
        print(f'  {name}: (new)')
EOF
fi

rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
{
    echo '{'
    echo "  \"revision\": \"${rev}\","
    echo '  "unit": "median_ns_per_iter",'
    echo '  "benches": ['
    sed 's/^/    /' "$jsonl" | sed '$!s/$/,/'
    echo '  ]'
    echo '}'
} > BENCH_datalog.json

echo "wrote BENCH_datalog.json ($(grep -c median_ns "$jsonl") benchmarks, revision ${rev})"
