//! The three hardness reductions of Section 7.
//!
//! Each reduction takes an instance of the source problem and a path query
//! with the required condition violation, and produces a database instance
//! such that the source instance is a "yes"-instance iff the produced
//! database is a **"no"**-instance of `CERTAINTY(q)` (for REACHABILITY and
//! SAT) or a **"yes"**-instance (for MCVP).

use cqa_core::conditions::{
    c1_violation_witness, c2_triple_violation_witness, c3_violation_witness,
};
use cqa_core::query::PathQuery;
use cqa_core::word::Word;
use cqa_db::fact::Constant;
use cqa_db::instance::DatabaseInstance;

use crate::gadgets::{phi, Endpoint, FreshConstants};
use crate::sources::{CnfFormula, Digraph, Gate, MonotoneCircuit};

/// Errors produced while building a reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// The query does not violate the condition required by the reduction.
    ConditionNotViolated(&'static str),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::ConditionNotViolated(cond) => {
                write!(f, "the query does not violate condition {cond}")
            }
        }
    }
}

impl std::error::Error for ReductionError {}

fn vertex_constant(prefix: &str, index: usize) -> Constant {
    Constant::new(&format!("{prefix}{index}"))
}

/// **Lemma 18** (NL-hardness): reduction from REACHABILITY to the complement
/// of `CERTAINTY(q)`, for a path query `q` violating C1.
///
/// Returns the database instance; `target` is reachable from `source` in the
/// graph iff some repair of the instance falsifies `q`.
pub fn reachability_reduction(
    graph: &Digraph,
    source: usize,
    target: usize,
    query: &PathQuery,
) -> Result<DatabaseInstance, ReductionError> {
    let word = query.word();
    let (i, j) = c1_violation_witness(word).ok_or(ReductionError::ConditionNotViolated("C1"))?;
    let u = word.prefix(i);
    let rv = word.slice(i, j);
    let rw = word.suffix_from(j);

    let mut fresh = FreshConstants::with_prefix("reach");
    let mut db = DatabaseInstance::new();
    let v = |x: usize| vertex_constant("g", x);
    let s_prime = Constant::new("g_source_prime");
    let t_prime = Constant::new("g_target_prime");

    // Vertices of G' = V ∪ {s'}: an incoming u-path.
    for x in 0..graph.n {
        for fact in phi(&u, Endpoint::Fresh, Endpoint::Named(v(x)), &mut fresh) {
            db.insert(fact);
        }
    }
    for fact in phi(&u, Endpoint::Fresh, Endpoint::Named(s_prime), &mut fresh) {
        db.insert(fact);
    }
    // Edges of G' = E ∪ {(s', s), (t, t')}: an Rv-path.
    let mut edge_pairs: Vec<(Constant, Constant)> =
        graph.edges.iter().map(|&(a, b)| (v(a), v(b))).collect();
    edge_pairs.push((s_prime, v(source)));
    edge_pairs.push((v(target), t_prime));
    for (a, b) in edge_pairs {
        for fact in phi(&rv, Endpoint::Named(a), Endpoint::Named(b), &mut fresh) {
            db.insert(fact);
        }
    }
    // Every original vertex gets an outgoing Rw-path.
    for x in 0..graph.n {
        for fact in phi(&rw, Endpoint::Named(v(x)), Endpoint::Fresh, &mut fresh) {
            db.insert(fact);
        }
    }
    Ok(db)
}

/// **Lemma 19** (coNP-hardness): reduction from SAT to the complement of
/// `CERTAINTY(q)`, for a path query `q` violating C3.
///
/// The formula is satisfiable iff some repair of the returned instance
/// falsifies `q`.
pub fn sat_reduction(
    formula: &CnfFormula,
    query: &PathQuery,
) -> Result<DatabaseInstance, ReductionError> {
    let word = query.word();
    let (i, j) = c3_violation_witness(word).ok_or(ReductionError::ConditionNotViolated("C3"))?;
    let u = word.prefix(i);
    let rv = word.slice(i, j);
    let rw = word.suffix_from(j);
    let rv_rw = rv.concat(&rw);
    let u_rv = u.concat(&rv);

    let mut fresh = FreshConstants::with_prefix("sat");
    let mut db = DatabaseInstance::new();
    let var_const = |z: usize| vertex_constant("var", z);
    let clause_const = |c: usize| vertex_constant("cl", c);

    // Variables: the truth-value choice between Rw ("true") and RvRw ("false").
    for z in 1..=formula.num_vars {
        for fact in phi(
            &rw,
            Endpoint::Named(var_const(z)),
            Endpoint::Fresh,
            &mut fresh,
        ) {
            db.insert(fact);
        }
        for fact in phi(
            &rv_rw,
            Endpoint::Named(var_const(z)),
            Endpoint::Fresh,
            &mut fresh,
        ) {
            db.insert(fact);
        }
    }
    // Clauses: a u-path to the variable for positive literals, a uRv-path for
    // negative literals.
    for (c, clause) in formula.clauses.iter().enumerate() {
        for &lit in clause {
            let z = lit.unsigned_abs() as usize;
            let word_to_use = if lit > 0 { &u } else { &u_rv };
            for fact in phi(
                word_to_use,
                Endpoint::Named(clause_const(c)),
                Endpoint::Named(var_const(z)),
                &mut fresh,
            ) {
                db.insert(fact);
            }
        }
    }
    Ok(db)
}

/// **Lemma 20** (PTIME-hardness): reduction from the Monotone Circuit Value
/// Problem to `CERTAINTY(q)`, for a path query `q` violating C2 (but
/// satisfying C3 — for queries violating C3 use [`sat_reduction`]).
///
/// The circuit evaluates to `1` under `inputs` iff **every** repair of the
/// returned instance satisfies `q`.
pub fn mcvp_reduction(
    circuit: &MonotoneCircuit,
    inputs: &[bool],
    query: &PathQuery,
) -> Result<DatabaseInstance, ReductionError> {
    let word = query.word();
    let (i, j, k) =
        c2_triple_violation_witness(word).ok_or(ReductionError::ConditionNotViolated("C2"))?;
    let u = word.prefix(i);
    let rv1 = word.slice(i, j);
    let rv2 = word.slice(j, k);
    let rw = word.suffix_from(k);
    // v = longest common prefix of v1 and v2; vi = v · vi_plus.
    let v1 = word.slice(i + 1, j);
    let v2 = word.slice(j + 1, k);
    let mut common = 0usize;
    while common < v1.len() && common < v2.len() && v1[common] == v2[common] {
        common += 1;
    }
    let v = v1.prefix(common);
    let v1_plus = v1.suffix_from(common);
    let v2_plus = v2.suffix_from(common);
    // The construction of Lemma 20 branches on the *first relation names* of
    // v1+ and v2+, which must exist and differ; queries whose only violating
    // triple has v1 a prefix of v2 (or vice versa) fall outside this shape
    // and are not supported by this gadget (see DESIGN.md §6).
    if v1_plus.is_empty() || v2_plus.is_empty() {
        return Err(ReductionError::ConditionNotViolated(
            "C2 (with a non-degenerate v1/v2 split)",
        ));
    }
    let rv = Word::new([word[i]]).concat(&v);
    let rv2_rw = rv2.concat(&rw);

    let mut fresh = FreshConstants::with_prefix("mcvp");
    let mut db = DatabaseInstance::new();
    let node = |g: usize| vertex_constant("node", g);

    // Output gate: an incoming uRv1-path.
    let u_rv1 = u.concat(&rv1);
    for fact in phi(
        &u_rv1,
        Endpoint::Fresh,
        Endpoint::Named(node(circuit.output())),
        &mut fresh,
    ) {
        db.insert(fact);
    }
    // True inputs: an outgoing Rv2Rw-path.
    for (x, &value) in inputs.iter().enumerate() {
        if value {
            for fact in phi(
                &rv2_rw,
                Endpoint::Named(node(x)),
                Endpoint::Fresh,
                &mut fresh,
            ) {
                db.insert(fact);
            }
        }
    }
    // Every gate: an incoming u-path and an outgoing Rv2Rw-path.
    for g in 0..circuit.gates.len() {
        let gate_node = circuit.num_inputs + g;
        for fact in phi(
            &u,
            Endpoint::Fresh,
            Endpoint::Named(node(gate_node)),
            &mut fresh,
        ) {
            db.insert(fact);
        }
        for fact in phi(
            &rv2_rw,
            Endpoint::Named(node(gate_node)),
            Endpoint::Fresh,
            &mut fresh,
        ) {
            db.insert(fact);
        }
    }
    // Gate gadgets.
    for (g, gate) in circuit.gates.iter().enumerate() {
        let gate_node = node(circuit.num_inputs + g);
        match *gate {
            Gate::And(g1, g2) => {
                for fact in phi(
                    &rv1,
                    Endpoint::Named(gate_node),
                    Endpoint::Named(node(g1)),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
                for fact in phi(
                    &rv1,
                    Endpoint::Named(gate_node),
                    Endpoint::Named(node(g2)),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
            }
            Gate::Or(g1, g2) => {
                let c1 = fresh.next();
                let c2 = fresh.next();
                for fact in phi(
                    &rv,
                    Endpoint::Named(gate_node),
                    Endpoint::Named(c1),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
                for fact in phi(
                    &v1_plus,
                    Endpoint::Named(c1),
                    Endpoint::Named(node(g1)),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
                for fact in phi(
                    &v2_plus,
                    Endpoint::Named(c1),
                    Endpoint::Named(c2),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
                for fact in phi(&u, Endpoint::Fresh, Endpoint::Named(c2), &mut fresh) {
                    db.insert(fact);
                }
                for fact in phi(
                    &rv1,
                    Endpoint::Named(c2),
                    Endpoint::Named(node(g2)),
                    &mut fresh,
                ) {
                    db.insert(fact);
                }
                for fact in phi(&rw, Endpoint::Named(c2), Endpoint::Fresh, &mut fresh) {
                    db.insert(fact);
                }
            }
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_db::repair::ConsistentInstance;

    /// Oracle: every repair satisfies q (exhaustive; instances are small).
    fn certain(db: &DatabaseInstance, query: &PathQuery) -> bool {
        assert!(db.repair_count() <= 1 << 16, "oracle would be too slow");
        db.repairs()
            .all(|r: ConsistentInstance| r.satisfies_word(query.word()))
    }

    #[test]
    fn reachability_reduction_matches_figure_8() {
        // Figure 8: V = {s, a, t}, E = {(s,a), (a,t)}: t reachable from s, so
        // the instance must have a falsifying repair.
        let q = PathQuery::parse("RRX").unwrap(); // violates C1, satisfies C2
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let db = reachability_reduction(&g, 0, 2, &q).unwrap();
        assert!(!certain(&db, &q));
        // Removing the edge (a, t) disconnects s from t: certain.
        let mut g2 = Digraph::new(3);
        g2.add_edge(0, 1);
        let db2 = reachability_reduction(&g2, 0, 2, &q).unwrap();
        assert!(certain(&db2, &q));
    }

    #[test]
    fn reachability_reduction_agrees_on_random_dags() {
        let q = PathQuery::parse("RXRY").unwrap(); // NL-complete query
        let mut rng = rand::rng();
        for _ in 0..10 {
            let g = Digraph::random_dag(5, 0.35, &mut rng);
            let db = reachability_reduction(&g, 0, 4, &q).unwrap();
            assert_eq!(
                g.reachable(0, 4),
                !certain(&db, &q),
                "graph {g:?} gave the wrong certainty"
            );
        }
    }

    #[test]
    fn reachability_reduction_requires_a_c1_violation() {
        let q = PathQuery::parse("RXRX").unwrap(); // satisfies C1
        let g = Digraph::new(2);
        assert!(matches!(
            reachability_reduction(&g, 0, 1, &q),
            Err(ReductionError::ConditionNotViolated("C1"))
        ));
    }

    #[test]
    fn sat_reduction_matches_figure_9() {
        // ψ = (x1 ∨ ¬x2) ∧ (¬x1 ∨ x2): satisfiable, so not certain.
        let q = PathQuery::parse("ARRX").unwrap(); // violates C3
        let mut sat = CnfFormula::new(2);
        sat.add_clause(vec![1, -2]);
        sat.add_clause(vec![-1, 2]);
        let db = sat_reduction(&sat, &q).unwrap();
        assert!(!certain(&db, &q));
        // x1 ∧ ¬x1: unsatisfiable, so certain.
        let mut unsat = CnfFormula::new(1);
        unsat.add_clause(vec![1]);
        unsat.add_clause(vec![-1]);
        let db = sat_reduction(&unsat, &q).unwrap();
        assert!(certain(&db, &q));
    }

    #[test]
    fn sat_reduction_agrees_on_random_formulas() {
        let q = PathQuery::parse("RXRXRYRY").unwrap();
        let mut rng = rand::rng();
        for _ in 0..8 {
            let formula = CnfFormula::random(3, 4, 2, &mut rng);
            let db = sat_reduction(&formula, &q).unwrap();
            assert_eq!(
                formula.satisfiable(),
                !certain(&db, &q),
                "formula {formula:?} gave the wrong certainty"
            );
        }
    }

    #[test]
    fn sat_reduction_requires_a_c3_violation() {
        let q = PathQuery::parse("RRX").unwrap();
        let formula = CnfFormula::new(1);
        assert!(sat_reduction(&formula, &q).is_err());
    }

    #[test]
    fn mcvp_reduction_on_a_tiny_circuit() {
        // Circuit: (x0 ∧ x1) — query RXRYRY violates C2 but satisfies C3.
        let q = PathQuery::parse("RXRYRY").unwrap();
        let mut circuit = MonotoneCircuit::new(2);
        circuit.add_gate(Gate::And(0, 1));
        for inputs in [[true, true], [true, false], [false, true], [false, false]] {
            let db = mcvp_reduction(&circuit, &inputs, &q).unwrap();
            assert_eq!(
                circuit.evaluate(&inputs),
                certain(&db, &q),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn mcvp_reduction_on_or_and_mixed_circuits() {
        let q = PathQuery::parse("RXRYRY").unwrap();
        // (x0 ∨ x1) and ((x0 ∨ x1) ∧ x2)
        let mut circuit = MonotoneCircuit::new(3);
        let or = circuit.add_gate(Gate::Or(0, 1));
        circuit.add_gate(Gate::And(or, 2));
        for mask in 0..8u32 {
            let inputs = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            let db = mcvp_reduction(&circuit, &inputs, &q).unwrap();
            assert_eq!(
                circuit.evaluate(&inputs),
                certain(&db, &q),
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn mcvp_reduction_rejects_degenerate_splits() {
        // RRSRS is the shortest query violating C2 while satisfying C3, but
        // its only violating triple has v1 = ε (a prefix of v2), so the
        // Lemma 20 gadget as stated does not apply and the builder refuses.
        let q = PathQuery::parse("RRSRS").unwrap();
        let mut circuit = MonotoneCircuit::new(2);
        circuit.add_gate(Gate::Or(0, 1));
        assert!(matches!(
            mcvp_reduction(&circuit, &[true, false], &q),
            Err(ReductionError::ConditionNotViolated(_))
        ));
    }

    #[test]
    fn mcvp_reduction_on_random_circuits() {
        let q = PathQuery::parse("RXRYRY").unwrap();
        let mut rng = rand::rng();
        for _ in 0..5 {
            let circuit = MonotoneCircuit::random(3, 3, &mut rng);
            for mask in 0..8u32 {
                let inputs = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
                let db = mcvp_reduction(&circuit, &inputs, &q).unwrap();
                if db.repair_count() > 1 << 16 {
                    continue;
                }
                assert_eq!(
                    circuit.evaluate(&inputs),
                    certain(&db, &q),
                    "circuit {circuit:?}, inputs {inputs:?}"
                );
            }
        }
    }

    #[test]
    fn mcvp_reduction_requires_a_c2_violation() {
        let q = PathQuery::parse("RXRY").unwrap(); // satisfies C2
        let mut circuit = MonotoneCircuit::new(1);
        circuit.add_gate(Gate::Or(0, 0));
        assert!(mcvp_reduction(&circuit, &[true], &q).is_err());
    }
}
