//! The path gadgets `ϕ_a^b[q]`, `ϕ_a^⊥[q]`, `ϕ_⊥^b[q]` of Section 7.
//!
//! For a path query `q = R1 … Rk` and constants `a`, `b`, the gadget
//! `ϕ_a^b[q]` is the set of facts
//! `{R1(a, □2), R2(□2, □3), …, Rk(□k, b)}` where the `□i` are fresh constants
//! not used anywhere else; `⊥` means "end (or start) in a fresh constant".

use cqa_core::word::Word;
use cqa_db::fact::{Constant, Fact};

/// A source of globally fresh constants (`□` symbols in the paper).
#[derive(Debug, Default)]
pub struct FreshConstants {
    counter: usize,
    prefix: String,
}

impl FreshConstants {
    /// Creates a source with the default prefix `□`.
    pub fn new() -> FreshConstants {
        FreshConstants {
            counter: 0,
            prefix: "box".to_owned(),
        }
    }

    /// Creates a source with a custom prefix (useful to keep gadget families
    /// disjoint).
    pub fn with_prefix(prefix: &str) -> FreshConstants {
        FreshConstants {
            counter: 0,
            prefix: prefix.to_owned(),
        }
    }

    /// The next fresh constant.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, infallible
    pub fn next(&mut self) -> Constant {
        let c = Constant::new(&format!("__{}_{}", self.prefix, self.counter));
        self.counter += 1;
        c
    }

    /// Number of constants handed out.
    pub fn count(&self) -> usize {
        self.counter
    }
}

/// The endpoints of a gadget: either a named constant or a fresh one (`⊥`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A given constant.
    Named(Constant),
    /// A fresh constant (the `⊥` of the paper).
    Fresh,
}

impl Endpoint {
    fn resolve(self, fresh: &mut FreshConstants) -> Constant {
        match self {
            Endpoint::Named(c) => c,
            Endpoint::Fresh => fresh.next(),
        }
    }
}

/// Builds the facts of `ϕ_from^to[word]`: a fresh path with the given trace
/// from `from` to `to`. Returns the facts; intermediate vertices are always
/// fresh.
///
/// An empty word produces no facts (the gadget is vacuous), matching the
/// convention of the paper where `ϕ_x^⊥[ε]` contributes nothing.
pub fn phi(word: &Word, from: Endpoint, to: Endpoint, fresh: &mut FreshConstants) -> Vec<Fact> {
    if word.is_empty() {
        return Vec::new();
    }
    let mut facts = Vec::with_capacity(word.len());
    let start = from.resolve(fresh);
    let mut current = start;
    for (i, rel) in word.iter().enumerate() {
        let next = if i + 1 == word.len() {
            to.resolve(fresh)
        } else {
            fresh.next()
        };
        facts.push(Fact::new(rel, current, next));
        current = next;
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_db::instance::DatabaseInstance;

    #[test]
    fn phi_builds_a_fresh_chain() {
        let mut fresh = FreshConstants::new();
        let word = Word::from_letters("RSX");
        let a = Constant::new("a");
        let b = Constant::new("b");
        let facts = phi(&word, Endpoint::Named(a), Endpoint::Named(b), &mut fresh);
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0].key, a);
        assert_eq!(facts[2].value, b);
        // Intermediate vertices are fresh and chain correctly.
        assert_eq!(facts[0].value, facts[1].key);
        assert_eq!(facts[1].value, facts[2].key);
        assert_ne!(facts[0].value, a);
        assert_ne!(facts[0].value, b);
    }

    #[test]
    fn fresh_endpoints_are_distinct_across_calls() {
        let mut fresh = FreshConstants::new();
        let word = Word::from_letters("R");
        let f1 = phi(&word, Endpoint::Fresh, Endpoint::Fresh, &mut fresh);
        let f2 = phi(&word, Endpoint::Fresh, Endpoint::Fresh, &mut fresh);
        assert_ne!(f1[0].key, f2[0].key);
        assert_ne!(f1[0].value, f2[0].value);
    }

    #[test]
    fn gadgets_do_not_create_conflicts_among_themselves() {
        // Two gadgets sharing only their named endpoints never produce two
        // key-equal facts, because all intermediate keys are fresh.
        let mut fresh = FreshConstants::new();
        let word = Word::from_letters("RR");
        let a = Constant::new("a");
        let mut db = DatabaseInstance::new();
        for f in phi(&word, Endpoint::Named(a), Endpoint::Fresh, &mut fresh) {
            db.insert(f);
        }
        for f in phi(&word, Endpoint::Fresh, Endpoint::Named(a), &mut fresh) {
            db.insert(f);
        }
        // The only potentially conflicting key is `a`, and only the first
        // gadget starts there: consistent... unless both gadgets start at a.
        assert!(db.is_consistent());
    }

    #[test]
    fn empty_word_produces_no_facts() {
        let mut fresh = FreshConstants::new();
        assert!(phi(&Word::empty(), Endpoint::Fresh, Endpoint::Fresh, &mut fresh).is_empty());
    }
}
