//! # cqa-reductions
//!
//! The executable content of the lower-bound proofs of Section 7 (and their
//! Section 8 variants): the path gadgets `ϕ_a^b[q]`, and the reductions
//!
//! * REACHABILITY → co-`CERTAINTY(q)` for queries violating C1 (Lemma 18),
//! * SAT → co-`CERTAINTY(q)` for queries violating C3 (Lemma 19),
//! * MCVP → `CERTAINTY(q)` for queries violating C2 (Lemma 20),
//!
//! together with the source-problem types (directed graphs, CNF formulas,
//! monotone circuits), their evaluators and random generators. These are used
//! both to validate the reductions against the solvers and to generate
//! adversarial benchmark instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gadgets;
pub mod reductions;
pub mod sources;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::gadgets::{phi, Endpoint, FreshConstants};
    pub use crate::reductions::{
        mcvp_reduction, reachability_reduction, sat_reduction, ReductionError,
    };
    pub use crate::sources::{CnfFormula, Digraph, Gate, MonotoneCircuit};
}
