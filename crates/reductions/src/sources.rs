//! Source problems of the hardness reductions: directed graphs
//! (REACHABILITY), propositional CNF formulas (SAT) and monotone Boolean
//! circuits (MCVP), with evaluators and random generators.

use rand::Rng;
use rand::RngExt as _;

/// A directed graph on vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digraph {
    /// Number of vertices.
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<(usize, usize)>,
}

impl Digraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Digraph {
        Digraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n);
        self.edges.push((from, to));
    }

    /// True iff `target` is reachable from `source`.
    pub fn reachable(&self, source: usize, target: usize) -> bool {
        let mut adjacency = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adjacency[a].push(b);
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![source];
        seen[source] = true;
        while let Some(v) = stack.pop() {
            if v == target {
                return true;
            }
            for &w in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    /// A random DAG: edges only go from lower to higher vertex indices, each
    /// present with probability `density`.
    pub fn random_dag<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> Digraph {
        let mut g = Digraph::new(n);
        for a in 0..n {
            for b in a + 1..n {
                if rng.random_bool(density) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }
}

/// A CNF formula over variables `1..=num_vars`; a literal is a signed
/// variable index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses as lists of nonzero signed variable indices.
    pub clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Creates a formula with no clauses.
    pub fn new(num_vars: usize) -> CnfFormula {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause.
    pub fn add_clause(&mut self, lits: Vec<i32>) {
        assert!(lits
            .iter()
            .all(|&l| l != 0 && l.unsigned_abs() as usize <= self.num_vars));
        self.clauses.push(lits);
    }

    /// Evaluates under an assignment (`assignment[var]`, index 0 unused).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let value = assignment[lit.unsigned_abs() as usize];
                (lit > 0) == value
            })
        })
    }

    /// Brute-force satisfiability (only for small formulas, ≤ 24 variables).
    pub fn satisfiable(&self) -> bool {
        assert!(self.num_vars <= 24);
        (0u64..(1 << self.num_vars)).any(|mask| {
            let mut assignment = vec![false; self.num_vars + 1];
            for (var, slot) in assignment.iter_mut().enumerate().skip(1) {
                *slot = mask & (1 << (var - 1)) != 0;
            }
            self.evaluate(&assignment)
        })
    }

    /// A random k-CNF formula.
    pub fn random<R: Rng + ?Sized>(
        num_vars: usize,
        num_clauses: usize,
        clause_len: usize,
        rng: &mut R,
    ) -> CnfFormula {
        let mut formula = CnfFormula::new(num_vars);
        for _ in 0..num_clauses {
            let clause: Vec<i32> = (0..clause_len)
                .map(|_| {
                    let var = rng.random_range(1..=num_vars) as i32;
                    if rng.random_bool(0.5) {
                        var
                    } else {
                        -var
                    }
                })
                .collect();
            formula.add_clause(clause);
        }
        formula
    }
}

/// A gate of a monotone circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Conjunction of two earlier nodes.
    And(usize, usize),
    /// Disjunction of two earlier nodes.
    Or(usize, usize),
}

/// A monotone Boolean circuit: nodes `0..num_inputs` are the inputs, node
/// `num_inputs + i` is `gates[i]`, and the output is the last node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotoneCircuit {
    /// Number of input nodes.
    pub num_inputs: usize,
    /// The gates, each referring to strictly earlier nodes.
    pub gates: Vec<Gate>,
}

impl MonotoneCircuit {
    /// Creates a circuit with the given inputs and no gates.
    pub fn new(num_inputs: usize) -> MonotoneCircuit {
        assert!(num_inputs >= 1);
        MonotoneCircuit {
            num_inputs,
            gates: Vec::new(),
        }
    }

    /// Adds a gate; its node index is returned.
    pub fn add_gate(&mut self, gate: Gate) -> usize {
        let node = self.num_inputs + self.gates.len();
        let (a, b) = match gate {
            Gate::And(a, b) | Gate::Or(a, b) => (a, b),
        };
        assert!(a < node && b < node, "gates must refer to earlier nodes");
        self.gates.push(gate);
        node
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// The output node (the last node).
    pub fn output(&self) -> usize {
        assert!(!self.gates.is_empty(), "a circuit needs at least one gate");
        self.num_nodes() - 1
    }

    /// Evaluates every node under the input assignment.
    pub fn evaluate_nodes(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs);
        let mut values = inputs.to_vec();
        for gate in &self.gates {
            let v = match *gate {
                Gate::And(a, b) => values[a] && values[b],
                Gate::Or(a, b) => values[a] || values[b],
            };
            values.push(v);
        }
        values
    }

    /// Evaluates the output.
    pub fn evaluate(&self, inputs: &[bool]) -> bool {
        *self
            .evaluate_nodes(inputs)
            .last()
            .expect("nonempty circuit")
    }

    /// A random layered monotone circuit with the given number of gates.
    pub fn random<R: Rng + ?Sized>(
        num_inputs: usize,
        num_gates: usize,
        rng: &mut R,
    ) -> MonotoneCircuit {
        let mut circuit = MonotoneCircuit::new(num_inputs);
        for _ in 0..num_gates {
            let bound = circuit.num_nodes();
            let a = rng.random_range(0..bound);
            let b = rng.random_range(0..bound);
            let gate = if rng.random_bool(0.5) {
                Gate::And(a, b)
            } else {
                Gate::Or(a, b)
            };
            circuit.add_gate(gate);
        }
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_on_a_small_graph() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.reachable(0, 2));
        assert!(g.reachable(0, 0));
        assert!(!g.reachable(2, 0));
        assert!(!g.reachable(0, 3));
    }

    #[test]
    fn random_dags_are_acyclic() {
        let mut rng = rand::rng();
        let g = Digraph::random_dag(10, 0.4, &mut rng);
        for &(a, b) in &g.edges {
            assert!(a < b);
        }
    }

    #[test]
    fn cnf_evaluation_and_satisfiability() {
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![1, 2]);
        f.add_clause(vec![-1]);
        assert!(f.satisfiable());
        assert!(f.evaluate(&[false, false, true]));
        assert!(!f.evaluate(&[false, true, false]));
        let mut unsat = CnfFormula::new(1);
        unsat.add_clause(vec![1]);
        unsat.add_clause(vec![-1]);
        assert!(!unsat.satisfiable());
    }

    #[test]
    fn circuit_evaluation() {
        // (x0 ∧ x1) ∨ x2
        let mut c = MonotoneCircuit::new(3);
        let and = c.add_gate(Gate::And(0, 1));
        c.add_gate(Gate::Or(and, 2));
        assert!(c.evaluate(&[true, true, false]));
        assert!(c.evaluate(&[false, false, true]));
        assert!(!c.evaluate(&[true, false, false]));
        assert_eq!(c.output(), 4);
    }

    #[test]
    fn random_circuits_are_well_formed() {
        let mut rng = rand::rng();
        let c = MonotoneCircuit::random(4, 8, &mut rng);
        assert_eq!(c.num_nodes(), 12);
        // Monotonicity: flipping an input from 0 to 1 never flips the output
        // from 1 to 0.
        let zero = c.evaluate(&[false; 4]);
        let one = c.evaluate(&[true; 4]);
        assert!(!zero || one);
    }
}
