//! # cqa-workloads
//!
//! Workload generators for the path-query CQA reproduction: the exact
//! instances drawn in the paper's figures ([`figures`]) and seeded synthetic
//! generators with tunable inconsistency ([`random`]) used by the test-suite
//! and the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod random;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::figures::{
        example_3_queries, example_5_instance, example_7_instance, figure_1, figure_2,
        figure_2_query, figure_3, figure_3_query, figure_4_query, figure_6,
    };
    pub use crate::random::{
        oracle_batch, repeated_query_requests, scaling_series, shared_prefix_families,
        tenant_request_stream, LayeredConfig, RandomInstanceConfig, TenantRequest,
    };
}
