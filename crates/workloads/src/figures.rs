//! The example instances drawn in the figures of the paper, as executable
//! fixtures shared by the tests, the examples and the benchmarks.

use cqa_core::query::PathQuery;
use cqa_db::instance::DatabaseInstance;

/// Figure 1: `R` and `S` both contain `{a, b} × {a, b}` (Examples 1 and 2).
pub fn figure_1() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    for rel in ["R", "S"] {
        for x in ["a", "b"] {
            for y in ["a", "b"] {
                db.insert_parsed(rel, x, y);
            }
        }
    }
    db
}

/// Figure 2: the instance for `q2 = RRX` with the conflicting facts
/// `R(1,2)` and `R(1,3)` (Example 4).
pub fn figure_2() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    db.insert_parsed("R", "0", "1");
    db.insert_parsed("R", "1", "2");
    db.insert_parsed("R", "1", "3");
    db.insert_parsed("R", "2", "3");
    db.insert_parsed("X", "3", "4");
    db
}

/// The query of Figure 2.
pub fn figure_2_query() -> PathQuery {
    PathQuery::parse("RRX").expect("valid query")
}

/// Figure 3: the bifurcation gadget for `q3 = ARRX`. Every repair has a path
/// starting in `0` whose trace lies in `A R R (R)* X`, yet the repair keeping
/// `R(a, c)` falsifies `ARRX`.
pub fn figure_3() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    db.insert_parsed("A", "0", "a");
    db.insert_parsed("R", "a", "b");
    db.insert_parsed("R", "a", "c");
    db.insert_parsed("R", "b", "e");
    db.insert_parsed("X", "e", "f");
    db.insert_parsed("R", "c", "g");
    db.insert_parsed("R", "g", "e");
    db
}

/// The query of Figure 3.
pub fn figure_3_query() -> PathQuery {
    PathQuery::parse("ARRX").expect("valid query")
}

/// Figure 4's query (`RXRRR`), whose `NFA(q)` is drawn in the paper.
pub fn figure_4_query() -> PathQuery {
    PathQuery::parse("RXRRR").expect("valid query")
}

/// Figure 6: the example run of the fixpoint algorithm for `q = RRX`.
pub fn figure_6() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    db.insert_parsed("R", "0", "1");
    db.insert_parsed("R", "1", "2");
    db.insert_parsed("R", "1", "4");
    db.insert_parsed("R", "2", "3");
    db.insert_parsed("R", "2", "4");
    db.insert_parsed("R", "3", "4");
    db.insert_parsed("X", "4", "5");
    db
}

/// Example 5's consistent instance for `q = RRX`.
pub fn example_5_instance() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    db.insert_parsed("R", "a", "b");
    db.insert_parsed("R", "b", "c");
    db.insert_parsed("R", "c", "d");
    db.insert_parsed("X", "d", "e");
    db.insert_parsed("R", "d", "e");
    db
}

/// Example 7's instance (`{R(c,d), S(d,c), R(c,e), T(e,f)}`).
pub fn example_7_instance() -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    db.insert_parsed("R", "c", "d");
    db.insert_parsed("S", "d", "c");
    db.insert_parsed("R", "c", "e");
    db.insert_parsed("T", "e", "f");
    db
}

/// The four queries of Example 3, with their expected complexity classes.
pub fn example_3_queries() -> Vec<(PathQuery, &'static str)> {
    vec![
        (PathQuery::parse("RXRX").expect("valid"), "FO"),
        (PathQuery::parse("RXRY").expect("valid"), "NL-complete"),
        (PathQuery::parse("RXRYRY").expect("valid"), "PTIME-complete"),
        (
            PathQuery::parse("RXRXRYRY").expect("valid"),
            "coNP-complete",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::classify::classify;

    #[test]
    fn figure_fixtures_have_the_documented_shape() {
        assert_eq!(figure_1().len(), 8);
        assert_eq!(figure_1().repair_count(), 16);
        assert_eq!(figure_2().repair_count(), 2);
        assert!(!figure_2().is_consistent());
        assert_eq!(figure_3().conflicting_blocks().len(), 1);
        assert!(example_5_instance().is_consistent());
        assert_eq!(figure_6().block_count(), 5);
    }

    #[test]
    fn example_3_classifications_match() {
        for (q, expected) in example_3_queries() {
            assert_eq!(classify(&q).class.name(), expected, "{q}");
        }
    }

    #[test]
    fn figure_2_is_a_yes_instance_and_figure_3_is_a_no_instance() {
        let db2 = figure_2();
        assert!(db2
            .repairs()
            .all(|r| r.satisfies_word(figure_2_query().word())));
        let db3 = figure_3();
        assert!(!db3
            .repairs()
            .all(|r| r.satisfies_word(figure_3_query().word())));
    }
}
