//! Parameterized synthetic generators of inconsistent database instances.
//!
//! The generators are seeded and deterministic, so benchmark and test runs
//! are reproducible. Two families are provided:
//!
//! * [`RandomInstanceConfig`] — uniformly random binary facts over a bounded
//!   domain with a tunable conflict rate;
//! * [`LayeredConfig`] — layered (DAG-like) instances in which paths flow
//!   from layer to layer, designed so that path queries of interesting length
//!   are sometimes certain and sometimes not.

use cqa_core::symbol::RelName;
use cqa_db::fact::Constant;
use cqa_db::instance::DatabaseInstance;
use rand::rngs::StdRng;
use rand::Rng as _;
use rand::RngExt as _;
use rand::SeedableRng;

/// Configuration of the uniform random generator.
#[derive(Debug, Clone)]
pub struct RandomInstanceConfig {
    /// Relation names to draw facts from.
    pub relations: Vec<RelName>,
    /// Size of the constant domain.
    pub domain_size: usize,
    /// Number of facts to draw (duplicates are merged).
    pub num_facts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomInstanceConfig {
    /// A configuration over single-letter relation names.
    pub fn new(
        letters: &str,
        domain_size: usize,
        num_facts: usize,
        seed: u64,
    ) -> RandomInstanceConfig {
        RandomInstanceConfig {
            relations: letters
                .chars()
                .map(|c| RelName::new(&c.to_string()))
                .collect(),
            domain_size,
            num_facts,
            seed,
        }
    }

    /// Generates the instance.
    pub fn generate(&self) -> DatabaseInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = DatabaseInstance::new();
        for _ in 0..self.num_facts {
            let rel = self.relations[rng.random_range(0..self.relations.len())];
            let a = rng.random_range(0..self.domain_size);
            let b = rng.random_range(0..self.domain_size);
            db.insert(cqa_db::fact::Fact::new(
                rel,
                Constant::numbered(a),
                Constant::numbered(b),
            ));
        }
        db
    }
}

/// Configuration of the layered generator.
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Relation names, cycled per layer: the edge between layer `i` and
    /// `i + 1` uses `relations[i % relations.len()]`.
    pub relations: Vec<RelName>,
    /// Number of layers of vertices (= path length supported).
    pub layers: usize,
    /// Vertices per layer.
    pub width: usize,
    /// Probability that a vertex has a *second*, conflicting outgoing edge.
    pub conflict_probability: f64,
    /// Probability that a vertex has no outgoing edge at all (a dead end).
    pub dead_end_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LayeredConfig {
    /// A sensible default layered workload for a query word: one layer per
    /// atom plus one, cycling through the query's relation names in order.
    pub fn for_word(word: &cqa_core::word::Word, width: usize, seed: u64) -> LayeredConfig {
        LayeredConfig {
            relations: word.iter().collect(),
            layers: word.len() + 1,
            width,
            conflict_probability: 0.3,
            dead_end_probability: 0.05,
            seed,
        }
    }

    /// Generates the instance.
    pub fn generate(&self) -> DatabaseInstance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut db = DatabaseInstance::new();
        let vertex = |layer: usize, i: usize| Constant::new(&format!("L{layer}_{i}"));
        for layer in 0..self.layers.saturating_sub(1) {
            let rel = self.relations[layer % self.relations.len()];
            for i in 0..self.width {
                if rng.random_bool(self.dead_end_probability) {
                    continue;
                }
                let to = rng.random_range(0..self.width);
                db.insert(cqa_db::fact::Fact::new(
                    rel,
                    vertex(layer, i),
                    vertex(layer + 1, to),
                ));
                if rng.random_bool(self.conflict_probability) {
                    let other = rng.random_range(0..self.width);
                    db.insert(cqa_db::fact::Fact::new(
                        rel,
                        vertex(layer, i),
                        vertex(layer + 1, other),
                    ));
                }
            }
        }
        db
    }
}

/// A scaling series: the same layered workload at geometrically increasing
/// widths, used by the benchmark harness.
pub fn scaling_series(
    word: &cqa_core::word::Word,
    widths: &[usize],
    seed: u64,
) -> Vec<(usize, DatabaseInstance)> {
    widths
        .iter()
        .map(|&w| {
            let config = LayeredConfig::for_word(word, w, seed ^ (w as u64));
            (w, config.generate())
        })
        .collect()
}

/// A repeated-query certain-answer workload: `per_query` layered instances
/// for each query word, interleaved round-robin the way a batching service
/// front-end would receive them. This is the input shape
/// `cqa_solver::session::CertaintySession::certain_batch` amortizes (one
/// classification / compiled program / automaton per distinct query), and
/// what the `session_batch` bench replays.
pub fn repeated_query_requests(
    words: &[&str],
    per_query: usize,
    width: usize,
    seed: u64,
) -> Vec<(cqa_core::query::PathQuery, DatabaseInstance)> {
    let queries: Vec<cqa_core::query::PathQuery> = words
        .iter()
        .map(|w| cqa_core::query::PathQuery::parse(w).expect("valid query word"))
        .collect();
    let mut out = Vec::with_capacity(queries.len() * per_query);
    for round in 0..per_query {
        for query in &queries {
            let config = LayeredConfig::for_word(
                query.word(),
                width,
                seed ^ ((round as u64) << 16) ^ (query.word().len() as u64),
            );
            out.push((query.clone(), config.generate()));
        }
    }
    out
}

/// A shared-prefix family workload: one layered prefix instance plus
/// `instances` per-request delta instances over the *same* vertex space, so
/// deltas genuinely interact with the prefix (extra — possibly conflicting —
/// outgoing edges, new dead-end escapes), not just sit beside it.
///
/// `delta_ratio` controls how much of each request is private: the delta
/// layer width is `⌈width * delta_ratio⌉` (at least 1), so a ratio of `0.1`
/// yields requests whose facts are ~90% shared prefix. This is the input
/// shape `cqa_solver::session::CertaintySession::certain_batch_family`
/// amortizes (prefix loaded and index-committed once, O(delta) overlay per
/// request), and what the `session_cow` bench replays against fresh-load.
pub fn shared_prefix_families(
    word: &cqa_core::word::Word,
    width: usize,
    instances: usize,
    delta_ratio: f64,
    seed: u64,
) -> cqa_db::family::InstanceFamily {
    let prefix = LayeredConfig::for_word(word, width, seed).generate();
    let delta_width = ((width as f64 * delta_ratio).ceil() as usize).clamp(1, width.max(1));
    let deltas = (0..instances)
        .map(|i| {
            // Delta vertices reuse the prefix's `L{layer}_{j}` names for
            // j < delta_width, so delta edges extend (and conflict with)
            // prefix blocks rather than forming a disjoint component.
            let config = LayeredConfig {
                conflict_probability: 0.4,
                dead_end_probability: 0.1,
                seed: seed ^ 0x5EED_FA31 ^ ((i as u64 + 1) << 20),
                ..LayeredConfig::for_word(word, delta_width, 0)
            };
            config.generate()
        })
        .collect();
    cqa_db::family::InstanceFamily::with_deltas(prefix, deltas)
}

/// One request of a multi-tenant serving stream: which tenant's family it
/// addresses and what query it asks. Produced by [`tenant_request_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRequest {
    /// Index of the tenant (into whatever tenant list the driver loaded).
    pub tenant: usize,
    /// The path query to decide against every request of that tenant's
    /// family.
    pub query: cqa_core::query::PathQuery,
}

/// A seeded multi-tenant request stream: `requests` draws of
/// `(tenant, query)`, with tenants drawn from a Zipf-ish distribution
/// (weight of tenant `t` proportional to `1 / (t + 1)^skew`) and queries
/// drawn uniformly from `words`. `skew = 0.0` is uniform across tenants;
/// larger skews concentrate traffic on the low-numbered (hot) tenants,
/// which is what makes LRU residency caches earn their keep. This is the
/// input shape `cqa-server`'s dispatch loop serves, and what the
/// `server_throughput` bench and the loopback load driver replay.
pub fn tenant_request_stream(
    tenants: usize,
    words: &[&str],
    requests: usize,
    skew: f64,
    seed: u64,
) -> Vec<TenantRequest> {
    assert!(tenants > 0, "need at least one tenant");
    assert!(!words.is_empty(), "need at least one query word");
    let queries: Vec<cqa_core::query::PathQuery> = words
        .iter()
        .map(|w| cqa_core::query::PathQuery::parse(w).expect("valid query word"))
        .collect();
    // Cumulative Zipf weights over the tenant indexes.
    let mut cumulative = Vec::with_capacity(tenants);
    let mut total = 0.0f64;
    for t in 0..tenants {
        total += 1.0 / ((t + 1) as f64).powf(skew);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut unit = move || (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (0..requests)
        .map(|_| {
            let draw = unit() * total;
            let tenant = cumulative.partition_point(|&c| c <= draw).min(tenants - 1);
            let query = queries[(unit() * queries.len() as f64) as usize % queries.len()].clone();
            TenantRequest { tenant, query }
        })
        .collect()
}

/// Generates a batch of small random instances suitable for cross-checking a
/// solver against the naive oracle (repair count capped).
pub fn oracle_batch(
    letters: &str,
    count: usize,
    seed: u64,
    max_repairs: u128,
) -> Vec<DatabaseInstance> {
    let mut out = Vec::new();
    let mut s = seed;
    while out.len() < count {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let config = RandomInstanceConfig::new(letters, 5, 6 + (s % 8) as usize, s);
        let db = config.generate();
        if db.repair_count() <= max_repairs {
            out.push(db);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::word::Word;

    #[test]
    fn random_generation_is_deterministic_per_seed() {
        let a = RandomInstanceConfig::new("RX", 6, 20, 42).generate();
        let b = RandomInstanceConfig::new("RX", 6, 20, 42).generate();
        let c = RandomInstanceConfig::new("RX", 6, 20, 43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn layered_instances_respect_layer_structure() {
        let word = Word::from_letters("RRX");
        let db = LayeredConfig::for_word(&word, 10, 7).generate();
        // Every fact goes from layer i to layer i+1 and uses the layer's
        // relation name.
        for fact in db.facts() {
            let key = fact.key.as_str();
            let value = fact.value.as_str();
            let key_layer: usize = key[1..key.find('_').unwrap()].parse().unwrap();
            let value_layer: usize = value[1..value.find('_').unwrap()].parse().unwrap();
            assert_eq!(value_layer, key_layer + 1);
            assert_eq!(fact.rel, word[key_layer % word.len()]);
        }
    }

    #[test]
    fn scaling_series_grows_with_width() {
        let word = Word::from_letters("RRX");
        let series = scaling_series(&word, &[4, 16, 64], 3);
        assert_eq!(series.len(), 3);
        assert!(series[0].1.len() < series[2].1.len());
    }

    #[test]
    fn repeated_query_requests_interleave_round_robin() {
        let requests = repeated_query_requests(&["RRX", "RXRY"], 3, 4, 9);
        assert_eq!(requests.len(), 6);
        // Round-robin: queries alternate, and each (query, round) pair is a
        // deterministic instance.
        assert_eq!(requests[0].0, requests[2].0);
        assert_eq!(requests[1].0, requests[3].0);
        assert_ne!(requests[0].0, requests[1].0);
        let again = repeated_query_requests(&["RRX", "RXRY"], 3, 4, 9);
        assert_eq!(requests[4].1, again[4].1);
        // Distinct rounds draw distinct instances.
        assert_ne!(requests[0].1, requests[2].1);
    }

    #[test]
    fn shared_prefix_families_are_deterministic_and_mostly_shared() {
        let word = Word::from_letters("RRX");
        let family = shared_prefix_families(&word, 20, 5, 0.1, 0x0FA7);
        assert_eq!(family.len(), 5);
        assert!(!family.prefix().is_empty());
        let again = shared_prefix_families(&word, 20, 5, 0.1, 0x0FA7);
        assert_eq!(family, again);
        assert_ne!(family, shared_prefix_families(&word, 20, 5, 0.1, 0x0FA8));
        // Deltas are distinct per request and small relative to the prefix.
        assert_ne!(family.deltas()[0], family.deltas()[1]);
        assert!(
            family.shared_fraction() > 0.8,
            "ratio 0.1 should share most facts, got {}",
            family.shared_fraction()
        );
        // Delta vertices live in the prefix's vertex space, so at least one
        // delta fact shares a block key with (or duplicates) prefix facts.
        let delta_keys: std::collections::BTreeSet<_> = family
            .deltas()
            .iter()
            .flat_map(|d| d.facts().iter().map(|f| f.key))
            .collect();
        assert!(family
            .prefix()
            .facts()
            .iter()
            .any(|f| delta_keys.contains(&f.key)));
        // A fatter delta ratio shares less.
        let fat = shared_prefix_families(&word, 20, 5, 1.0, 0x0FA7);
        assert!(fat.shared_fraction() < family.shared_fraction());
    }

    #[test]
    fn tenant_streams_are_deterministic_and_cover_tenants_and_words() {
        let stream = tenant_request_stream(4, &["RRX", "RXRY"], 400, 0.0, 0x7E4A);
        assert_eq!(stream.len(), 400);
        assert_eq!(
            stream,
            tenant_request_stream(4, &["RRX", "RXRY"], 400, 0.0, 0x7E4A)
        );
        assert_ne!(
            stream,
            tenant_request_stream(4, &["RRX", "RXRY"], 400, 0.0, 0x7E4B)
        );
        // Uniform skew touches every tenant and every word.
        for t in 0..4 {
            assert!(stream.iter().any(|r| r.tenant == t), "tenant {t} never hit");
        }
        let distinct: std::collections::BTreeSet<_> =
            stream.iter().map(|r| r.query.word().clone()).collect();
        assert_eq!(distinct.len(), 2);
        assert!(stream.iter().all(|r| r.tenant < 4));
    }

    #[test]
    fn tenant_skew_concentrates_traffic_on_hot_tenants() {
        let hot_share = |skew: f64| -> f64 {
            let stream = tenant_request_stream(8, &["RRX"], 2000, skew, 0xC01D);
            stream.iter().filter(|r| r.tenant == 0).count() as f64 / 2000.0
        };
        let uniform = hot_share(0.0);
        let skewed = hot_share(1.5);
        assert!(
            (uniform - 1.0 / 8.0).abs() < 0.05,
            "uniform share was {uniform}"
        );
        // With skew 1.5 over 8 tenants, tenant 0's weight is ~52%.
        assert!(skewed > 0.4, "skewed share was {skewed}");
    }

    #[test]
    fn oracle_batches_respect_the_repair_cap() {
        for db in oracle_batch("RX", 10, 99, 1 << 10) {
            assert!(db.repair_count() <= 1 << 10);
        }
    }

    #[test]
    fn conflict_probability_one_forces_inconsistency() {
        let config = LayeredConfig {
            relations: vec![RelName::new("R")],
            layers: 3,
            width: 8,
            conflict_probability: 1.0,
            dead_end_probability: 0.0,
            seed: 1,
        };
        let db = config.generate();
        // With width 8 and forced double edges, some block almost surely has
        // two facts; at the very least the instance is nonempty.
        assert!(!db.is_empty());
        assert!(db.repair_count() >= 1);
    }
}
