//! The serving loop: a TCP listener whose per-connection reader threads
//! feed one shared work queue, drained by parked worker threads that answer
//! through a warm [`CertaintySession`] against the registry's resident
//! bases.
//!
//! Concurrency shape (one level of parallelism at a time, like the rest of
//! the workspace): connections are cheap reader threads that block on the
//! socket, parse one command, enqueue it and wait for its reply — so one
//! slow tenant never wedges the listener. The `workers` threads park on a
//! condvar, pop commands in arrival order and run the solver with
//! *sequential* engine options; cross-request parallelism comes from having
//! several workers, not from nesting thread scopes. Replies travel back on a
//! per-command channel, which keeps each connection's request/reply order
//! trivially correct.
//!
//! Backpressure and observability: the work queue is bounded
//! ([`ServerConfig::max_queue`]) — readers *reject* with a typed `ERR busy`
//! instead of enqueueing past the cap, so overload degrades to fast,
//! retryable refusals rather than unbounded memory and latency. `STATS` and
//! `METRICS` are answered inline on the reader thread from atomic snapshots
//! (never queued behind derivations, never formatting under the work-queue
//! lock), so the observability plane stays responsive exactly when the
//! serving plane is saturated. Every command is timed (queue wait, worker
//! service, whole wire turnaround — see [`crate::metrics`]), and requests
//! slower than `PATH_CQA_SLOW_MS` get a one-line phase breakdown on stderr.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use cqa_core::query::PathQuery;
use cqa_datalog::parallel::EvalOptions;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::nl_solver::NlBackend;
use cqa_solver::session::CertaintySession;

use crate::metrics::ServerMetrics;
use crate::proto::{
    parse_command, Command, CommandKind, ErrorCode, Reply, WireError, MAX_COMMAND_LINE,
};
use crate::registry::{MutateError, ResidencyLimits, TenantRegistry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Worker threads draining the shared queue.
    pub workers: usize,
    /// Residency caps for the tenant registry.
    pub limits: ResidencyLimits,
    /// Bound on the shared work queue. Readers reject commands with a typed
    /// `ERR busy` instead of enqueueing past this — the client can retry,
    /// and a burst can no longer grow server memory and queue latency
    /// without limit. The default is generous: it exists to cap pathology,
    /// not to shape normal traffic.
    pub max_queue: usize,
    /// Honor the `CRASH` and `SLOW` commands (panic / stall the handling
    /// worker). Off by default; the loopback robustness and backpressure
    /// tests turn it on.
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            limits: ResidencyLimits::default(),
            max_queue: 1024,
            fault_injection: false,
        }
    }
}

/// One queued command and the channel its reply goes back on.
struct Job {
    command: Command,
    /// `LOAD`'s length-framed family text, already read off the socket.
    payload: Option<String>,
    /// The command's metric label (computed before `command` is consumed).
    kind: CommandKind,
    /// When the reader pushed the job — queue wait is measured from here.
    enqueued: Instant,
    reply: mpsc::Sender<Reply>,
}

/// State shared by the listener, connections and workers.
struct Shared {
    registry: TenantRegistry,
    session: CertaintySession,
    metrics: ServerMetrics,
    queue: Mutex<VecDeque<Job>>,
    max_queue: usize,
    available: Condvar,
    stop: AtomicBool,
    fault_injection: bool,
}

impl Shared {
    /// Locks the work queue, recovering from poisoning. The queue's only
    /// invariant is "a deque of jobs" — there is no partial state a panic
    /// could leave behind — so a poisoned lock must not wedge every
    /// connection and worker for good.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running server: join handles plus the shared state, with explicit
/// [`ServerHandle::shutdown`] (also run on drop).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks the calling thread until the listener exits (it never does on
    /// its own, so this is the daemon's "run forever").
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting, drains the workers and joins every thread the
    /// server owns. Connections still open see their socket close.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers drain every job enqueued before the stop flag, and readers
        // refuse to enqueue after it — but clear stragglers anyway (dropping
        // a job's reply sender unblocks its reader with the typed shutdown
        // error) so no connection can hang on a logic change above.
        self.shared.lock_queue().clear();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts a server: binds the address, spawns the worker pool and the
/// accept loop, and returns immediately.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // One warm session serves every tenant: per-query artifacts
    // (classification, compiled CQA programs, automata) are shared
    // across tenants by construction — they depend only on the query.
    // Engine runs stay sequential; parallelism is across commands.
    let session = CertaintySession::with_options(NlBackend::Datalog, EvalOptions::sequential());
    let max_queue = config.max_queue.max(1);
    let metrics = ServerMetrics::new(max_queue, &session);
    let shared = Arc::new(Shared {
        registry: TenantRegistry::new(config.limits),
        session,
        metrics,
        queue: Mutex::new(VecDeque::new()),
        max_queue,
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        fault_injection: config.fault_injection,
    });
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Readers are detached: they exit when their client disconnects or
        // when the worker pool shuts down under them (reply channel closes).
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &shared);
        });
    }
}

/// Reads commands off one connection, routes them through the shared queue
/// and writes each reply before reading the next command — per-connection
/// ordering is the socket's own.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // Replies are small single-line frames written as one `write_all`; with
    // Nagle's algorithm on, each request/reply turn would stall up to ~40ms
    // against the peer's delayed ACK — disable it, this is a low-latency
    // RPC socket, not a bulk stream.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let send = |writer: &mut TcpStream, reply: &Reply| -> std::io::Result<()> {
        let mut frame = reply.render();
        frame.push('\n');
        // `METRICS` is the one multi-line reply: the header line carries the
        // byte length and the text follows in the same single write, so the
        // frame cannot interleave and the client's next `read_line` starts
        // exactly past it.
        if let Reply::Metrics(text) = reply {
            frame.push_str(text);
        }
        writer.write_all(frame.as_bytes())
    };
    loop {
        line.clear();
        // Cap the command line so a client streaming newline-free bytes
        // cannot grow the buffer without bound.
        let n = (&mut reader)
            .take(MAX_COMMAND_LINE as u64 + 1)
            .read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // client disconnected
        }
        if n > MAX_COMMAND_LINE {
            // Framing is lost (the rest of the overlong line would parse as
            // commands): report and close.
            let err = WireError::new(
                ErrorCode::BadCommand,
                format!("command line exceeds {MAX_COMMAND_LINE} bytes"),
            );
            return send(&mut writer, &Reply::Err(err));
        }
        let command = match parse_command(line.trim_end_matches(['\r', '\n'])) {
            Ok(command) => command,
            Err(err) => {
                send(&mut writer, &Reply::Err(err))?;
                // A malformed payload-carrying line (LOAD/APPEND/RETRACT)
                // may be followed by a payload whose length we never
                // learned — framing cannot be trusted, so close. Any other
                // malformed line leaves the connection usable.
                let verb = line.trim_start();
                if ["LOAD", "APPEND", "RETRACT"]
                    .iter()
                    .any(|v| verb.starts_with(v))
                {
                    return Ok(());
                }
                continue;
            }
        };
        // Wire turnaround is measured from a successfully parsed command
        // line to its reply hitting the socket — payload read, queue wait
        // and service included.
        let kind = command.kind();
        let turnaround = cqa_obs::Stopwatch::start();
        shared.metrics.count_command(kind);
        let payload = match &command {
            Command::Load { bytes, .. }
            | Command::Append { bytes, .. }
            | Command::Retract { bytes, .. } => {
                // Read exactly `bytes` of payload *before* any further
                // validation, so a rejected command never leaves payload
                // bytes in the stream to be parsed as commands. Read in
                // chunks so memory grows only as payload data actually
                // arrives (a 20-byte header must not pin 64 MiB).
                let mut buf = Vec::with_capacity((*bytes).min(64 << 10));
                let mut remaining = *bytes;
                while remaining > 0 {
                    let chunk = remaining.min(64 << 10);
                    let start = buf.len();
                    buf.resize(start + chunk, 0);
                    reader.read_exact(&mut buf[start..])?;
                    remaining -= chunk;
                }
                match String::from_utf8(buf) {
                    Ok(text) => Some(text),
                    Err(_) => {
                        let err = WireError::new(ErrorCode::BadPayload, "payload is not UTF-8");
                        send(&mut writer, &Reply::Err(err))?;
                        continue;
                    }
                }
            }
            _ => None,
        };
        if matches!(command, Command::Quit) {
            send(&mut writer, &Reply::Bye)?;
            shared.metrics.record_command(kind, turnaround.elapsed_ns());
            return Ok(());
        }
        // The observability plane never queues behind the serving plane:
        // STATS and METRICS are answered right here on the reader thread
        // from atomic snapshots (per-connection ordering still holds — the
        // reader is serial). A wedged or saturated worker pool therefore
        // cannot block the commands that diagnose it.
        if matches!(command, Command::Stats { .. } | Command::Metrics) {
            let reply = execute_readonly(shared, command);
            send(&mut writer, &reply)?;
            shared.metrics.record_command(kind, turnaround.elapsed_ns());
            continue;
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = shared.lock_queue();
            if shared.stop.load(Ordering::SeqCst) {
                // The worker pool is (or is about to be) gone; nothing will
                // ever pop this job.
                drop(queue);
                let err = WireError::new(ErrorCode::Solver, "server shutting down");
                return send(&mut writer, &Reply::Err(err));
            }
            if queue.len() >= shared.max_queue {
                // Bounded queue: reject *before* enqueueing. The command had
                // no effect, so the client can safely retry — and the
                // connection stays fully usable.
                drop(queue);
                shared.metrics.busy_total.inc();
                let err = WireError::new(
                    ErrorCode::Busy,
                    format!("work queue full ({} jobs queued)", shared.max_queue),
                );
                send(&mut writer, &Reply::Err(err))?;
                shared.metrics.record_command(kind, turnaround.elapsed_ns());
                continue;
            }
            queue.push_back(Job {
                command,
                payload,
                kind,
                enqueued: Instant::now(),
                reply: tx,
            });
            shared.metrics.queue_depth.set(queue.len() as i64);
        }
        shared.available.notify_one();
        // Wait for the worker's reply, but never past a shutdown: workers
        // drain every job enqueued before the stop flag, so the periodic
        // stop check only fires for jobs abandoned by a dying pool — reply
        // with the typed error and close.
        let reply = loop {
            match rx.recv_timeout(std::time::Duration::from_millis(200)) {
                Ok(reply) => break reply,
                Err(mpsc::RecvTimeoutError::Timeout) if !shared.stop.load(Ordering::SeqCst) => {}
                Err(_) => {
                    let err = WireError::new(ErrorCode::Solver, "server shut down");
                    return send(&mut writer, &Reply::Err(err));
                }
            }
        };
        send(&mut writer, &reply)?;
        shared.metrics.record_command(kind, turnaround.elapsed_ns());
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_depth.set(queue.len() as i64);
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let kind = job.kind;
        let queue_wait_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.metrics.record_queue_wait(kind, queue_wait_ns);
        // The slow log attributes the request; grab the label before the
        // command is consumed by execution.
        let tenant = job.command.tenant().map(str::to_owned);
        let service = cqa_obs::Stopwatch::start();
        // A panic below this line must not kill the worker (the pool never
        // respawns) or poison shared state: catch it at the dispatch
        // boundary, report it as a typed error, and keep draining the
        // queue. The registry and queue locks both recover from poisoning,
        // so a panic mid-command degrades to one failed request.
        let reply = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(shared, job.command, job.payload)
        }))
        .unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Reply::Err(WireError::new(
                ErrorCode::Internal,
                format!("worker panicked: {detail}"),
            ))
        });
        let service_ns = service.elapsed_ns();
        shared.metrics.record_service(kind, service_ns);
        if let Some(threshold_ms) = cqa_obs::slow_millis() {
            let total_ns = queue_wait_ns.saturating_add(service_ns);
            if total_ns >= threshold_ms.saturating_mul(1_000_000) {
                shared.metrics.slow_total.inc();
                eprintln!(
                    "slow-request command={} tenant={} queue_ms={:.1} service_ms={:.1} total_ms={:.1} threshold_ms={}",
                    kind.as_str(),
                    tenant.as_deref().unwrap_or("-"),
                    queue_wait_ns as f64 / 1e6,
                    service_ns as f64 / 1e6,
                    total_ns as f64 / 1e6,
                    threshold_ms,
                );
            }
        }
        // A send failure just means the connection went away mid-command.
        let _ = job.reply.send(reply);
    }
}

/// Executes the inline (reader-thread) commands: `STATS` and `METRICS`.
/// Everything here reads atomic counters or takes short, private locks (the
/// registry's map lock, the metrics registry's render lock) — never the
/// work-queue lock, and never a derivation.
fn execute_readonly(shared: &Shared, command: Command) -> Reply {
    match command {
        Command::Metrics => {
            let registry = shared.registry.stats();
            shared.metrics.residents.set(registry.residents as i64);
            shared
                .metrics
                .resident_facts
                .set(registry.resident_facts as i64);
            Reply::Metrics(shared.metrics.render())
        }
        other => execute(shared, other, None),
    }
}

/// Executes one command against the registry and session. Every failure is
/// a typed [`Reply::Err`]; this function never panics on client input.
fn execute(shared: &Shared, command: Command, payload: Option<String>) -> Reply {
    match command {
        Command::Load { tenant, .. } => {
            let text = payload.unwrap_or_default();
            match cqa_db::codec::family_from_text(&text) {
                Ok(family) => {
                    let outcome = shared.registry.load(&tenant, family);
                    Reply::Loaded {
                        tenant,
                        requests: outcome.requests,
                        prefix_facts: outcome.prefix_facts,
                        evicted: outcome.evicted.len(),
                    }
                }
                Err(e) => Reply::Err(WireError::new(ErrorCode::BadPayload, e.to_string())),
            }
        }
        Command::Append {
            tenant, request, ..
        } => {
            let text = payload.unwrap_or_default();
            match cqa_db::codec::from_text(&text) {
                Ok(additions) => {
                    let mutated = shared
                        .registry
                        .mutate_delta(&tenant, request, |delta| delta.union(&additions));
                    match mutated {
                        Ok(facts) => Reply::Appended {
                            tenant,
                            request,
                            facts,
                        },
                        Err(e) => mutate_error(&tenant, request, e),
                    }
                }
                Err(e) => Reply::Err(WireError::new(ErrorCode::BadPayload, e.to_string())),
            }
        }
        Command::Retract {
            tenant, request, ..
        } => {
            let text = payload.unwrap_or_default();
            match cqa_db::codec::from_text(&text) {
                Ok(removals) => {
                    let mutated = shared.registry.mutate_delta(&tenant, request, |delta| {
                        // The instance API is append-only (fact ids are
                        // stable), so retraction rebuilds the delta without
                        // the removed facts. Deltas are O(request) small.
                        DatabaseInstance::from_facts(
                            delta
                                .facts()
                                .iter()
                                .copied()
                                .filter(|fact| !removals.contains(fact)),
                        )
                    });
                    match mutated {
                        Ok(facts) => Reply::Retracted {
                            tenant,
                            request,
                            facts,
                        },
                        Err(e) => mutate_error(&tenant, request, e),
                    }
                }
                Err(e) => Reply::Err(WireError::new(ErrorCode::BadPayload, e.to_string())),
            }
        }
        Command::Query { tenant, word } => answer(shared, &tenant, &word, None),
        Command::Batch {
            tenant,
            requests,
            word,
        } => answer(shared, &tenant, &word, Some(requests)),
        Command::Stats { tenant: None } => {
            let registry = shared.registry.stats();
            let session = shared.session.stats();
            let pair = |k: &str, v: String| (k.to_owned(), v);
            Reply::Stats(vec![
                pair("residents", registry.residents.to_string()),
                pair("resident_facts", registry.resident_facts.to_string()),
                pair("loads", registry.loads.to_string()),
                pair("evictions", registry.evictions.to_string()),
                pair("tenant_hits", registry.hits.to_string()),
                pair("tenant_misses", registry.misses.to_string()),
                pair("base_index_builds", registry.base_index_builds.to_string()),
                pair("plan_hits", session.cache_hits.to_string()),
                pair("plan_misses", session.cache_misses.to_string()),
                pair("queries_prepared", session.queries_prepared.to_string()),
                pair("requests_decided", session.routes.total().to_string()),
                pair("route_fo", session.routes.fo_rewriting.to_string()),
                pair("route_nl_direct", session.routes.nl_direct.to_string()),
                pair("route_nl_datalog", session.routes.nl_datalog.to_string()),
                pair("route_ptime", session.routes.ptime_fixpoint.to_string()),
                pair("route_conp", session.routes.conp_sat.to_string()),
                pair("rules_pruned", session.demand.rules_pruned.to_string()),
                pair(
                    "predicates_pruned",
                    session.demand.predicates_pruned.to_string(),
                ),
                pair("tuples_derived", session.demand.tuples_derived.to_string()),
                pair("kernel_rules", session.demand.kernel_rules.to_string()),
                pair("generic_rules", session.demand.generic_rules.to_string()),
                pair(
                    "kernel_invocations",
                    session.demand.kernel_invocations.to_string(),
                ),
                pair(
                    "checkpoint_hits",
                    session.demand.checkpoint_hits.to_string(),
                ),
                pair(
                    "maintained_hits",
                    session.demand.maintained_hits.to_string(),
                ),
                pair(
                    "tuples_overdeleted",
                    session.demand.tuples_overdeleted.to_string(),
                ),
                pair(
                    "tuples_rederived",
                    session.demand.tuples_rederived.to_string(),
                ),
            ])
        }
        Command::Stats {
            tenant: Some(tenant),
        } => match shared.registry.tenant_stats(&tenant) {
            Some(stats) => {
                let pair = |k: &str, v: String| (k.to_owned(), v);
                Reply::Stats(vec![
                    pair("tenant", stats.tenant),
                    pair("requests", stats.requests.to_string()),
                    pair("prefix_facts", stats.prefix_facts.to_string()),
                    pair("facts", stats.facts.to_string()),
                    pair("base_index_builds", stats.base_index_builds.to_string()),
                    pair("served", stats.served.to_string()),
                    pair("tuples_derived", stats.tuples_derived.to_string()),
                    pair("derive_ns", stats.derive_ns.to_string()),
                    pair("maintained_tuples", stats.maintained_tuples.to_string()),
                ])
            }
            None => Reply::Err(WireError::new(
                ErrorCode::NotLoaded,
                format!("tenant {tenant:?} is not resident"),
            )),
        },
        Command::Evict { tenant } => {
            if shared.registry.evict(&tenant) {
                Reply::Evicted { tenant }
            } else {
                Reply::Err(WireError::new(
                    ErrorCode::NotLoaded,
                    format!("tenant {tenant:?} is not resident"),
                ))
            }
        }
        // QUIT and METRICS are handled on the connection; a queued one is a
        // logic error upstream, not a client-visible state.
        Command::Quit => Reply::Bye,
        Command::Metrics => execute_readonly(shared, Command::Metrics),
        Command::Crash => {
            if shared.fault_injection {
                // Deliberate: the loopback robustness tests use this to
                // prove the dispatch boundary contains worker panics.
                panic!("CRASH requested by client (fault injection enabled)");
            }
            Reply::Err(WireError::new(
                ErrorCode::BadCommand,
                "CRASH requires fault injection to be enabled server-side",
            ))
        }
        Command::Slow { millis } => {
            if shared.fault_injection {
                // Deliberate: the backpressure tests park this worker to
                // saturate a tiny bounded queue deterministically.
                std::thread::sleep(std::time::Duration::from_millis(millis));
                Reply::Slept { millis }
            } else {
                Reply::Err(WireError::new(
                    ErrorCode::BadCommand,
                    "SLOW requires fault injection to be enabled server-side",
                ))
            }
        }
    }
}

/// Renders a registry mutation failure as the matching wire error (the same
/// codes `QUERY`/`BATCH` use for the same conditions).
fn mutate_error(tenant: &str, request: usize, e: MutateError) -> Reply {
    match e {
        MutateError::NotResident => Reply::Err(WireError::new(
            ErrorCode::NotLoaded,
            format!("tenant {tenant:?} is not resident"),
        )),
        MutateError::BadRequest { requests } => Reply::Err(WireError::new(
            ErrorCode::BadRequestId,
            format!(
                "request id {request} out of range for tenant {tenant:?} ({requests} requests)"
            ),
        )),
    }
}

/// Serves `QUERY` (all requests) or `BATCH` (an explicit subset) against a
/// resident tenant through the warm session and the tenant's resident base.
fn answer(shared: &Shared, tenant: &str, word: &str, subset: Option<Vec<usize>>) -> Reply {
    // Validate the query before touching the registry: a rejected command
    // must not bump the tenant's LRU recency or served/hit counters.
    // Serving policy: the wire speaks the paper's single-letter word syntax,
    // so a query word is a nonempty ASCII-alphanumeric string (this also
    // keeps arbitrary client bytes out of the interned symbol tables).
    if word.is_empty() || !word.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Reply::Err(WireError::new(
            ErrorCode::BadQuery,
            format!("query word {word:?} must be ASCII alphanumeric"),
        ));
    }
    let query = match PathQuery::parse(word) {
        Ok(query) => query,
        Err(e) => {
            return Reply::Err(WireError::new(
                ErrorCode::BadQuery,
                format!("bad query word {word:?}: {e}"),
            ))
        }
    };
    let Some(data) = shared.registry.get(tenant) else {
        return Reply::Err(WireError::new(
            ErrorCode::NotLoaded,
            format!("tenant {tenant:?} is not resident"),
        ));
    };
    let requests: Vec<usize> = match subset {
        Some(ids) => {
            if let Some(&bad) = ids.iter().find(|&&id| id >= data.family.len()) {
                return Reply::Err(WireError::new(
                    ErrorCode::BadRequestId,
                    format!(
                        "request id {bad} out of range for tenant {tenant:?} ({} requests)",
                        data.family.len()
                    ),
                ));
            }
            ids
        }
        None => (0..data.family.len()).collect(),
    };
    let derive = cqa_obs::Stopwatch::start();
    let (answers, derived) = shared.session.certain_batch_family_resident_counted(
        &query,
        &data.family,
        &data.base,
        &requests,
    );
    shared
        .registry
        .record_derived(tenant, derived, derive.elapsed_ns());
    let mut bits = Vec::with_capacity(answers.len());
    for (slot, result) in answers.into_iter().enumerate() {
        match result {
            Ok(bit) => bits.push(bit),
            Err(e) => {
                return Reply::Err(WireError::new(
                    ErrorCode::Solver,
                    format!("request {} failed: {e}", requests[slot]),
                ))
            }
        }
    }
    Reply::Answers(bits)
}
