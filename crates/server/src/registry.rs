//! The tenant registry: which instance families are resident, each with a
//! frozen copy-on-write base store, plus the counters the `STATS` command
//! and the eviction policy read.
//!
//! A *resident* tenant is an [`InstanceFamily`] whose shared prefix has been
//! loaded and frozen into an `Arc<BaseStore>` exactly once (at `LOAD` time).
//! Every connection and worker that serves the tenant shares that base, so
//! the prefix's committed probe indexes are built at most once per residency
//! — [`cqa_datalog::store::BaseStore::index_builds`] is the ground truth the
//! loopback tests pin. Eviction is least-recently-used over a generation
//! counter bumped on every lookup, bounded by both a tenant-count and a
//! total-fact cap; evicted tenants' index-build counts are retired into a
//! cumulative total so "rebuilt exactly once after re-`LOAD`" stays
//! observable.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cqa_datalog::store::{edb_base_from_instance, BaseStore};
use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;

/// Residency caps. A `LOAD` that would exceed either cap evicts
/// least-recently-used tenants first (never the tenant being loaded, so one
/// oversized family can still be served — it just monopolizes the cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyLimits {
    /// Maximum number of resident tenants.
    pub max_tenants: usize,
    /// Maximum total facts (prefix + deltas) across resident tenants.
    pub max_facts: usize,
}

impl Default for ResidencyLimits {
    fn default() -> ResidencyLimits {
        ResidencyLimits {
            max_tenants: 64,
            max_facts: 8 << 20,
        }
    }
}

/// One resident tenant's immutable data, shared by reference with every
/// worker currently serving it (eviction drops the registry's `Arc`;
/// in-flight requests keep theirs until they finish).
#[derive(Debug)]
pub struct TenantData {
    /// The tenant's name.
    pub name: String,
    /// The family as loaded.
    pub family: InstanceFamily,
    /// The frozen base store of the family's prefix, built once per load.
    pub base: Arc<BaseStore>,
    /// Total facts across prefix and deltas (the eviction size).
    pub facts: usize,
}

#[derive(Debug)]
struct Resident {
    data: Arc<TenantData>,
    last_used: u64,
    served: u64,
    /// Tuples the Datalog engine derived answering this residency's
    /// requests (reported back by the serving loop per batch).
    tuples_derived: u64,
    /// Wall-clock nanoseconds the serving loop spent deciding this
    /// residency's QUERY/BATCH commands (same per-batch attribution as
    /// `tuples_derived`) — the per-tenant derive-time view `METRICS` can't
    /// give without a label-cardinality blowup.
    derive_ns: u64,
}

/// Registry-wide counters, as reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Tenants currently resident.
    pub residents: usize,
    /// Total facts across resident tenants, including each residency's
    /// maintained-IDB tuples (the same size the fact cap is enforced on).
    pub resident_facts: usize,
    /// `LOAD`s performed (including replacements of a resident tenant).
    pub loads: u64,
    /// Tenants dropped, by cap pressure or explicit `EVICT`.
    pub evictions: u64,
    /// Lookups that found their tenant resident.
    pub hits: u64,
    /// Lookups that missed (not loaded, or evicted).
    pub misses: u64,
    /// Committed base probe indexes built across *all* bases this registry
    /// ever held (evicted bases' builds are retired into the total). For a
    /// fixed query mix this grows exactly once per residency — the
    /// builds-once invariant the loopback tests pin.
    pub base_index_builds: u64,
}

/// One tenant's counters, as reported by `STATS <tenant>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's name.
    pub tenant: String,
    /// Requests (deltas) in the resident family.
    pub requests: usize,
    /// Facts in the shared prefix.
    pub prefix_facts: usize,
    /// Total facts (prefix + deltas).
    pub facts: usize,
    /// Committed probe indexes built on this residency's base so far.
    pub base_index_builds: u64,
    /// Commands served against this residency (lookups that hit it).
    pub served: u64,
    /// Tuples the Datalog engine derived answering this residency's
    /// requests — the per-tenant view of demand-driven derivation (lower
    /// under pruning/magic than with demand off, for the same traffic).
    pub tuples_derived: u64,
    /// Wall-clock nanoseconds spent deciding this residency's QUERY/BATCH
    /// commands (prepare + derive + answer, per-batch attribution).
    pub derive_ns: u64,
    /// Tuples currently held in maintained IDB states on this residency's
    /// base (differential maintenance across `APPEND`/`RETRACT`). Counts
    /// against the registry fact cap; drops to zero with the base on
    /// `EVICT`/re-`LOAD`.
    pub maintained_tuples: u64,
}

/// Why an `APPEND`/`RETRACT` could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutateError {
    /// The tenant is not resident.
    NotResident,
    /// The request index is outside the tenant's family; carries the
    /// family's request count for the error message.
    BadRequest {
        /// Number of requests in the resident family.
        requests: usize,
    },
}

/// Outcome of a `LOAD`: what became resident and what was pushed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Requests (deltas) in the loaded family.
    pub requests: usize,
    /// Facts in the loaded family's prefix.
    pub prefix_facts: usize,
    /// Names of tenants evicted to make room, oldest first.
    pub evicted: Vec<String>,
}

#[derive(Debug, Default)]
struct Inner {
    residents: HashMap<String, Resident>,
    clock: u64,
    loads: u64,
    evictions: u64,
    hits: u64,
    misses: u64,
    /// Index builds of bases no longer resident.
    retired_builds: u64,
}

impl Inner {
    fn retire(&mut self, resident: Resident) {
        self.retired_builds += resident.data.base.index_builds();
        self.evictions += 1;
    }

    /// Resident size for cap purposes: loaded facts (prefix + deltas,
    /// recomputed on every `mutate_delta`) *plus* the maintained IDB tuples
    /// materialized on the residency's base. A tenant whose differential
    /// maintenance state has grown large exerts real memory pressure and
    /// must count against `max_facts`, or maintenance would be a cap bypass.
    fn size(resident: &Resident) -> usize {
        resident.data.facts + resident.data.base.maintained_tuples() as usize
    }

    fn total_facts(&self) -> usize {
        self.residents.values().map(Inner::size).sum()
    }

    /// Evicts least-recently-used tenants (never `keep`) until both caps
    /// hold.
    fn enforce(&mut self, limits: &ResidencyLimits, keep: &str, evicted: &mut Vec<String>) {
        while self.residents.len() > limits.max_tenants || self.total_facts() > limits.max_facts {
            let victim = self
                .residents
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, r)| r.last_used)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                break; // only `keep` is left; an oversized tenant stays
            };
            let resident = self.residents.remove(&victim).expect("victim resident");
            self.retire(resident);
            evicted.push(victim);
        }
    }
}

/// The residency cache: tenant name → frozen base + family, with LRU
/// eviction and the counters behind `STATS`. All methods are `&self`; a
/// single mutex guards the map (lookups are cheap — the expensive work, base
/// construction, happens outside any serving hot path, at `LOAD`).
#[derive(Debug)]
pub struct TenantRegistry {
    inner: Mutex<Inner>,
    limits: ResidencyLimits,
}

impl TenantRegistry {
    /// Creates an empty registry with the given caps.
    pub fn new(limits: ResidencyLimits) -> TenantRegistry {
        TenantRegistry {
            inner: Mutex::new(Inner::default()),
            limits,
        }
    }

    /// The registry's caps.
    pub fn limits(&self) -> ResidencyLimits {
        self.limits
    }

    /// Locks the registry, recovering from poisoning: every method restores
    /// the map's invariants before releasing the lock, so a worker that
    /// panicked while holding it leaves consistent state behind — wedging
    /// every later command on the poison flag would turn one bad request
    /// into a full outage.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes a tenant resident: freezes the family's prefix into a base
    /// store (the one O(prefix) cost of the residency), replaces any
    /// previous residency of the same name, and evicts LRU tenants past the
    /// caps.
    pub fn load(&self, name: &str, family: InstanceFamily) -> LoadOutcome {
        let prefix_facts = family.prefix().len();
        let requests = family.len();
        let facts = prefix_facts + family.deltas().iter().map(|d| d.len()).sum::<usize>();
        // Build the base outside the lock: freezing is pure construction,
        // and serving traffic should not stall behind it.
        let base = edb_base_from_instance(family.prefix());
        let data = Arc::new(TenantData {
            name: name.to_owned(),
            family,
            base,
            facts,
        });
        let mut inner = self.lock_inner();
        inner.clock += 1;
        inner.loads += 1;
        let resident = Resident {
            data,
            last_used: inner.clock,
            served: 0,
            tuples_derived: 0,
            derive_ns: 0,
        };
        if let Some(previous) = inner.residents.insert(name.to_owned(), resident) {
            inner.retire(previous);
        }
        let mut evicted = Vec::new();
        inner.enforce(&self.limits, name, &mut evicted);
        LoadOutcome {
            requests,
            prefix_facts,
            evicted,
        }
    }

    /// Looks a tenant up, bumping its LRU generation and served count. The
    /// returned `Arc` stays valid even if the tenant is evicted while the
    /// caller is still serving it.
    ///
    /// The LRU clock advances only when a residency is actually touched: a
    /// miss must not age every resident tenant, or a storm of lookups for
    /// absent tenants would scramble the eviction order among tenants that
    /// saw no traffic at all.
    pub fn get(&self, name: &str) -> Option<Arc<TenantData>> {
        let mut inner = self.lock_inner();
        let touched = inner.clock + 1;
        match inner.residents.get_mut(name) {
            Some(resident) => {
                resident.last_used = touched;
                resident.served += 1;
                let data = Arc::clone(&resident.data);
                inner.clock = touched;
                inner.hits += 1;
                Some(data)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Applies `mutate` to one request's delta, swapping the tenant's
    /// resident [`TenantData`] for one with the rebuilt family. The shared
    /// prefix and its frozen base store are reused by `Arc` — committed
    /// probe indexes and derivation checkpoints survive the mutation, which
    /// is the whole point of mutating the delta instead of re-`LOAD`ing.
    /// Workers serving the tenant concurrently keep their old snapshot
    /// (their `Arc<TenantData>`) until they finish, exactly as with
    /// eviction.
    ///
    /// Counts as traffic: bumps the LRU generation and the served count,
    /// and re-enforces the fact cap afterwards (an `APPEND` can grow the
    /// registry past it; the mutated tenant itself is never the victim).
    ///
    /// Returns the number of facts in the request's delta after the
    /// mutation.
    pub fn mutate_delta(
        &self,
        name: &str,
        request: usize,
        mutate: impl FnOnce(&DatabaseInstance) -> DatabaseInstance,
    ) -> Result<usize, MutateError> {
        let mut inner = self.lock_inner();
        let touched = inner.clock + 1;
        let Some(resident) = inner.residents.get_mut(name) else {
            inner.misses += 1;
            return Err(MutateError::NotResident);
        };
        let requests = resident.data.family.len();
        if request >= requests {
            // Same contract as a bad `BATCH` id: the tenant was looked up,
            // so the touch counts, but nothing is mutated.
            resident.last_used = touched;
            inner.clock = touched;
            inner.hits += 1;
            return Err(MutateError::BadRequest { requests });
        }
        let family = &resident.data.family;
        // Deltas are O(request) small by the family contract, so rebuilding
        // under the lock is fine — the expensive parts (base indexes,
        // checkpoints) are exactly what this path does *not* rebuild.
        let mut deltas = family.deltas().to_vec();
        deltas[request] = mutate(&deltas[request]);
        let delta_facts = deltas[request].len();
        let prefix = family.prefix().clone();
        let facts = prefix.len() + deltas.iter().map(|d| d.len()).sum::<usize>();
        resident.data = Arc::new(TenantData {
            name: resident.data.name.clone(),
            family: InstanceFamily::with_deltas(prefix, deltas),
            base: Arc::clone(&resident.data.base),
            facts,
        });
        resident.last_used = touched;
        resident.served += 1;
        inner.clock = touched;
        inner.hits += 1;
        let mut evicted = Vec::new();
        inner.enforce(&self.limits, name, &mut evicted);
        Ok(delta_facts)
    }

    /// Credits `tuples` derived tuples and `ns` of deciding time to a
    /// tenant's residency counters, without touching its LRU position
    /// (attribution is bookkeeping, not traffic). A no-op if the tenant was
    /// evicted mid-flight — the work still shows in the session-wide
    /// counters.
    pub fn record_derived(&self, name: &str, tuples: u64, ns: u64) {
        let mut inner = self.lock_inner();
        if let Some(resident) = inner.residents.get_mut(name) {
            resident.tuples_derived += tuples;
            resident.derive_ns += ns;
        }
    }

    /// Explicitly drops a tenant's residency. Returns `false` if it was not
    /// resident.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.lock_inner();
        match inner.residents.remove(name) {
            Some(resident) => {
                inner.retire(resident);
                true
            }
            None => false,
        }
    }

    /// A snapshot of the registry-wide counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock_inner();
        let live_builds: u64 = inner
            .residents
            .values()
            .map(|r| r.data.base.index_builds())
            .sum();
        RegistryStats {
            residents: inner.residents.len(),
            resident_facts: inner.total_facts(),
            loads: inner.loads,
            evictions: inner.evictions,
            hits: inner.hits,
            misses: inner.misses,
            base_index_builds: inner.retired_builds + live_builds,
        }
    }

    /// A snapshot of one resident tenant's counters, without touching its
    /// LRU position (observability must not keep a tenant warm).
    pub fn tenant_stats(&self, name: &str) -> Option<TenantStats> {
        let inner = self.lock_inner();
        inner.residents.get(name).map(|resident| TenantStats {
            tenant: name.to_owned(),
            requests: resident.data.family.len(),
            prefix_facts: resident.data.family.prefix().len(),
            facts: resident.data.facts,
            base_index_builds: resident.data.base.index_builds(),
            served: resident.served,
            tuples_derived: resident.tuples_derived,
            derive_ns: resident.derive_ns,
            maintained_tuples: resident.data.base.maintained_tuples(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_db::instance::DatabaseInstance;

    fn family(facts: usize, tag: &str) -> InstanceFamily {
        let mut prefix = DatabaseInstance::new();
        for i in 0..facts {
            prefix.insert_parsed("R", &format!("{tag}{i}"), &format!("{tag}{}", i + 1));
        }
        let mut delta = DatabaseInstance::new();
        delta.insert_parsed("R", &format!("{tag}d"), &format!("{tag}e"));
        InstanceFamily::with_deltas(prefix, vec![delta])
    }

    #[test]
    fn load_get_evict_round_trip() {
        let registry = TenantRegistry::new(ResidencyLimits::default());
        let outcome = registry.load("a", family(3, "a"));
        assert_eq!(outcome.requests, 1);
        assert_eq!(outcome.prefix_facts, 3);
        assert!(outcome.evicted.is_empty());
        let data = registry.get("a").expect("resident");
        assert_eq!(data.name, "a");
        assert_eq!(data.facts, 4);
        assert!(registry.get("b").is_none());
        assert!(registry.evict("a"));
        assert!(!registry.evict("a"));
        let stats = registry.stats();
        assert_eq!(stats.residents, 0);
        assert_eq!((stats.loads, stats.evictions), (1, 1));
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_the_tenant_cap_and_recency() {
        let registry = TenantRegistry::new(ResidencyLimits {
            max_tenants: 2,
            max_facts: usize::MAX,
        });
        registry.load("a", family(2, "a"));
        registry.load("b", family(2, "b"));
        registry.get("a"); // b is now least recently used
        let outcome = registry.load("c", family(2, "c"));
        assert_eq!(outcome.evicted, vec!["b".to_owned()]);
        assert!(registry.get("b").is_none());
        assert!(registry.get("a").is_some());
        assert!(registry.get("c").is_some());
    }

    #[test]
    fn fact_cap_evicts_but_never_the_loaded_tenant() {
        let registry = TenantRegistry::new(ResidencyLimits {
            max_tenants: 8,
            max_facts: 10,
        });
        registry.load("small", family(4, "s"));
        // 21 facts > 10: "small" goes, and the oversized family itself stays.
        let outcome = registry.load("big", family(20, "b"));
        assert_eq!(outcome.evicted, vec!["small".to_owned()]);
        assert!(registry.get("big").is_some());
        assert_eq!(registry.stats().residents, 1);
    }

    #[test]
    fn lru_clock_ignores_misses() {
        let registry = TenantRegistry::new(ResidencyLimits {
            max_tenants: 2,
            max_facts: usize::MAX,
        });
        registry.load("a", family(2, "a"));
        registry.load("b", family(2, "b"));
        // A storm of misses between the touches must not affect recency:
        // only actual residency touches order the LRU queue.
        for _ in 0..100 {
            assert!(registry.get("absent").is_none());
        }
        registry.get("a"); // b is now least recently used…
        for _ in 0..100 {
            assert!(registry.get("ghost").is_none());
        }
        registry.get("b"); // …and now a is.
        for _ in 0..100 {
            assert!(registry.get("phantom").is_none());
        }
        let outcome = registry.load("c", family(2, "c"));
        assert_eq!(outcome.evicted, vec!["a".to_owned()]);
        let stats = registry.stats();
        assert_eq!(stats.misses, 300);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn mutate_delta_swaps_the_family_but_keeps_the_base() {
        let registry = TenantRegistry::new(ResidencyLimits::default());
        registry.load("a", family(3, "a"));
        let before = registry.get("a").expect("resident");
        let grown = registry
            .mutate_delta("a", 0, |delta| {
                let mut next = delta.clone();
                next.insert_parsed("R", "new", "fact");
                next
            })
            .expect("append");
        assert_eq!(grown, 2); // the seeded delta fact plus the new one
        let after = registry.get("a").expect("resident");
        assert!(
            !Arc::ptr_eq(&before, &after),
            "mutation must swap the tenant data"
        );
        assert!(
            Arc::ptr_eq(&before.base, &after.base),
            "mutation must keep the frozen base (indexes + checkpoints)"
        );
        assert_eq!(after.facts, before.facts + 1);
        assert!(after.family.deltas()[0].contains(&cqa_db::fact::Fact::parse("R", "new", "fact")));

        let shrunk = registry
            .mutate_delta("a", 0, |delta| {
                DatabaseInstance::from_facts(
                    delta
                        .facts()
                        .iter()
                        .copied()
                        .filter(|f| *f != cqa_db::fact::Fact::parse("R", "new", "fact")),
                )
            })
            .expect("retract");
        assert_eq!(shrunk, 1);
        assert_eq!(registry.get("a").unwrap().facts, before.facts);

        assert_eq!(
            registry.mutate_delta("nope", 0, |d| d.clone()),
            Err(MutateError::NotResident)
        );
        assert_eq!(
            registry.mutate_delta("a", 9, |d| d.clone()),
            Err(MutateError::BadRequest { requests: 1 })
        );
        // Mutation retires nothing: the same residency and base persist.
        assert_eq!(registry.stats().evictions, 0);
    }

    #[test]
    fn fact_cap_pressure_tracks_mutated_deltas_and_the_maintained_idb() {
        let registry = TenantRegistry::new(ResidencyLimits {
            max_tenants: 8,
            max_facts: 40,
        });
        registry.load("a", family(4, "a")); // 5 facts
        registry.load("b", family(4, "b")); // 5 facts

        // An APPEND re-prices the tenant at its mutated size, not its
        // LOAD-time size.
        registry
            .mutate_delta("a", 0, |delta| {
                let mut next = delta.clone();
                next.insert_parsed("R", "aX", "aY");
                next
            })
            .expect("append");
        assert_eq!(registry.tenant_stats("a").unwrap().facts, 6);
        assert_eq!(registry.stats().resident_facts, 11);

        // A maintained IDB materialized on a base counts against the fact
        // cap exactly like loaded facts — maintenance must not be a way to
        // hold memory the LRU cannot see. (The serving path fills the slot
        // via bootstrap; here we set the accounting mirror directly.)
        let b = registry.get("b").expect("resident");
        b.base
            .maintained_slot((0, 0))
            .tuples
            .store(100, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(registry.stats().resident_facts, 111);
        assert_eq!(registry.tenant_stats("b").unwrap().maintained_tuples, 100);
        assert_eq!(registry.tenant_stats("a").unwrap().maintained_tuples, 0);

        // The next traffic-bearing mutation re-enforces the cap: "b" now
        // weighs 106, so it is the victim even though it was touched more
        // recently than "a"'s mutation — eviction is LRU, and the `get`
        // above made "a" the survivor only if it is newer. Touch "a" to pin
        // the order, then mutate it and watch "b" go.
        registry.get("a");
        registry
            .mutate_delta("a", 0, |delta| delta.clone())
            .expect("touch");
        assert!(
            registry.get("b").is_none(),
            "oversized maintained tenant must be evicted"
        );
        assert_eq!(registry.stats().resident_facts, 6);
    }

    #[test]
    fn reloads_replace_and_retire_the_previous_base() {
        let registry = TenantRegistry::new(ResidencyLimits::default());
        registry.load("a", family(2, "a"));
        let first = registry.get("a").unwrap();
        registry.load("a", family(2, "a2"));
        let second = registry.get("a").unwrap();
        assert!(
            !Arc::ptr_eq(&first, &second),
            "reload must rebuild the base"
        );
        // Replacing a residency counts as an eviction of the old base (its
        // index builds are retired into the cumulative total — the loopback
        // tests exercise that path with real queries).
        assert_eq!(registry.stats().evictions, 1);
        assert_eq!(registry.tenant_stats("a").unwrap().prefix_facts, 2);
        assert!(registry.tenant_stats("gone").is_none());
    }
}
