//! The server's metric surface: one [`cqa_obs::Registry`] per server
//! instance, scraped by the `METRICS` wire command as Prometheus text.
//!
//! Per-instance on purpose — counters genuinely reset when a server is
//! restarted (the loopback tests pin this), unlike process-global state.
//! The solver session's own histograms (per-route service time, plan-build
//! time) are adopted into the same registry at startup, so one scrape
//! renders the whole stack; the only process-global series are the
//! `PATH_CQA_TRACE` spans, appended by [`cqa_obs::render_spans`].
//!
//! Families, all durations in nanoseconds (log2 buckets, see `cqa-obs`):
//!
//! | family                          | type      | labels      |
//! |---------------------------------|-----------|-------------|
//! | `cqa_server_commands_total`     | counter   | `command`   |
//! | `cqa_server_busy_total`         | counter   | —           |
//! | `cqa_server_slow_requests_total`| counter   | —           |
//! | `cqa_server_queue_depth`        | gauge     | —           |
//! | `cqa_server_queue_capacity`     | gauge     | —           |
//! | `cqa_server_residents`          | gauge     | —           |
//! | `cqa_server_resident_facts`     | gauge     | —           |
//! | `cqa_server_command_ns`         | histogram | `command`   |
//! | `cqa_server_queue_wait_ns`      | histogram | `command`   |
//! | `cqa_server_service_ns`         | histogram | `command`   |
//! | `cqa_route_service_ns`          | histogram | `route`     |
//! | `cqa_session_plan_build_ns`     | histogram | —           |
//! | `cqa_trace_span_ns`             | histogram | `span`      |

use std::sync::Arc;

use cqa_obs::{Counter, Gauge, Histogram, Registry};
use cqa_solver::session::CertaintySession;

use crate::proto::CommandKind;

/// Per-command label values in [`CommandKind`] discriminant order, the
/// index order of the `per-command` metric tables below.
fn command_labels() -> [&'static str; CommandKind::ALL.len()] {
    let mut labels = [""; CommandKind::ALL.len()];
    for (i, kind) in CommandKind::ALL.iter().enumerate() {
        labels[i] = kind.as_str();
    }
    labels
}

/// Always-on instrumentation owned by one server instance. Recording is
/// lock-free (relaxed atomics); only registration (startup) and rendering
/// (`METRICS` scrapes) take the registry's own lock — never the work-queue
/// lock.
pub struct ServerMetrics {
    registry: Registry,
    /// Commands accepted off connections, by kind (counted at parse, before
    /// any queueing — `busy` rejections are counted here *and* in
    /// `busy_total`).
    commands_total: Vec<Arc<Counter>>,
    /// Commands rejected with `ERR busy` because the bounded queue was full.
    pub busy_total: Arc<Counter>,
    /// Requests whose queue-wait + service time crossed `PATH_CQA_SLOW_MS`.
    pub slow_total: Arc<Counter>,
    /// Jobs currently queued (updated under the queue lock at push/pop, so
    /// the gauge and the queue can never drift).
    pub queue_depth: Arc<Gauge>,
    /// The configured `max_queue` bound, for dashboards to pair with depth.
    pub queue_capacity: Arc<Gauge>,
    /// Resident tenants at the last scrape.
    pub residents: Arc<Gauge>,
    /// Resident facts at the last scrape.
    pub resident_facts: Arc<Gauge>,
    /// Whole wire turnaround per command: parse to reply written (includes
    /// queue wait and service).
    command_ns: Vec<Arc<Histogram>>,
    /// Enqueue to worker pop, per command.
    queue_wait_ns: Vec<Arc<Histogram>>,
    /// Worker execution time, per command.
    service_ns: Vec<Arc<Histogram>>,
}

impl ServerMetrics {
    /// Builds the instance registry and adopts the session's histograms so
    /// `METRICS` renders solver latency alongside server queueing.
    pub fn new(max_queue: usize, session: &CertaintySession) -> ServerMetrics {
        let registry = Registry::new();
        let labels = command_labels();
        let commands_total = registry.counter_vec(
            "cqa_server_commands_total",
            "Commands accepted off connections, by kind.",
            "command",
            &labels,
        );
        let command_ns = registry.histogram_vec(
            "cqa_server_command_ns",
            "Wire turnaround per command: parse to reply written.",
            "command",
            &labels,
        );
        let queue_wait_ns = registry.histogram_vec(
            "cqa_server_queue_wait_ns",
            "Time a job waited in the bounded work queue before a worker popped it.",
            "command",
            &labels,
        );
        let service_ns = registry.histogram_vec(
            "cqa_server_service_ns",
            "Worker execution time per command.",
            "command",
            &labels,
        );
        let busy_total = registry.counter(
            "cqa_server_busy_total",
            "Commands rejected with ERR busy because the work queue was full.",
            &[],
        );
        let slow_total = registry.counter(
            "cqa_server_slow_requests_total",
            "Requests slower than the PATH_CQA_SLOW_MS threshold.",
            &[],
        );
        let queue_depth = registry.gauge(
            "cqa_server_queue_depth",
            "Jobs currently in the work queue.",
            &[],
        );
        let queue_capacity = registry.gauge(
            "cqa_server_queue_capacity",
            "Configured work-queue bound (ServerConfig::max_queue).",
            &[],
        );
        queue_capacity.set(max_queue as i64);
        let residents = registry.gauge(
            "cqa_server_residents",
            "Resident tenants (sampled at scrape).",
            &[],
        );
        let resident_facts = registry.gauge(
            "cqa_server_resident_facts",
            "Facts across resident tenants (sampled at scrape).",
            &[],
        );
        for (route, histogram) in session.metrics().route_histograms() {
            registry.register_histogram(
                "cqa_route_service_ns",
                "Session service time per decided request, by route.",
                &[("route", route)],
                histogram,
            );
        }
        registry.register_histogram(
            "cqa_session_plan_build_ns",
            "Plan build time on a session plan-cache miss (classify + prepare).",
            &[],
            session.metrics().plan_build_histogram(),
        );
        ServerMetrics {
            registry,
            commands_total,
            busy_total,
            slow_total,
            queue_depth,
            queue_capacity,
            residents,
            resident_facts,
            command_ns,
            queue_wait_ns,
            service_ns,
        }
    }

    /// Count one accepted command.
    pub fn count_command(&self, kind: CommandKind) {
        self.commands_total[kind as usize].inc();
    }

    /// Record one whole wire turnaround.
    pub fn record_command(&self, kind: CommandKind, ns: u64) {
        self.command_ns[kind as usize].record(ns);
    }

    /// Record one queue wait.
    pub fn record_queue_wait(&self, kind: CommandKind, ns: u64) {
        self.queue_wait_ns[kind as usize].record(ns);
    }

    /// Record one worker service time.
    pub fn record_service(&self, kind: CommandKind, ns: u64) {
        self.service_ns[kind as usize].record(ns);
    }

    /// Render the full exposition: this instance's families plus the
    /// process-global trace spans. Newline-terminated (the `METRICS` framing
    /// requires it).
    pub fn render(&self) -> String {
        let mut text = self.registry.render();
        cqa_obs::render_spans(&mut text);
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_covers_every_family() {
        let session = CertaintySession::with_datalog_nl();
        let metrics = ServerMetrics::new(128, &session);
        metrics.count_command(CommandKind::Query);
        metrics.record_command(CommandKind::Query, 1_000);
        metrics.record_queue_wait(CommandKind::Query, 100);
        metrics.record_service(CommandKind::Query, 900);
        let text = metrics.render();
        for family in [
            "cqa_server_commands_total",
            "cqa_server_busy_total",
            "cqa_server_slow_requests_total",
            "cqa_server_queue_depth",
            "cqa_server_queue_capacity",
            "cqa_server_residents",
            "cqa_server_resident_facts",
            "cqa_server_command_ns",
            "cqa_server_queue_wait_ns",
            "cqa_server_service_ns",
            "cqa_route_service_ns",
            "cqa_session_plan_build_ns",
            "cqa_trace_span_ns",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing family {family} in:\n{text}"
            );
        }
        assert!(text.contains("cqa_server_commands_total{command=\"query\"} 1\n"));
        assert!(text.contains("cqa_server_queue_capacity 128\n"));
        assert!(text.ends_with('\n'));
    }
}
