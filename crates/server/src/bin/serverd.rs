//! `cqa-serverd` — the multi-tenant certain-answer serving daemon.
//!
//! ```text
//! cqa-serverd [--addr HOST:PORT] [--workers N] [--max-tenants N] [--max-facts N]
//!             [--max-queue N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7464`), prints the resolved
//! address and serves until killed. See `crates/server/README.md` for the
//! wire protocol.

use cqa_server::server::{start, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cqa-serverd [--addr HOST:PORT] [--workers N] [--max-tenants N] [--max-facts N] \
       [--max-queue N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7464".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--max-tenants" => match value.parse() {
                Ok(n) if n > 0 => config.limits.max_tenants = n,
                _ => usage(),
            },
            "--max-facts" => match value.parse() {
                Ok(n) if n > 0 => config.limits.max_facts = n,
                _ => usage(),
            },
            "--max-queue" => match value.parse() {
                Ok(n) if n > 0 => config.max_queue = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let limits = config.limits;
    let workers = config.workers;
    let max_queue = config.max_queue;
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cqa-serverd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "cqa-serverd listening on {} ({} workers, caps: {} tenants / {} facts, queue {})",
        handle.addr(),
        workers,
        limits.max_tenants,
        limits.max_facts,
        max_queue
    );
    handle.wait();
}
