//! # cqa-server
//!
//! The multi-tenant serving layer over the CQA stack: a std-only TCP server
//! (`cqa-serverd`) that keeps hot tenants' instance families *resident* —
//! each with a frozen, `Arc`-shared copy-on-write base store built once per
//! `LOAD` — and answers certain-answer queries over a line-framed text
//! protocol.
//!
//! Layers, bottom-up:
//!
//! * [`proto`] — the wire protocol: `LOAD` (length-framed family text in
//!   the [`cqa_db::codec`] sectioned format), `APPEND`/`RETRACT`
//!   (length-framed plain-codec facts mutating one resident request's
//!   delta in place), `QUERY`, `BATCH`, `STATS`, `METRICS`, `EVICT`,
//!   `QUIT`; single-line `OK`/`ERR` replies with typed error codes.
//! * [`metrics`] — the per-instance observability surface scraped by
//!   `METRICS`: Prometheus-style counters, gauges, and log2-ns latency
//!   histograms (queue wait vs service time per command, per-route solver
//!   latency) built on `cqa-obs`.
//! * [`registry`] — the residency cache: tenant → family + base store,
//!   LRU-by-generation eviction under tenant-count and fact caps, and the
//!   counters `STATS` reports (including cumulative base index builds, the
//!   "built exactly once per residency" pin).
//! * [`server`] — the dispatch loop: per-connection reader threads feed a
//!   *bounded* condvar queue (`ServerConfig::max_queue`; overflow is
//!   rejected with retryable `ERR busy`) drained by parked workers, which
//!   answer through
//!   one warm [`cqa_solver::session::CertaintySession`] via
//!   `certain_batch_family_resident` on the resident base. Answers are
//!   byte-identical to a fresh in-process
//!   [`cqa_solver::dispatch::DispatchSolver`] — pinned by the loopback
//!   integration tests.
//! * [`client`] — a typed blocking client, used by the tests and the
//!   `server_throughput` bench driver.
//!
//! The protocol spec and a "run the server" walkthrough live in this
//! crate's `README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod server;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::client::{Client, ClientError, LoadSummary};
    pub use crate::metrics::ServerMetrics;
    pub use crate::proto::{Command, CommandKind, ErrorCode, Reply, WireError};
    pub use crate::registry::{
        MutateError, RegistryStats, ResidencyLimits, TenantRegistry, TenantStats,
    };
    pub use crate::server::{start, ServerConfig, ServerHandle};
}
