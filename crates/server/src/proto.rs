//! The wire protocol: line-framed text commands with one length-framed
//! payload (`LOAD`'s family text) and single-line typed replies.
//!
//! Commands (one per line, fields separated by single spaces):
//!
//! | command                               | meaning                                              |
//! |---------------------------------------|------------------------------------------------------|
//! | `LOAD <tenant> <nbytes>` + payload    | load the tenant's instance family (sectioned codec)  |
//! | `APPEND <tenant> <id> <nbytes>` + payload | add facts (plain codec) to request `id`'s delta  |
//! | `RETRACT <tenant> <id> <nbytes>` + payload | remove facts (plain codec) from request `id`'s delta |
//! | `QUERY <tenant> <word>`               | decide `word` against every request of the family    |
//! | `BATCH <tenant> <ids> <word>`         | decide `word` against the comma-separated request ids|
//! | `STATS`                               | server-wide registry + session counters              |
//! | `STATS <tenant>`                      | one resident tenant's counters                       |
//! | `METRICS`                             | Prometheus-text metrics (length-framed reply payload)|
//! | `EVICT <tenant>`                      | drop the tenant's resident base                      |
//! | `QUIT`                                | close the connection                                 |
//! | `CRASH`                               | panic the handling worker (fault injection; only honored when the server was started with fault injection enabled, otherwise a bad command) |
//! | `SLOW <millis>`                       | occupy the handling worker for `millis` ms (fault injection, like `CRASH`; saturation tests use it to fill the bounded queue deterministically) |
//!
//! `APPEND`/`RETRACT` mutate only the addressed request's *delta* — the
//! tenant's shared prefix, its committed base indexes and any derivation
//! checkpoints survive the mutation untouched.
//!
//! Replies are a single line: `OK <payload>` on success or
//! `ERR <code> <message>` with a machine-readable [`ErrorCode`]. Answer
//! bitmaps are rendered as a `0`/`1` string in request order (`-` for an
//! empty bitmap, so the reply always has a payload field). The one
//! exception is `METRICS`: its reply line `OK METRICS <nbytes>` is followed
//! by exactly `nbytes` of Prometheus text exposition (newline-terminated),
//! mirroring how command payloads travel client→server.

use std::fmt;

/// Maximum accepted `LOAD` payload, a guard against absurd length headers.
pub const MAX_LOAD_BYTES: usize = 64 << 20;

/// Maximum accepted command-line length in bytes (a connection streaming
/// newline-free bytes must not grow server buffers without bound; `BATCH`
/// id lists fit comfortably).
pub const MAX_COMMAND_LINE: usize = 8 << 10;

/// Maximum accepted tenant-name length.
pub const MAX_TENANT_LEN: usize = 64;

/// Maximum accepted `SLOW` duration — fault injection must not be able to
/// park a worker indefinitely.
pub const MAX_SLOW_MILLIS: u64 = 10_000;

/// A parsed client command. `LOAD`'s family text travels out of band (the
/// connection reads `bytes` of payload after the command line), so the
/// variant only carries the length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `LOAD <tenant> <nbytes>`: load (or replace) a tenant's family.
    Load {
        /// Target tenant.
        tenant: String,
        /// Length of the family-text payload that follows the command line.
        bytes: usize,
    },
    /// `APPEND <tenant> <id> <nbytes>`: add the payload's facts (plain
    /// codec text) to request `id`'s delta.
    Append {
        /// Target tenant.
        tenant: String,
        /// Request index into the tenant's family.
        request: usize,
        /// Length of the plain-codec payload that follows the command line.
        bytes: usize,
    },
    /// `RETRACT <tenant> <id> <nbytes>`: remove the payload's facts (plain
    /// codec text) from request `id`'s delta.
    Retract {
        /// Target tenant.
        tenant: String,
        /// Request index into the tenant's family.
        request: usize,
        /// Length of the plain-codec payload that follows the command line.
        bytes: usize,
    },
    /// `QUERY <tenant> <word>`: decide the query against every request.
    Query {
        /// Target tenant.
        tenant: String,
        /// The path-query word.
        word: String,
    },
    /// `BATCH <tenant> <ids> <word>`: decide the query against a subset of
    /// requests, in the given order.
    Batch {
        /// Target tenant.
        tenant: String,
        /// Request indexes into the tenant's family, in reply order.
        requests: Vec<usize>,
        /// The path-query word.
        word: String,
    },
    /// `STATS` / `STATS <tenant>`: counters, server-wide or per tenant.
    Stats {
        /// `Some` restricts the report to one resident tenant.
        tenant: Option<String>,
    },
    /// `METRICS`: Prometheus-text metrics with a length-framed payload.
    Metrics,
    /// `EVICT <tenant>`: drop the tenant's resident base.
    Evict {
        /// Target tenant.
        tenant: String,
    },
    /// `QUIT`: close the connection.
    Quit,
    /// `CRASH`: panic the handling worker. Parsed unconditionally but only
    /// honored when the server runs with fault injection enabled (loopback
    /// robustness tests); otherwise it is answered as a bad command.
    Crash,
    /// `SLOW <millis>`: sleep the handling worker. Fault injection like
    /// `CRASH` — the backpressure tests use it to hold a worker busy and
    /// saturate a tiny bounded queue deterministically.
    Slow {
        /// How long the worker sleeps, capped at [`MAX_SLOW_MILLIS`].
        millis: u64,
    },
}

/// The dense label set `METRICS` partitions per-command series by — one
/// value per [`Command`] variant. `QUIT` is included even though it never
/// reaches a worker: the reader thread still counts and times it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// `LOAD`.
    Load,
    /// `APPEND`.
    Append,
    /// `RETRACT`.
    Retract,
    /// `QUERY`.
    Query,
    /// `BATCH`.
    Batch,
    /// `STATS` (with or without a tenant).
    Stats,
    /// `METRICS`.
    Metrics,
    /// `EVICT`.
    Evict,
    /// `CRASH`.
    Crash,
    /// `SLOW`.
    Slow,
    /// `QUIT`.
    Quit,
}

impl CommandKind {
    /// Every kind, in [`CommandKind`] discriminant order — the order of the
    /// per-command metric tables.
    pub const ALL: [CommandKind; 11] = [
        CommandKind::Load,
        CommandKind::Append,
        CommandKind::Retract,
        CommandKind::Query,
        CommandKind::Batch,
        CommandKind::Stats,
        CommandKind::Metrics,
        CommandKind::Evict,
        CommandKind::Crash,
        CommandKind::Slow,
        CommandKind::Quit,
    ];

    /// The stable label value of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            CommandKind::Load => "load",
            CommandKind::Append => "append",
            CommandKind::Retract => "retract",
            CommandKind::Query => "query",
            CommandKind::Batch => "batch",
            CommandKind::Stats => "stats",
            CommandKind::Metrics => "metrics",
            CommandKind::Evict => "evict",
            CommandKind::Crash => "crash",
            CommandKind::Slow => "slow",
            CommandKind::Quit => "quit",
        }
    }
}

impl Command {
    /// The metric label kind of this command.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Load { .. } => CommandKind::Load,
            Command::Append { .. } => CommandKind::Append,
            Command::Retract { .. } => CommandKind::Retract,
            Command::Query { .. } => CommandKind::Query,
            Command::Batch { .. } => CommandKind::Batch,
            Command::Stats { .. } => CommandKind::Stats,
            Command::Metrics => CommandKind::Metrics,
            Command::Evict { .. } => CommandKind::Evict,
            Command::Crash => CommandKind::Crash,
            Command::Slow { .. } => CommandKind::Slow,
            Command::Quit => CommandKind::Quit,
        }
    }

    /// The tenant this command addresses, if any — what the slow-request
    /// log attributes an offending request to.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Command::Load { tenant, .. }
            | Command::Append { tenant, .. }
            | Command::Retract { tenant, .. }
            | Command::Query { tenant, .. }
            | Command::Batch { tenant, .. }
            | Command::Evict { tenant } => Some(tenant),
            Command::Stats { tenant } => tenant.as_deref(),
            Command::Metrics | Command::Crash | Command::Slow { .. } | Command::Quit => None,
        }
    }
}

/// Machine-readable error classes carried by `ERR` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The command line itself was malformed (unknown verb, bad arity,
    /// invalid tenant name or length field).
    BadCommand,
    /// A `LOAD` payload was not valid family text (the codec's typed
    /// rejection, relayed).
    BadPayload,
    /// A query word failed to parse.
    BadQuery,
    /// The addressed tenant is not resident (never loaded, or evicted).
    NotLoaded,
    /// A `BATCH` request index is outside the tenant's family.
    BadRequestId,
    /// The bounded work queue is full; the command was rejected *before*
    /// enqueueing, so it had no effect and is safe to retry.
    Busy,
    /// The solver failed on an otherwise well-formed request.
    Solver,
    /// A worker panicked while executing the command. The server recovers
    /// and keeps serving; the failed command's effects are undefined.
    Internal,
}

impl ErrorCode {
    /// The stable wire token of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadCommand => "bad-command",
            ErrorCode::BadPayload => "bad-payload",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::NotLoaded => "not-loaded",
            ErrorCode::BadRequestId => "bad-request-id",
            ErrorCode::Busy => "busy",
            ErrorCode::Solver => "solver",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire token back into a code.
    pub fn parse(token: &str) -> Option<ErrorCode> {
        Some(match token {
            "bad-command" => ErrorCode::BadCommand,
            "bad-payload" => ErrorCode::BadPayload,
            "bad-query" => ErrorCode::BadQuery,
            "not-loaded" => ErrorCode::NotLoaded,
            "bad-request-id" => ErrorCode::BadRequestId,
            "busy" => ErrorCode::Busy,
            "solver" => ErrorCode::Solver,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed error reply: code plus human-readable message. Both halves cross
/// the wire (`ERR <code> <message>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail (single line).
    pub message: String,
}

impl WireError {
    /// Builds an error reply, flattening the message to one line.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        let mut message = message.into();
        if message.contains('\n') {
            message = message.replace('\n', " ");
        }
        WireError { code, message }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// A server reply, rendered as a single `OK …` / `ERR …` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `LOAD` succeeded.
    Loaded {
        /// The loaded tenant.
        tenant: String,
        /// Number of requests (deltas) in the family.
        requests: usize,
        /// Facts in the shared prefix.
        prefix_facts: usize,
        /// Tenants the residency cap pushed out to make room.
        evicted: usize,
    },
    /// `APPEND` succeeded.
    Appended {
        /// The mutated tenant.
        tenant: String,
        /// The mutated request index.
        request: usize,
        /// Facts now in that request's delta (after the append).
        facts: usize,
    },
    /// `RETRACT` succeeded.
    Retracted {
        /// The mutated tenant.
        tenant: String,
        /// The mutated request index.
        request: usize,
        /// Facts now in that request's delta (after the retract).
        facts: usize,
    },
    /// `QUERY` / `BATCH` answers, in request order.
    Answers(Vec<bool>),
    /// `STATS` counters as `key=value` pairs, in the server's order.
    Stats(Vec<(String, String)>),
    /// `METRICS` text exposition. Rendered as a length header line; the
    /// connection writes the (newline-terminated) text itself right after,
    /// exactly `nbytes` of it.
    Metrics(String),
    /// `SLOW` acknowledged after the injected sleep.
    Slept {
        /// The effective (capped) sleep in milliseconds.
        millis: u64,
    },
    /// `EVICT` succeeded.
    Evicted {
        /// The evicted tenant.
        tenant: String,
    },
    /// `QUIT` acknowledged; the server closes the connection next.
    Bye,
    /// Any failure, with a typed code.
    Err(WireError),
}

impl Reply {
    /// Renders the reply as its wire line (no trailing newline). For
    /// [`Reply::Metrics`] this is only the `OK METRICS <nbytes>` header —
    /// the connection writes the text itself after the line, in the same
    /// single `write` so the frame can't interleave with anything.
    pub fn render(&self) -> String {
        match self {
            Reply::Loaded {
                tenant,
                requests,
                prefix_facts,
                evicted,
            } => format!(
                "OK LOADED tenant={tenant} requests={requests} prefix_facts={prefix_facts} evicted={evicted}"
            ),
            Reply::Appended {
                tenant,
                request,
                facts,
            } => format!("OK APPENDED tenant={tenant} request={request} facts={facts}"),
            Reply::Retracted {
                tenant,
                request,
                facts,
            } => format!("OK RETRACTED tenant={tenant} request={request} facts={facts}"),
            Reply::Answers(bits) => {
                if bits.is_empty() {
                    "OK ANSWERS -".to_owned()
                } else {
                    let rendered: String =
                        bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
                    format!("OK ANSWERS {rendered}")
                }
            }
            Reply::Stats(pairs) => {
                let mut line = String::from("OK STATS");
                for (k, v) in pairs {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line
            }
            Reply::Evicted { tenant } => format!("OK EVICTED tenant={tenant}"),
            Reply::Metrics(text) => format!("OK METRICS {}", text.len()),
            Reply::Slept { millis } => format!("OK SLEPT millis={millis}"),
            Reply::Bye => "OK BYE".to_owned(),
            Reply::Err(e) => format!("ERR {} {}", e.code, e.message),
        }
    }
}

/// True iff `name` is a legal tenant name: 1–64 characters drawn from
/// ASCII alphanumerics, `_`, `-` and `.` (no whitespace, so names never
/// collide with the line framing).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn checked_tenant(token: &str) -> Result<String, WireError> {
    if valid_tenant_name(token) {
        Ok(token.to_owned())
    } else {
        Err(WireError::new(
            ErrorCode::BadCommand,
            format!("invalid tenant name {token:?}"),
        ))
    }
}

fn bad_arity(verb: &str, expected: &str) -> WireError {
    WireError::new(ErrorCode::BadCommand, format!("{verb} expects {expected}"))
}

/// Parses one command line (without its trailing newline). `LOAD` payload
/// bytes are *not* consumed here — the connection reads them after this
/// returns.
pub fn parse_command(line: &str) -> Result<Command, WireError> {
    let mut fields = line.split_whitespace();
    let verb = fields
        .next()
        .ok_or_else(|| WireError::new(ErrorCode::BadCommand, "empty command line"))?;
    let rest: Vec<&str> = fields.collect();
    match verb {
        "LOAD" => {
            let [tenant, bytes] = rest[..] else {
                return Err(bad_arity("LOAD", "<tenant> <nbytes>"));
            };
            let bytes: usize = bytes.parse().map_err(|_| {
                WireError::new(ErrorCode::BadCommand, format!("bad LOAD length {bytes:?}"))
            })?;
            if bytes > MAX_LOAD_BYTES {
                return Err(WireError::new(
                    ErrorCode::BadCommand,
                    format!("LOAD length {bytes} exceeds the {MAX_LOAD_BYTES}-byte cap"),
                ));
            }
            Ok(Command::Load {
                tenant: checked_tenant(tenant)?,
                bytes,
            })
        }
        "APPEND" | "RETRACT" => {
            let [tenant, request, bytes] = rest[..] else {
                return Err(bad_arity(verb, "<tenant> <request-id> <nbytes>"));
            };
            let request: usize = request.parse().map_err(|_| {
                WireError::new(
                    ErrorCode::BadCommand,
                    format!("bad {verb} request id {request:?}"),
                )
            })?;
            let bytes: usize = bytes.parse().map_err(|_| {
                WireError::new(
                    ErrorCode::BadCommand,
                    format!("bad {verb} length {bytes:?}"),
                )
            })?;
            if bytes > MAX_LOAD_BYTES {
                return Err(WireError::new(
                    ErrorCode::BadCommand,
                    format!("{verb} length {bytes} exceeds the {MAX_LOAD_BYTES}-byte cap"),
                ));
            }
            let tenant = checked_tenant(tenant)?;
            Ok(if verb == "APPEND" {
                Command::Append {
                    tenant,
                    request,
                    bytes,
                }
            } else {
                Command::Retract {
                    tenant,
                    request,
                    bytes,
                }
            })
        }
        "QUERY" => {
            let [tenant, word] = rest[..] else {
                return Err(bad_arity("QUERY", "<tenant> <query-word>"));
            };
            Ok(Command::Query {
                tenant: checked_tenant(tenant)?,
                word: word.to_owned(),
            })
        }
        "BATCH" => {
            let [tenant, ids, word] = rest[..] else {
                return Err(bad_arity("BATCH", "<tenant> <id,id,…> <query-word>"));
            };
            let requests = ids
                .split(',')
                .map(|id| id.parse::<usize>())
                .collect::<Result<Vec<usize>, _>>()
                .map_err(|_| {
                    WireError::new(
                        ErrorCode::BadCommand,
                        format!("bad BATCH request ids {ids:?}"),
                    )
                })?;
            Ok(Command::Batch {
                tenant: checked_tenant(tenant)?,
                requests,
                word: word.to_owned(),
            })
        }
        "METRICS" => {
            if rest.is_empty() {
                Ok(Command::Metrics)
            } else {
                Err(bad_arity("METRICS", "no arguments"))
            }
        }
        "SLOW" => {
            let [millis] = rest[..] else {
                return Err(bad_arity("SLOW", "<millis>"));
            };
            let millis: u64 = millis.parse().map_err(|_| {
                WireError::new(
                    ErrorCode::BadCommand,
                    format!("bad SLOW duration {millis:?}"),
                )
            })?;
            Ok(Command::Slow {
                millis: millis.min(MAX_SLOW_MILLIS),
            })
        }
        "STATS" => match rest[..] {
            [] => Ok(Command::Stats { tenant: None }),
            [tenant] => Ok(Command::Stats {
                tenant: Some(checked_tenant(tenant)?),
            }),
            _ => Err(bad_arity("STATS", "no argument or <tenant>")),
        },
        "EVICT" => {
            let [tenant] = rest[..] else {
                return Err(bad_arity("EVICT", "<tenant>"));
            };
            Ok(Command::Evict {
                tenant: checked_tenant(tenant)?,
            })
        }
        "QUIT" => {
            if rest.is_empty() {
                Ok(Command::Quit)
            } else {
                Err(bad_arity("QUIT", "no arguments"))
            }
        }
        "CRASH" => {
            if rest.is_empty() {
                Ok(Command::Crash)
            } else {
                Err(bad_arity("CRASH", "no arguments"))
            }
        }
        other => Err(WireError::new(
            ErrorCode::BadCommand,
            format!("unknown command {other:?}"),
        )),
    }
}

/// Parses a reply line into `Ok(payload)` for `OK` replies or the typed
/// [`WireError`] for `ERR` replies. The client builds its typed results on
/// top of the payload.
pub fn parse_reply(line: &str) -> Result<String, WireError> {
    if let Some(payload) = line.strip_prefix("OK ") {
        return Ok(payload.to_owned());
    }
    if let Some(err) = line.strip_prefix("ERR ") {
        let (code, message) = err.split_once(' ').unwrap_or((err, ""));
        let code = ErrorCode::parse(code).ok_or_else(|| {
            WireError::new(
                ErrorCode::BadCommand,
                format!("unknown error code in reply {line:?}"),
            )
        })?;
        return Err(WireError::new(code, message));
    }
    Err(WireError::new(
        ErrorCode::BadCommand,
        format!("malformed reply line {line:?}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_and_reject() {
        assert_eq!(
            parse_command("LOAD t1 42").unwrap(),
            Command::Load {
                tenant: "t1".into(),
                bytes: 42
            }
        );
        assert_eq!(
            parse_command("BATCH t1 3,1,4 RRX").unwrap(),
            Command::Batch {
                tenant: "t1".into(),
                requests: vec![3, 1, 4],
                word: "RRX".into()
            }
        );
        assert_eq!(
            parse_command("STATS").unwrap(),
            Command::Stats { tenant: None }
        );
        assert_eq!(parse_command("QUIT").unwrap(), Command::Quit);
        assert_eq!(
            parse_command("APPEND t1 3 17").unwrap(),
            Command::Append {
                tenant: "t1".into(),
                request: 3,
                bytes: 17
            }
        );
        assert_eq!(
            parse_command("RETRACT t1 0 0").unwrap(),
            Command::Retract {
                tenant: "t1".into(),
                request: 0,
                bytes: 0
            }
        );
        assert_eq!(parse_command("CRASH").unwrap(), Command::Crash);
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(
            parse_command("SLOW 250").unwrap(),
            Command::Slow { millis: 250 }
        );
        // SLOW durations are capped, not rejected — fault injection must
        // never be able to park a worker indefinitely.
        assert_eq!(
            parse_command("SLOW 99999999").unwrap(),
            Command::Slow {
                millis: MAX_SLOW_MILLIS
            }
        );
        for bad in [
            "",
            "NOPE",
            "LOAD t1",
            "LOAD t1 x",
            "LOAD bad name 3",
            "QUERY t1",
            "BATCH t1 1,x RRX",
            "QUIT now",
            "LOAD t1 99999999999",
            "APPEND t1 3",
            "APPEND t1 x 17",
            "APPEND t1 3 x",
            "RETRACT t1 3 99999999999",
            "CRASH now",
            "METRICS now",
            "SLOW",
            "SLOW x",
        ] {
            let err = parse_command(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadCommand, "{bad:?} → {err}");
        }
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant_name("tenant-1.prod_x"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("has space"));
        assert!(!valid_tenant_name(&"x".repeat(MAX_TENANT_LEN + 1)));
    }

    #[test]
    fn replies_render_and_parse_back() {
        assert_eq!(
            Reply::Answers(vec![true, false, true]).render(),
            "OK ANSWERS 101"
        );
        assert_eq!(Reply::Answers(vec![]).render(), "OK ANSWERS -");
        assert_eq!(
            parse_reply("OK ANSWERS 101").unwrap(),
            "ANSWERS 101".to_owned()
        );
        let err = parse_reply("ERR not-loaded tenant \"x\" is not resident").unwrap_err();
        assert_eq!(err.code, ErrorCode::NotLoaded);
        assert!(err.message.contains("not resident"));
        assert!(parse_reply("GARBAGE").is_err());
        // Every code round-trips through its wire token.
        for code in [
            ErrorCode::BadCommand,
            ErrorCode::BadPayload,
            ErrorCode::BadQuery,
            ErrorCode::NotLoaded,
            ErrorCode::BadRequestId,
            ErrorCode::Busy,
            ErrorCode::Solver,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        // The METRICS header carries the byte length of the text that
        // follows the reply line.
        assert_eq!(
            Reply::Metrics("a 1\nb 2\n".to_owned()).render(),
            "OK METRICS 8"
        );
        assert_eq!(Reply::Slept { millis: 50 }.render(), "OK SLEPT millis=50");
        assert_eq!(
            Reply::Appended {
                tenant: "t1".into(),
                request: 2,
                facts: 7
            }
            .render(),
            "OK APPENDED tenant=t1 request=2 facts=7"
        );
        assert_eq!(
            Reply::Retracted {
                tenant: "t1".into(),
                request: 2,
                facts: 5
            }
            .render(),
            "OK RETRACTED tenant=t1 request=2 facts=5"
        );
    }

    #[test]
    fn wire_errors_flatten_newlines() {
        let e = WireError::new(ErrorCode::BadPayload, "line 1\nline 2");
        assert!(!e.message.contains('\n'));
    }
}
