//! A blocking client for the wire protocol — used by the loopback tests,
//! the `server_throughput` bench driver and anything else that wants typed
//! access to a running `cqa-serverd`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;

use crate::proto::{parse_reply, ErrorCode, WireError};

/// Client-side failures: transport errors, typed server errors, or replies
/// the client could not interpret.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server replied `ERR <code> <message>`.
    Server(WireError),
    /// The server replied something this client does not understand.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl ClientError {
    /// True when the command was rejected by backpressure (`ERR busy`): the
    /// command had no effect and can be retried on the same connection.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server(WireError {
                code: ErrorCode::Busy,
                ..
            })
        )
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Server(e)
    }
}

/// Summary of a successful `LOAD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSummary {
    /// Requests (deltas) now resident for the tenant.
    pub requests: usize,
    /// Facts in the tenant's shared prefix.
    pub prefix_facts: usize,
    /// Tenants the server evicted to make room.
    pub evicted: usize,
}

/// One connection to a server. Methods are synchronous: each writes one
/// command and blocks for its reply (the protocol is strictly
/// request/reply per connection).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Small request/reply frames: Nagle's algorithm would add delayed-ACK
        // stalls (tens of ms per command) for nothing.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Writes `line` (plus newline, plus optional raw payload) as one frame
    /// and returns the `OK` reply's payload.
    fn roundtrip(&mut self, line: &str, payload: Option<&str>) -> Result<String, ClientError> {
        let mut frame = String::with_capacity(line.len() + 1 + payload.map_or(0, str::len));
        frame.push_str(line);
        frame.push('\n');
        if let Some(payload) = payload {
            frame.push_str(payload);
        }
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Ok(parse_reply(reply.trim_end_matches(['\r', '\n']))?)
    }

    /// Loads (or replaces) a tenant's instance family on the server,
    /// shipping it through the sectioned text codec.
    pub fn load_family(
        &mut self,
        tenant: &str,
        family: &InstanceFamily,
    ) -> Result<LoadSummary, ClientError> {
        let text = cqa_db::codec::family_to_text(family);
        let payload = self.roundtrip(&format!("LOAD {tenant} {}", text.len()), Some(&text))?;
        let fields = parse_kv(payload.strip_prefix("LOADED ").unwrap_or(&payload));
        let field = |k: &str| -> Result<usize, ClientError> {
            fields
                .get(k)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| ClientError::Protocol(format!("LOADED reply missing {k}")))
        };
        Ok(LoadSummary {
            requests: field("requests")?,
            prefix_facts: field("prefix_facts")?,
            evicted: field("evicted")?,
        })
    }

    /// Parses an `APPENDED`/`RETRACTED` payload into the request's
    /// post-mutation delta fact count.
    fn parse_mutated(expect: &str, payload: &str) -> Result<usize, ClientError> {
        let body = payload
            .strip_prefix(expect)
            .ok_or_else(|| ClientError::Protocol(format!("expected {expect}, got {payload:?}")))?;
        parse_kv(body.trim_start())
            .get("facts")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("{expect} reply missing facts")))
    }

    /// Adds the instance's facts (shipped in the plain text codec) to one
    /// request's delta; returns the facts now in that delta.
    pub fn append(
        &mut self,
        tenant: &str,
        request: usize,
        facts: &DatabaseInstance,
    ) -> Result<usize, ClientError> {
        let text = cqa_db::codec::to_text(facts);
        let payload = self.roundtrip(
            &format!("APPEND {tenant} {request} {}", text.len()),
            Some(&text),
        )?;
        Client::parse_mutated("APPENDED", &payload)
    }

    /// Removes the instance's facts from one request's delta (facts not in
    /// the delta are ignored); returns the facts now in that delta.
    pub fn retract(
        &mut self,
        tenant: &str,
        request: usize,
        facts: &DatabaseInstance,
    ) -> Result<usize, ClientError> {
        let text = cqa_db::codec::to_text(facts);
        let payload = self.roundtrip(
            &format!("RETRACT {tenant} {request} {}", text.len()),
            Some(&text),
        )?;
        Client::parse_mutated("RETRACTED", &payload)
    }

    /// Sends one raw command line (no payload) and returns the `OK` reply's
    /// payload — an escape hatch for tests exercising protocol edges (for
    /// example `CRASH` under fault injection).
    pub fn raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.roundtrip(line, None)
    }

    fn parse_answers(payload: &str) -> Result<Vec<bool>, ClientError> {
        let bits = payload
            .strip_prefix("ANSWERS ")
            .ok_or_else(|| ClientError::Protocol(format!("expected ANSWERS, got {payload:?}")))?;
        if bits == "-" {
            return Ok(Vec::new());
        }
        bits.chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(ClientError::Protocol(format!("bad answer bit {other:?}"))),
            })
            .collect()
    }

    /// Decides a query word against every request of the tenant's family;
    /// one answer per request, in request order.
    pub fn query(&mut self, tenant: &str, word: &str) -> Result<Vec<bool>, ClientError> {
        let payload = self.roundtrip(&format!("QUERY {tenant} {word}"), None)?;
        Client::parse_answers(&payload)
    }

    /// Decides a query word against an explicit subset of the tenant's
    /// requests; one answer per id, in the given order.
    pub fn batch(
        &mut self,
        tenant: &str,
        requests: &[usize],
        word: &str,
    ) -> Result<Vec<bool>, ClientError> {
        let ids = requests
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<String>>()
            .join(",");
        let payload = self.roundtrip(&format!("BATCH {tenant} {ids} {word}"), None)?;
        Client::parse_answers(&payload)
    }

    fn stats_payload(&mut self, line: &str) -> Result<BTreeMap<String, String>, ClientError> {
        let payload = self.roundtrip(line, None)?;
        let body = payload
            .strip_prefix("STATS")
            .ok_or_else(|| ClientError::Protocol(format!("expected STATS, got {payload:?}")))?;
        Ok(parse_kv(body.trim_start()))
    }

    /// Server-wide counters (registry + session), as a key → value map.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.stats_payload("STATS")
    }

    /// One resident tenant's counters, as a key → value map.
    pub fn tenant_stats(&mut self, tenant: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.stats_payload(&format!("STATS {tenant}"))
    }

    /// Scrapes the server's metrics as Prometheus-style text. The reply is
    /// length-framed (`OK METRICS <nbytes>` then exactly that many bytes),
    /// so the exposition may span many lines.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let payload = self.roundtrip("METRICS", None)?;
        let nbytes: usize = payload
            .strip_prefix("METRICS ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("expected METRICS, got {payload:?}")))?;
        let mut body = vec![0u8; nbytes];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("METRICS body is not UTF-8".into()))
    }

    /// Drops a tenant's residency.
    pub fn evict(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.roundtrip(&format!("EVICT {tenant}"), None)?;
        Ok(())
    }

    /// Closes the connection cleanly.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.roundtrip("QUIT", None)?;
        Ok(())
    }
}

/// Parses `k=v k=v …` into a map (values never contain spaces in this
/// protocol).
fn parse_kv(body: &str) -> BTreeMap<String, String> {
    body.split_whitespace()
        .filter_map(|pair| pair.split_once('='))
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
        .collect()
}
