//! Loopback tests for the observability surface: `METRICS` scrapes,
//! queue backpressure (`ERR busy`), and the inline `STATS`/`METRICS` read
//! path that must never block behind parked workers.

use std::thread;
use std::time::{Duration, Instant};

use cqa_db::family::InstanceFamily;
use cqa_server::client::Client;
use cqa_server::server::{start, ServerConfig, ServerHandle};
use cqa_workloads::random::shared_prefix_families;

fn observed_server(workers: usize, max_queue: usize, fault_injection: bool) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        max_queue,
        fault_injection,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn tiny_family(seed: u64) -> InstanceFamily {
    let word = cqa_core::word::Word::from_letters("RXRYRY");
    shared_prefix_families(&word, 10, 4, 0.25, seed)
}

/// Extracts the value of an exactly-named series (`name{labels}` or bare
/// `name`) from a Prometheus text exposition.
fn series(text: &str, series: &str) -> Option<u64> {
    text.lines()
        .find(|line| {
            line.strip_prefix(series)
                .is_some_and(|r| r.starts_with(' '))
        })
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn series_or_panic(text: &str, name: &str) -> u64 {
    series(text, name).unwrap_or_else(|| panic!("metrics missing series {name} in:\n{text}"))
}

#[test]
fn metrics_exposition_has_required_families_and_is_monotone() {
    let server = observed_server(2, 64, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .load_family("t0", &tiny_family(0xF00D))
        .expect("load");

    for _ in 0..3 {
        let answers = client.query("t0", "RRX").expect("query");
        assert!(!answers.is_empty());
    }
    let text = client.metrics().expect("scrape");

    // The acceptance bar: counters, gauges, and at least three latency
    // histogram families (per-route service, queue wait, per-command wire
    // latency) must all be present in one scrape.
    for family in [
        "# TYPE cqa_server_commands_total counter",
        "# TYPE cqa_server_busy_total counter",
        "# TYPE cqa_server_queue_depth gauge",
        "# TYPE cqa_server_queue_capacity gauge",
        "# TYPE cqa_server_residents gauge",
        "# TYPE cqa_server_resident_facts gauge",
        "# TYPE cqa_server_command_ns histogram",
        "# TYPE cqa_server_queue_wait_ns histogram",
        "# TYPE cqa_server_service_ns histogram",
        "# TYPE cqa_route_service_ns histogram",
        "# TYPE cqa_session_plan_build_ns histogram",
        "# TYPE cqa_trace_span_ns histogram",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }

    assert_eq!(
        series_or_panic(&text, "cqa_server_commands_total{command=\"query\"}"),
        3
    );
    assert_eq!(
        series_or_panic(&text, "cqa_server_commands_total{command=\"load\"}"),
        1
    );
    assert_eq!(series_or_panic(&text, "cqa_server_queue_capacity"), 64);
    assert_eq!(series_or_panic(&text, "cqa_server_residents"), 1);
    assert!(series_or_panic(&text, "cqa_server_resident_facts") > 0);
    // Every queued query left a full latency trail: wire turnaround,
    // queue wait, and worker service time.
    for histogram in [
        "cqa_server_command_ns_count{command=\"query\"}",
        "cqa_server_queue_wait_ns_count{command=\"query\"}",
        "cqa_server_service_ns_count{command=\"query\"}",
    ] {
        assert_eq!(series_or_panic(&text, histogram), 3);
    }
    // RRX routes through the NL-Datalog overlay, so per-route session
    // latency must be attributed (3 requests per query word × 3 scrapes
    // of the same word — count is per decided request, so just >= 3).
    assert!(series_or_panic(&text, "cqa_route_service_ns_count{route=\"nl_datalog\"}") >= 3);
    assert!(series_or_panic(&text, "cqa_session_plan_build_ns_count") >= 1);

    // Monotone: more traffic can only grow the counters within one server
    // lifetime.
    for _ in 0..2 {
        client.query("t0", "RRX").expect("query");
    }
    let text2 = client.metrics().expect("scrape 2");
    assert_eq!(
        series_or_panic(&text2, "cqa_server_commands_total{command=\"query\"}"),
        5
    );
    assert!(
        series_or_panic(&text2, "cqa_server_command_ns_count{command=\"query\"}")
            > series_or_panic(&text, "cqa_server_command_ns_count{command=\"query\"}")
    );
    // The first scrape itself was counted by the second one.
    assert!(series_or_panic(&text2, "cqa_server_commands_total{command=\"metrics\"}") >= 2);

    client.quit().expect("quit");
    server.shutdown();

    // Counters are per server instance: a restarted server starts from
    // zero (only the process-global trace spans survive).
    let server = observed_server(2, 64, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    let fresh = client.metrics().expect("fresh scrape");
    assert_eq!(
        series_or_panic(&fresh, "cqa_server_commands_total{command=\"query\"}"),
        0
    );
    assert_eq!(
        series_or_panic(&fresh, "cqa_server_commands_total{command=\"load\"}"),
        0
    );
    assert_eq!(series_or_panic(&fresh, "cqa_server_residents"), 0);
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_busy_and_connection_stays_usable() {
    // One worker, one queue slot, fault injection on: SLOW parks the
    // worker deterministically, one queued job fills the queue, and the
    // next command must bounce with ERR busy.
    let server = observed_server(1, 1, true);
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    client
        .load_family("t0", &tiny_family(0xBEEF))
        .expect("load");

    // Park the worker: SLOW occupies it for 600ms on another connection.
    let parked = thread::spawn(move || {
        let mut parker = Client::connect(addr).expect("connect parker");
        parker.raw("SLOW 600").expect("slow")
    });
    // Fill the single queue slot behind the sleeping worker.
    let filler = thread::spawn(move || {
        let mut filler = Client::connect(addr).expect("connect filler");
        thread::sleep(Duration::from_millis(150));
        filler.query("t0", "RRX").expect("queued query")
    });
    thread::sleep(Duration::from_millis(300));

    // Worker parked + queue full: this query must be rejected, not queued.
    let err = client.query("t0", "RRX").expect_err("queue must be full");
    assert!(err.is_busy(), "expected ERR busy, got: {err}");

    // The rejection had no effect on the connection: once the queue
    // drains, the same connection serves the same query cleanly.
    let queued_answers = filler.join().expect("filler thread");
    assert_eq!(parked.join().expect("parker thread"), "SLEPT millis=600");
    let answers = client.query("t0", "RRX").expect("query after busy");
    assert_eq!(answers, queued_answers);

    // The rejection is visible in METRICS, and the queue has drained.
    let text = client.metrics().expect("scrape");
    assert!(series_or_panic(&text, "cqa_server_busy_total") >= 1);
    assert_eq!(series_or_panic(&text, "cqa_server_queue_depth"), 0);
    assert_eq!(series_or_panic(&text, "cqa_server_queue_capacity"), 1);

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn stats_and_metrics_answer_inline_while_workers_are_parked() {
    // Both workers parked in SLOW: STATS and METRICS must still answer
    // fast, because the read path runs on the reader thread and never
    // enters the work queue.
    let server = observed_server(2, 8, true);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .load_family("t0", &tiny_family(0xCAFE))
        .expect("load");

    let parked: Vec<_> = (0..2)
        .map(|_| {
            thread::spawn(move || {
                let mut parker = Client::connect(addr).expect("connect parker");
                parker.raw("SLOW 800").expect("slow")
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(200));

    let clock = Instant::now();
    let stats = client.stats().expect("stats under load");
    let text = client.metrics().expect("metrics under load");
    let elapsed = clock.elapsed();
    assert!(
        elapsed < Duration::from_millis(400),
        "read path blocked behind parked workers: {elapsed:?}"
    );
    assert!(stats.contains_key("residents"));
    // Both SLOW jobs were accepted and are still in flight.
    assert_eq!(
        series_or_panic(&text, "cqa_server_commands_total{command=\"slow\"}"),
        2
    );

    for parker in parked {
        assert_eq!(parker.join().expect("parker thread"), "SLEPT millis=800");
    }
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn slow_requires_fault_injection_and_tenant_derive_time_is_attributed() {
    let server = observed_server(1, 8, false);
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .raw("SLOW 50")
        .expect_err("SLOW without fault injection");
    assert!(!err.is_busy());
    assert!(
        matches!(err, cqa_server::client::ClientError::Server(_)),
        "expected a typed server error, got: {err}"
    );

    // Datalog-route traffic must surface per-tenant derive time in STATS.
    client
        .load_family("t0", &tiny_family(0xD00D))
        .expect("load");
    client.query("t0", "RRX").expect("query");
    let stats = client.tenant_stats("t0").expect("tenant stats");
    let derive_ns: u64 = stats
        .get("derive_ns")
        .expect("tenant stats missing derive_ns")
        .parse()
        .expect("numeric derive_ns");
    assert!(derive_ns > 0, "Datalog derivation took no measurable time");

    client.quit().expect("quit");
    server.shutdown();
}
