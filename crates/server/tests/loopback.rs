//! Loopback integration tests: a real server on 127.0.0.1, real sockets,
//! and answers pinned byte-identical to the direct in-process path.

use std::collections::BTreeMap;
use std::sync::Arc;

use cqa_core::query::PathQuery;
use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;
use cqa_server::client::Client;
use cqa_server::proto::ErrorCode;
use cqa_server::registry::ResidencyLimits;
use cqa_server::server::{start, ServerConfig, ServerHandle};
use cqa_solver::dispatch::DispatchSolver;
use cqa_workloads::random::{shared_prefix_families, tenant_request_stream};

/// The query words the streams draw from: NL-datalog (RRX, RXRY), FO
/// (RXRX) and PTIME (RXRYRY) routes, so the wire path is exercised across
/// the tetrachotomy, not just the copy-on-write fast path.
const WORDS: [&str; 4] = ["RRX", "RXRY", "RXRX", "RXRYRY"];

fn test_server(workers: usize) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// A small per-tenant family over the RRX relation alphabet (every word in
/// WORDS uses a subset of {R, X, Y}; the layered generator cycles whatever
/// word it is given, so one family serves all four queries).
fn tenant_family(tenant: usize) -> InstanceFamily {
    let word = cqa_core::word::Word::from_letters("RXRYRY");
    shared_prefix_families(&word, 12, 6, 0.25, 0xABBA + tenant as u64)
}

/// The direct, no-server answer: a fresh dispatcher deciding the same
/// family through `certain_batch_family`.
fn direct_answers(query: &PathQuery, family: &InstanceFamily) -> Vec<bool> {
    DispatchSolver::with_datalog_nl()
        .certain_batch_family(query, family)
        .into_iter()
        .map(|r| r.expect("direct path must not fail"))
        .collect()
}

fn stat(stats: &BTreeMap<String, String>, key: &str) -> u64 {
    stats
        .get(key)
        .unwrap_or_else(|| panic!("stats missing {key}: {stats:?}"))
        .parse()
        .expect("numeric stat")
}

#[test]
fn mixed_tenant_stream_matches_direct_answers() {
    let server = test_server(2);
    let tenants = 3usize;
    let families: Vec<InstanceFamily> = (0..tenants).map(tenant_family).collect();

    let mut client = Client::connect(server.addr()).expect("connect");
    for (t, family) in families.iter().enumerate() {
        let summary = client.load_family(&format!("t{t}"), family).expect("load");
        assert_eq!(summary.requests, family.len());
        assert_eq!(summary.prefix_facts, family.prefix().len());
    }

    // 120 requests across tenants and query words, hot/cold skewed. The
    // direct-path oracle is computed once per (tenant, word) pair — the
    // answers are deterministic, so every repeat must match the same bits.
    let mut oracle: BTreeMap<(usize, String), Vec<bool>> = BTreeMap::new();
    let stream = tenant_request_stream(tenants, &WORDS, 120, 1.0, 0x57EA);
    assert!(stream.len() >= 100);
    for (i, request) in stream.iter().enumerate() {
        let word = request.query.word().to_string();
        let got = client
            .query(&format!("t{}", request.tenant), &word)
            .expect("query");
        let want = oracle
            .entry((request.tenant, word.clone()))
            .or_insert_with(|| direct_answers(&request.query, &families[request.tenant]));
        assert_eq!(
            &got, want,
            "request {i}: tenant {} word {word} answers drifted from the direct path",
            request.tenant
        );
    }

    // The stream included Datalog-route queries (RRX, RXRY), so derivation
    // work must be visible server-wide and attributed to the tenants that
    // caused it — along with the demand transformation's pruning counters
    // (zero here is fine for those: the generated programs may have nothing
    // unreachable — the keys must exist either way).
    let global = client.stats().expect("stats");
    assert!(
        stat(&global, "tuples_derived") > 0,
        "Datalog-route traffic derived nothing"
    );
    let _ = stat(&global, "rules_pruned");
    let _ = stat(&global, "predicates_pruned");
    // The generated CQA programs live in the unary/binary fragment, so with
    // kernels at their default (on) the runs must be attributed to the
    // specialized path. The CI kernels-off pass flips the default through
    // the env knob; there the counters must exist but stay zero.
    if matches!(
        std::env::var("PATH_CQA_KERNELS").as_deref(),
        Ok("off") | Ok("0")
    ) {
        assert_eq!(stat(&global, "kernel_rules"), 0, "kernels off but selected");
        assert_eq!(
            stat(&global, "kernel_invocations"),
            0,
            "kernels off but run"
        );
    } else {
        assert!(
            stat(&global, "kernel_rules") > 0,
            "no rule was served through a specialized kernel"
        );
        assert!(
            stat(&global, "kernel_invocations") > 0,
            "kernel rules were selected but never executed"
        );
    }
    let _ = stat(&global, "generic_rules");
    let per_tenant: u64 = (0..tenants)
        .map(|t| {
            stat(
                &client.tenant_stats(&format!("t{t}")).expect("stats"),
                "tuples_derived",
            )
        })
        .sum();
    assert!(per_tenant > 0, "no tenant was credited any derivation work");
    assert!(
        per_tenant <= stat(&global, "tuples_derived"),
        "tenants credited more derivations than the session performed"
    );

    // BATCH subsets agree with the corresponding QUERY slice, including
    // duplicates and permutations.
    let q = PathQuery::parse("RRX").unwrap();
    let full = direct_answers(&q, &families[1]);
    let subset = [5usize, 0, 3, 3, 1];
    let got = client.batch("t1", &subset, "RRX").expect("batch");
    let want: Vec<bool> = subset.iter().map(|&i| full[i]).collect();
    assert_eq!(got, want, "BATCH must answer the selected ids in order");

    // Typed errors for the failure shapes a client can trigger.
    let not_loaded = client.query("ghost", "RRX").unwrap_err();
    match not_loaded {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::NotLoaded),
        other => panic!("expected typed not-loaded, got {other}"),
    }
    let served_before = stat(&client.tenant_stats("t0").expect("stats"), "served");
    let bad_query = client.query("t0", "R!X").unwrap_err();
    match bad_query {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::BadQuery),
        other => panic!("expected typed bad-query, got {other}"),
    }
    // A rejected query must not count as serving the tenant (or keep it
    // warm in the LRU).
    assert_eq!(
        stat(&client.tenant_stats("t0").expect("stats"), "served"),
        served_before
    );
    let bad_id = client.batch("t0", &[999], "RRX").unwrap_err();
    match bad_id {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::BadRequestId),
        other => panic!("expected typed bad-request-id, got {other}"),
    }

    client.quit().expect("clean quit");
    server.shutdown();
}

#[test]
fn concurrent_disjoint_tenants_answer_identically_and_build_bases_once() {
    let server = test_server(4);
    let tenants = 4usize;
    let families: Vec<Arc<InstanceFamily>> =
        (0..tenants).map(|t| Arc::new(tenant_family(t))).collect();

    // Expected per-tenant index builds for this query mix, measured on a
    // fresh in-process resident base (stats-pinned, not timing-pinned).
    let expected_builds: Vec<u64> = families
        .iter()
        .map(|family| {
            let session = cqa_solver::session::CertaintySession::with_datalog_nl();
            let base = cqa_datalog::store::edb_base_from_instance(family.prefix());
            let all: Vec<usize> = (0..family.len()).collect();
            for word in WORDS {
                let q = PathQuery::parse(word).unwrap();
                for _ in 0..3 {
                    session.certain_batch_family_resident(&q, family, &base, &all);
                }
            }
            base.index_builds()
        })
        .collect();

    {
        let mut loader = Client::connect(server.addr()).expect("connect");
        for (t, family) in families.iter().enumerate() {
            loader.load_family(&format!("t{t}"), family).expect("load");
        }
        loader.quit().expect("quit");
    }

    // One client thread per tenant, each over its own connection, each
    // hammering every word several times.
    std::thread::scope(|scope| {
        for (t, family) in families.iter().enumerate() {
            let addr = server.addr();
            let family = Arc::clone(family);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let wants: Vec<Vec<bool>> = WORDS
                    .iter()
                    .map(|word| direct_answers(&PathQuery::parse(word).unwrap(), &family))
                    .collect();
                for round in 0..3 {
                    for (word, want) in WORDS.iter().zip(&wants) {
                        let got = client.query(&format!("t{t}"), word).expect("query");
                        assert_eq!(&got, want, "tenant {t} word {word} round {round}");
                    }
                }
                client.quit().expect("quit");
            });
        }
    });

    // Despite 4 connections × 3 rounds × 4 words, each tenant's base built
    // its probe indexes exactly as often as one fresh run — i.e. exactly
    // once per (pred, mask) slot, never per connection or per query.
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut total_builds = 0;
    for (t, expected) in expected_builds.iter().enumerate() {
        let stats = client.tenant_stats(&format!("t{t}")).expect("tenant stats");
        assert_eq!(
            stat(&stats, "base_index_builds"),
            *expected,
            "tenant {t} rebuilt its base indexes"
        );
        assert_eq!(stat(&stats, "requests"), families[t].len() as u64);
        total_builds += expected;
    }
    let global = client.stats().expect("stats");
    assert_eq!(stat(&global, "base_index_builds"), total_builds);
    assert_eq!(stat(&global, "residents"), tenants as u64);
    assert_eq!(stat(&global, "loads"), tenants as u64);
    assert_eq!(stat(&global, "evictions"), 0);
    // The session decided every wire request: 4 tenants × 3 rounds × 4
    // words × 6 family requests, all through cached plans (4 misses).
    assert_eq!(
        stat(&global, "requests_decided"),
        (tenants * 3 * WORDS.len() * 6) as u64
    );
    assert_eq!(stat(&global, "queries_prepared"), WORDS.len() as u64);
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn eviction_and_reload_rebuild_exactly_once_with_identical_answers() {
    let server = test_server(2);
    let family = tenant_family(7);
    let q = PathQuery::parse("RRX").unwrap();
    let want = direct_answers(&q, &family);

    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t", &family).expect("load");
    assert_eq!(client.query("t", "RRX").expect("query"), want);
    let builds_first = stat(
        &client.tenant_stats("t").expect("stats"),
        "base_index_builds",
    );
    assert!(builds_first > 0, "the datalog route must probe the base");
    // Repeats do not grow the build count.
    assert_eq!(client.query("t", "RRX").expect("query"), want);
    assert_eq!(
        stat(
            &client.tenant_stats("t").expect("stats"),
            "base_index_builds"
        ),
        builds_first
    );

    // Explicit eviction: the tenant is gone, and its builds are retired
    // into the cumulative registry total.
    client.evict("t").expect("evict");
    match client.query("t", "RRX").unwrap_err() {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::NotLoaded),
        other => panic!("expected not-loaded after evict, got {other}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "evictions"), 1);
    assert_eq!(stat(&stats, "base_index_builds"), builds_first);

    // Re-LOAD: answers identical, and the base is rebuilt exactly once
    // more (cumulative builds double, per-tenant builds equal the first
    // residency's).
    client.load_family("t", &family).expect("reload");
    assert_eq!(client.query("t", "RRX").expect("query"), want);
    assert_eq!(client.query("t", "RRX").expect("query"), want);
    assert_eq!(
        stat(
            &client.tenant_stats("t").expect("stats"),
            "base_index_builds"
        ),
        builds_first
    );
    assert_eq!(
        stat(&client.stats().expect("stats"), "base_index_builds"),
        2 * builds_first
    );
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn lru_pressure_evicts_cold_tenants_and_reload_serves_again() {
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        limits: ResidencyLimits {
            max_tenants: 2,
            max_facts: usize::MAX,
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let families: Vec<InstanceFamily> = (0..3).map(tenant_family).collect();
    let q = PathQuery::parse("RXRY").unwrap();

    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t0", &families[0]).expect("load");
    client.load_family("t1", &families[1]).expect("load");
    // Touch t0 so t1 is the LRU victim when t2 arrives.
    client.query("t0", "RXRY").expect("query");
    let summary = client.load_family("t2", &families[2]).expect("load");
    assert_eq!(summary.evicted, 1, "the cap must push one tenant out");
    match client.query("t1", "RXRY").unwrap_err() {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::NotLoaded),
        other => panic!("expected not-loaded for the LRU victim, got {other}"),
    }
    for t in [0usize, 2] {
        assert_eq!(
            client.query(&format!("t{t}"), "RXRY").expect("query"),
            direct_answers(&q, &families[t]),
            "surviving tenant {t}"
        );
    }
    // Reloading the victim serves identical answers again.
    client.load_family("t1", &families[1]).expect("reload");
    assert_eq!(
        client.query("t1", "RXRY").expect("query"),
        direct_answers(&q, &families[1])
    );
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn append_and_retract_track_a_fresh_load_of_the_mutated_family() {
    let server = test_server(2);
    let family = tenant_family(3);
    assert!(
        !family.deltas()[0].is_empty(),
        "the generated family must give request 0 a nonempty delta"
    );

    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t", &family).expect("load");
    // Warm every word so the resident base has built all its indexes (and
    // checkpoints); mutations below must not invalidate any of them.
    for word in WORDS {
        let q = PathQuery::parse(word).unwrap();
        assert_eq!(
            client.query("t", word).expect("query"),
            direct_answers(&q, &family)
        );
    }
    let builds_warm = stat(
        &client.tenant_stats("t").expect("stats"),
        "base_index_builds",
    );
    let facts_loaded = stat(&client.tenant_stats("t").expect("stats"), "facts");

    // Interleave: append fresh R-facts to request 0, retract the first
    // original fact of request 1's delta, append to request 1 too — then
    // check every word against a *fresh* materialization of the mutated
    // family. The shadow family applies the same mutations in-process.
    let mut additions0 = DatabaseInstance::new();
    additions0.insert_parsed("R", "live1", "live2");
    additions0.insert_parsed("R", "live2", "live3");
    let removal1 = DatabaseInstance::from_facts([family.deltas()[1].facts()[0]]);
    let mut additions1 = DatabaseInstance::new();
    additions1.insert_parsed("R", "live3", "live4");

    let mut deltas = family.deltas().to_vec();
    deltas[0] = deltas[0].union(&additions0);
    let after0 = client.append("t", 0, &additions0).expect("append");
    assert_eq!(after0, deltas[0].len());
    deltas[1] = DatabaseInstance::from_facts(
        deltas[1]
            .facts()
            .iter()
            .copied()
            .filter(|f| !removal1.contains(f)),
    );
    let after1 = client.retract("t", 1, &removal1).expect("retract");
    assert_eq!(after1, deltas[1].len());
    deltas[1] = deltas[1].union(&additions1);
    client.append("t", 1, &additions1).expect("append");
    let mutated = InstanceFamily::with_deltas(family.prefix().clone(), deltas);

    for word in WORDS {
        let q = PathQuery::parse(word).unwrap();
        assert_eq!(
            client.query("t", word).expect("query"),
            direct_answers(&q, &mutated),
            "word {word} drifted from a fresh load of the mutated family"
        );
    }
    // The mutations touched only deltas: the residency was never retired
    // (a re-LOAD would count as an eviction and rebuild the base from
    // scratch). Committed indexes are built lazily per probe slot, so new
    // delta constants may legitimately warm a slot the old traffic never
    // probed — but once warm, repeating the mix builds nothing.
    assert_eq!(
        stat(&client.stats().expect("stats"), "evictions"),
        0,
        "delta mutation must not retire the residency"
    );
    let builds_mutated = stat(
        &client.tenant_stats("t").expect("stats"),
        "base_index_builds",
    );
    assert!(builds_mutated >= builds_warm);
    for word in WORDS {
        client.query("t", word).expect("requery");
    }
    assert_eq!(
        stat(
            &client.tenant_stats("t").expect("stats"),
            "base_index_builds"
        ),
        builds_mutated,
        "repeating the mix after mutation must not rebuild base indexes"
    );
    // Net fact change: +2 (req 0), -1 +1 (req 1).
    assert_eq!(
        stat(&client.tenant_stats("t").expect("stats"), "facts"),
        facts_loaded + 2,
    );

    // Retracting facts that were never in the delta is a no-op, not an
    // error.
    let mut absent = DatabaseInstance::new();
    absent.insert_parsed("R", "never", "present");
    assert_eq!(
        client.retract("t", 0, &absent).expect("retract absent"),
        mutated.deltas()[0].len()
    );

    // Typed errors: absent tenant, bad request id — and neither mutates.
    match client.append("ghost", 0, &additions0).unwrap_err() {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::NotLoaded),
        other => panic!("expected typed not-loaded, got {other}"),
    }
    match client.append("t", 999, &additions0).unwrap_err() {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::BadRequestId),
        other => panic!("expected typed bad-request-id, got {other}"),
    }
    let q = PathQuery::parse("RRX").unwrap();
    assert_eq!(
        client.query("t", "RRX").expect("query"),
        direct_answers(&q, &mutated)
    );
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn evict_and_reload_drop_the_maintained_idb_with_the_base() {
    let server = test_server(2);
    let family = tenant_family(5);
    let q = PathQuery::parse("RRX").unwrap();
    let want = direct_answers(&q, &family);

    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t", &family).expect("load");
    assert_eq!(client.query("t", "RRX").expect("query"), want);

    // Mutate a delta and requery: the maintained path now holds a
    // materialized IDB on the resident base and maintains it differentially.
    let mut additions = DatabaseInstance::new();
    additions.insert_parsed("R", "m1", "m2");
    client.append("t", 0, &additions).expect("append");
    let mut deltas = family.deltas().to_vec();
    deltas[0] = deltas[0].union(&additions);
    let mutated = InstanceFamily::with_deltas(family.prefix().clone(), deltas);
    assert_eq!(
        client.query("t", "RRX").expect("requery"),
        direct_answers(&q, &mutated)
    );

    let tenant = client.tenant_stats("t").expect("stats");
    let maintained = stat(&tenant, "maintained_tuples");
    let global = client.stats().expect("stats");
    // The CI maintain-off pass flips the default through the env knob;
    // there the counters must exist but stay zero.
    if matches!(
        std::env::var("PATH_CQA_MAINTAIN").as_deref(),
        Ok("off") | Ok("0")
    ) {
        assert_eq!(maintained, 0, "maintenance off but state materialized");
        assert_eq!(stat(&global, "maintained_hits"), 0);
    } else {
        assert!(
            maintained > 0,
            "the datalog route must materialize a maintained IDB on the base"
        );
        assert!(
            stat(&global, "maintained_hits") > 0,
            "the requery must have been served from the maintained IDB"
        );
    }
    // Registry accounting sees the maintained state as part of the
    // residency's size.
    assert_eq!(
        stat(&global, "resident_facts"),
        stat(&tenant, "facts") + maintained
    );

    // EVICT drops the base `Arc`, and the maintained state lives *on* the
    // base (no back-reference cycle) — so it is reclaimed with it and the
    // accounting returns to zero.
    client.evict("t").expect("evict");
    assert_eq!(stat(&client.stats().expect("stats"), "resident_facts"), 0);

    // Re-LOAD builds a fresh base: no maintained state survives the
    // eviction, and answers are identical to a fresh materialization.
    client.load_family("t", &mutated).expect("reload");
    assert_eq!(
        stat(
            &client.tenant_stats("t").expect("stats"),
            "maintained_tuples"
        ),
        0,
        "a re-LOADed base must start with no maintained state"
    );
    assert_eq!(
        client.query("t", "RRX").expect("query"),
        direct_answers(&q, &mutated)
    );
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn worker_panics_are_contained_and_the_server_keeps_serving() {
    let server = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        fault_injection: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let family = tenant_family(0);
    let q = PathQuery::parse("RRX").unwrap();
    let want = direct_answers(&q, &family);

    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t", &family).expect("load");
    assert_eq!(client.query("t", "RRX").expect("query"), want);

    // More panics than workers: with one worker, a single uncontained panic
    // would wedge the whole queue forever. Each CRASH must come back as a
    // typed internal error on the same connection.
    for round in 0..3 {
        match client.raw("CRASH").unwrap_err() {
            cqa_server::client::ClientError::Server(e) => {
                assert_eq!(e.code, ErrorCode::Internal, "round {round}: {e}");
                assert!(e.message.contains("panic"), "round {round}: {e}");
            }
            other => panic!("round {round}: expected typed internal error, got {other}"),
        }
        // The very next command on the same connection is served normally.
        assert_eq!(
            client.query("t", "RRX").expect("query after panic"),
            want,
            "round {round}"
        );
    }
    // New connections work too, and the registry is intact.
    let mut fresh = Client::connect(server.addr()).expect("connect");
    assert_eq!(fresh.query("t", "RRX").expect("query"), want);
    assert_eq!(stat(&fresh.stats().expect("stats"), "residents"), 1);
    fresh.quit().expect("quit");
    client.quit().expect("quit");
    server.shutdown();

    // Without fault injection (the default), CRASH is just a bad command.
    let server = test_server(1);
    let mut client = Client::connect(server.addr()).expect("connect");
    match client.raw("CRASH").unwrap_err() {
        cqa_server::client::ClientError::Server(e) => assert_eq!(e.code, ErrorCode::BadCommand),
        other => panic!("expected bad-command, got {other}"),
    }
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn rejected_payloads_consume_exactly_their_bytes() {
    use std::io::{BufRead, BufReader, Write};
    let server = test_server(1);

    // Make a tenant resident so the good follow-up commands have a target.
    let family = tenant_family(0);
    let q = PathQuery::parse("RRX").unwrap();
    let want: String = direct_answers(&q, &family)
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let mut loader = Client::connect(server.addr()).expect("connect");
    loader.load_family("t", &family).expect("load");
    loader.quit().expect("quit");

    // A well-formed LOAD line whose payload is garbage: the server must
    // consume exactly the declared bytes before replying ERR, leaving the
    // stream aligned for the next command. The payload is deliberately made
    // of command-shaped lines — if framing desynced, the server would
    // execute them (QUIT would close the connection and the final QUERY
    // would never answer).
    let payload = b"QUIT\nQUIT\n!!";
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writer
        .write_all(format!("LOAD t2 {}\n", payload.len()).as_bytes())
        .expect("write");
    writer.write_all(payload).expect("write payload");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR bad-payload"), "got {line:?}");
    line.clear();

    // Same contract for a rejected APPEND payload…
    writer
        .write_all(format!("APPEND t 0 {}\n", payload.len()).as_bytes())
        .expect("write");
    writer.write_all(payload).expect("write payload");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR bad-payload"), "got {line:?}");
    line.clear();

    // …and for payload-carrying commands rejected for non-framing reasons
    // (absent tenant, well-formed payload): bytes still consumed.
    let good_payload = b"R a b\n";
    writer
        .write_all(format!("APPEND ghost 0 {}\n", good_payload.len()).as_bytes())
        .expect("write");
    writer.write_all(good_payload).expect("write payload");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR not-loaded"), "got {line:?}");
    line.clear();

    // The connection is still perfectly usable: the QUERY answers.
    writer.write_all(b"QUERY t RRX\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim_end(), format!("OK ANSWERS {want}"));
    line.clear();

    // A malformed APPEND *command line* loses framing (the length was never
    // parsed) and must close, exactly like malformed LOAD lines.
    writer
        .write_all(b"APPEND t zero 12\nR a b\n")
        .expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("ERR bad-command"), "got {line:?}");
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read eof"),
        0,
        "connection must close after a malformed APPEND line, got {line:?}"
    );
    server.shutdown();
}

#[test]
fn malformed_load_lines_close_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let server = test_server(1);

    // A LOAD whose command line is rejected may be followed by payload
    // bytes the server never learned the length of — after the typed error
    // the server must close rather than parse the payload as commands.
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"LOAD bad..name..way..too..long..to..matter 99999999999\nR a b\n")
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error reply");
    assert!(line.starts_with("ERR bad-command"), "got {line:?}");
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read eof"),
        0,
        "connection must be closed after a malformed LOAD, got {line:?}"
    );

    // Other malformed lines keep the connection usable.
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"NOPE\nSTATS\n").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error reply");
    assert!(line.starts_with("ERR bad-command"), "got {line:?}");
    line.clear();
    reader.read_line(&mut line).expect("read stats reply");
    assert!(line.starts_with("OK STATS"), "got {line:?}");

    server.shutdown();
}

#[test]
fn overlong_command_lines_are_rejected_and_close() {
    use std::io::{BufRead, BufReader, Write};
    let server = test_server(1);
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // 32 KiB of newline-free garbage: the server must cap its line buffer,
    // reply with the typed error and close instead of buffering forever.
    writer.write_all(&vec![b'x'; 32 << 10]).expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error reply");
    assert!(
        line.starts_with("ERR bad-command") && line.contains("exceeds"),
        "got {line:?}"
    );
    line.clear();
    // Closing with the rest of the garbage unread makes the kernel send
    // RST, so either a clean EOF or a reset proves the connection is gone.
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected a closed connection, read {n} more bytes: {line:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_with_open_connections_does_not_hang() {
    let server = test_server(1);
    let mut client = Client::connect(server.addr()).expect("connect");
    client.load_family("t", &tenant_family(0)).expect("load");
    assert!(client.query("t", "RRX").is_ok());
    // Shut the server down while the connection is idle-open: the next
    // command must get a typed error or a closed socket, never a hang.
    server.shutdown();
    match client.query("t", "RRX") {
        Err(cqa_server::client::ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Solver, "got {e}")
        }
        Err(_) => {} // closed socket is equally acceptable
        Ok(answers) => panic!("expected an error after shutdown, got {answers:?}"),
    }
}
