//! The syntactic conditions C1, C2, C3 of Section 3.
//!
//! Let `R` be any relation name of `q` and `u, v, w` possibly empty words:
//!
//! * **C1**: whenever `q = uRvRw`, `q` is a *prefix* of `uRvRvRw`;
//! * **C2**: whenever `q = uRvRw`, `q` is a *factor* of `uRvRvRw`; and
//!   whenever `q = uRv1Rv2Rw` for *consecutive* occurrences of `R`,
//!   `v1 = v2` or `Rw` is a prefix of `Rv1`;
//! * **C3**: whenever `q = uRvRw`, `q` is a *factor* of `uRvRvRw`.
//!
//! Every decomposition `q = uRvRw` corresponds to a pair of positions
//! `(i, j)` with `i < j` and `q[i] = q[j]`, and the word `uRvRvRw` is the
//! single-step rewind of `q` at `(i, j)`; the checks below therefore run in
//! time `O(|q|^3)`, polynomial in the size of the query as promised by
//! Theorem 2.

use crate::word::Word;

/// True iff the word satisfies condition **C1**.
pub fn satisfies_c1(q: &Word) -> bool {
    q.repeated_letter_pairs()
        .into_iter()
        .all(|(i, j)| q.is_prefix_of(&q.rewind_at(i, j)))
}

/// True iff the word satisfies condition **C3**.
pub fn satisfies_c3(q: &Word) -> bool {
    q.repeated_letter_pairs()
        .into_iter()
        .all(|(i, j)| q.is_factor_of(&q.rewind_at(i, j)))
}

/// True iff the word satisfies condition **C2**.
pub fn satisfies_c2(q: &Word) -> bool {
    if !satisfies_c3(q) {
        return false;
    }
    // Second clause: q = u R v1 R v2 R w for consecutive occurrences of R.
    q.consecutive_triples().into_iter().all(|(i, j, k)| {
        let v1 = q.slice(i + 1, j);
        let v2 = q.slice(j + 1, k);
        // Rw = q[k..], Rv1 = q[i..j].
        let rw = q.suffix_from(k);
        let rv1 = q.slice(i, j);
        v1 == v2 || rw.is_prefix_of(&rv1)
    })
}

/// Report of which conditions a path-query word satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionReport {
    /// Condition C1 (FO upper bound).
    pub c1: bool,
    /// Condition C2 (NL upper bound).
    pub c2: bool,
    /// Condition C3 (PTIME upper bound).
    pub c3: bool,
}

/// Evaluates all three conditions at once.
pub fn conditions(q: &Word) -> ConditionReport {
    ConditionReport {
        c1: satisfies_c1(q),
        c2: satisfies_c2(q),
        c3: satisfies_c3(q),
    }
}

/// Returns a witnessing decomposition `(i, j)` for which C1 fails, if any.
///
/// The returned pair identifies `q = uRvRw` with `u = q[..i]`, `R = q[i]`,
/// `v = q[i+1..j]`, `w = q[j+1..]` such that `q` is not a prefix of
/// `uRvRvRw`. Used by the NL-hardness reduction (Lemma 18).
pub fn c1_violation_witness(q: &Word) -> Option<(usize, usize)> {
    q.repeated_letter_pairs()
        .into_iter()
        .find(|&(i, j)| !q.is_prefix_of(&q.rewind_at(i, j)))
}

/// Returns a witnessing decomposition `(i, j)` for which C3 fails, if any.
/// Used by the coNP-hardness reduction (Lemma 19).
pub fn c3_violation_witness(q: &Word) -> Option<(usize, usize)> {
    q.repeated_letter_pairs()
        .into_iter()
        .find(|&(i, j)| !q.is_factor_of(&q.rewind_at(i, j)))
}

/// Returns a witnessing triple `(i, j, k)` of consecutive occurrences of the
/// same relation name for which the second clause of C2 fails, if any.
/// Used by the PTIME-hardness reduction (Lemma 20).
pub fn c2_triple_violation_witness(q: &Word) -> Option<(usize, usize, usize)> {
    q.consecutive_triples().into_iter().find(|&(i, j, k)| {
        let v1 = q.slice(i + 1, j);
        let v2 = q.slice(j + 1, k);
        let rw = q.suffix_from(k);
        let rv1 = q.slice(i, j);
        v1 != v2 && !rw.is_prefix_of(&rv1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::from_letters(s)
    }

    #[test]
    fn self_join_free_queries_satisfy_all_conditions() {
        for q in ["R", "RX", "RXY", "ABCDE"] {
            let rep = conditions(&w(q));
            assert!(rep.c1 && rep.c2 && rep.c3, "failed for {q}");
        }
    }

    #[test]
    fn example_3_q1_rxrx_satisfies_c1() {
        let rep = conditions(&w("RXRX"));
        assert!(rep.c1);
        assert!(rep.c2);
        assert!(rep.c3);
    }

    #[test]
    fn example_3_q2_rxry_satisfies_c3_violates_c1() {
        let rep = conditions(&w("RXRY"));
        assert!(!rep.c1);
        assert!(rep.c2);
        assert!(rep.c3);
    }

    #[test]
    fn example_3_q3_rxryry_violates_c2_satisfies_c3() {
        let rep = conditions(&w("RXRYRY"));
        assert!(!rep.c1);
        assert!(!rep.c2);
        assert!(rep.c3);
    }

    #[test]
    fn example_3_q4_rxrxryry_violates_c3() {
        let rep = conditions(&w("RXRXRYRY"));
        assert!(!rep.c1);
        assert!(!rep.c2);
        assert!(!rep.c3);
    }

    #[test]
    fn intro_examples() {
        // q1 = RR is in FO; q2 = RRX satisfies C3 but the paper shows it is
        // in PTIME/NL territory; q3 = ARRX is coNP-complete.
        assert!(satisfies_c1(&w("RR")));
        assert!(satisfies_c3(&w("RRX")));
        assert!(!satisfies_c1(&w("RRX")));
        assert!(!satisfies_c3(&w("ARRX")));
    }

    #[test]
    fn proposition_1_c1_implies_c2_implies_c3() {
        // Check the implication chain on an exhaustive small catalogue.
        let alphabet = [
            crate::symbol::RelName::new("R"),
            crate::symbol::RelName::new("X"),
            crate::symbol::RelName::new("Y"),
        ];
        for q in crate::word::all_words(&alphabet, 6) {
            let rep = conditions(&q);
            if rep.c1 {
                assert!(rep.c2, "C1 ⊆ C2 failed for {q}");
            }
            if rep.c2 {
                assert!(rep.c3, "C2 ⊆ C3 failed for {q}");
            }
        }
    }

    #[test]
    fn shortest_c2_violations_from_lemma_3() {
        // The shortest words of the forms (3a) and (3b) in Lemma 3 are
        // RRSRS and RSRRR; both satisfy C3 but violate C2.
        for q in ["RRSRS", "RSRRR"] {
            let rep = conditions(&w(q));
            assert!(rep.c3, "{q} should satisfy C3");
            assert!(!rep.c2, "{q} should violate C2");
        }
    }

    #[test]
    fn witnesses_exist_exactly_when_conditions_fail() {
        let cases = ["RXRX", "RXRY", "RXRYRY", "RXRXRYRY", "RRX", "ARRX", "RR"];
        for q in cases {
            let q = w(q);
            assert_eq!(c1_violation_witness(&q).is_none(), satisfies_c1(&q));
            assert_eq!(c3_violation_witness(&q).is_none(), satisfies_c3(&q));
        }
    }

    #[test]
    fn c2_triple_witness_matches_example_3_q3() {
        // q3 = RXRYRY: u = ε, v1 = X, v2 = Y, w = Y; the triple (0, 2, 4).
        let q = w("RXRYRY");
        let witness = c2_triple_violation_witness(&q);
        assert_eq!(witness, Some((0, 2, 4)));
    }

    #[test]
    fn queries_with_two_occurrences_satisfy_second_clause_vacuously() {
        // RXRY has no relation name occurring three times, so the second
        // clause of C2 holds vacuously.
        assert!(c2_triple_violation_witness(&w("RXRY")).is_none());
    }

    #[test]
    fn paper_query_rxrrr_satisfies_c3_not_c2() {
        // RXRRR (Figure 4's query) contains RSRRR-like structure with S = X:
        // it violates C2 but satisfies C3.
        let rep = conditions(&w("RXRRR"));
        assert!(rep.c3);
        assert!(!rep.c2);
        assert!(!rep.c1);
    }
}
