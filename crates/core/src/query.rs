//! Path queries and generalized path queries.
//!
//! A *path query* (Section 2) is a Boolean conjunctive query
//! `{R1(x1,x2), R2(x2,x3), …, Rk(xk,xk+1)}` with pairwise distinct variables;
//! it is represented losslessly by the word `R1 R2 … Rk`.
//!
//! A *generalized path query* (Section 8, Definition 16) additionally allows
//! constants among the terms `s1, …, sk+1`, with the restriction that every
//! constant occurs at most twice: at a non-primary-key position and the
//! immediately following primary-key position.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::CoreError;
use crate::symbol::{RelName, Symbol};
use crate::word::Word;

/// A query variable. Variables are identified by name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub Symbol);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Variable {
        Variable(Symbol::new(name))
    }

    /// The canonical i-th variable `x{i}` used for path queries.
    pub fn numbered(i: usize) -> Variable {
        Variable(Symbol::new(&format!("x{i}")))
    }

    /// The variable name.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Variable({})", self.as_str())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A term of a generalized path query: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A query variable.
    Var(Variable),
    /// A constant (interned symbol).
    Const(Symbol),
}

impl Term {
    /// True iff the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// True iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The constant, if any.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }

    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Variable::new(name))
    }

    /// Convenience constructor for a constant term.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::new(name))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A single binary atom `R(s, t)` where the first position is the primary key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation name.
    pub rel: RelName,
    /// The primary-key position.
    pub key: Term,
    /// The non-key position.
    pub value: Term,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelName, key: Term, value: Term) -> Atom {
        Atom { rel, key, value }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.rel, self.key, self.value)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A Boolean path query without constants, represented by its word.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathQuery {
    word: Word,
}

impl PathQuery {
    /// Builds a path query from its word representation.
    ///
    /// # Errors
    /// Returns an error if the word is empty (a Boolean path query must have
    /// at least one atom).
    pub fn new(word: Word) -> Result<PathQuery, CoreError> {
        if word.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        Ok(PathQuery { word })
    }

    /// Parses a path query from single-character relation names, e.g. `"RXRY"`.
    pub fn parse(s: &str) -> Result<PathQuery, CoreError> {
        PathQuery::new(Word::from_letters(s))
    }

    /// Parses a path query from whitespace-separated relation names.
    pub fn parse_names(s: &str) -> Result<PathQuery, CoreError> {
        PathQuery::new(Word::from_names(s))
    }

    /// The word representation `R1 R2 … Rk`.
    pub fn word(&self) -> &Word {
        &self.word
    }

    /// The number of atoms `k`.
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// Always false: path queries have at least one atom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True iff some relation name occurs more than once.
    pub fn has_self_join(&self) -> bool {
        !self.word.is_self_join_free()
    }

    /// The atoms `R1(x1,x2), …, Rk(xk,xk+1)` with canonical variables.
    pub fn atoms(&self) -> Vec<Atom> {
        self.word
            .iter()
            .enumerate()
            .map(|(i, rel)| {
                Atom::new(
                    rel,
                    Term::Var(Variable::numbered(i + 1)),
                    Term::Var(Variable::numbered(i + 2)),
                )
            })
            .collect()
    }

    /// The set of variables of the query.
    pub fn vars(&self) -> BTreeSet<Variable> {
        (1..=self.len() + 1).map(Variable::numbered).collect()
    }

    /// The query `q[c]` of Definition 12: the first variable is replaced by
    /// the constant `c`.
    pub fn rooted_at(&self, c: Symbol) -> GeneralizedPathQuery {
        let terms: Vec<Term> = std::iter::once(Term::Const(c))
            .chain((2..=self.len() + 1).map(|i| Term::Var(Variable::numbered(i))))
            .collect();
        GeneralizedPathQuery::from_parts(self.word.clone(), terms)
            .expect("rooting a path query at a constant is always well-formed")
    }

    /// The generalized path query `[[q, c]]` of Definition 17: the last
    /// variable is replaced by the constant `c`.
    pub fn ending_at(&self, c: Symbol) -> GeneralizedPathQuery {
        let terms: Vec<Term> = (1..=self.len())
            .map(|i| Term::Var(Variable::numbered(i)))
            .chain(std::iter::once(Term::Const(c)))
            .collect();
        GeneralizedPathQuery::from_parts(self.word.clone(), terms)
            .expect("capping a path query with a constant is always well-formed")
    }

    /// Converts into a constant-free generalized path query (`[[q, ⊤]]`).
    pub fn to_generalized(&self) -> GeneralizedPathQuery {
        let terms: Vec<Term> = (1..=self.len() + 1)
            .map(|i| Term::Var(Variable::numbered(i)))
            .collect();
        GeneralizedPathQuery::from_parts(self.word.clone(), terms)
            .expect("a path query is a well-formed generalized path query")
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.word)
    }
}

impl fmt::Debug for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathQuery({})", self.word)
    }
}

/// Either the distinguished symbol `⊤` or a constant; the second component of
/// the pair `[[p, γ]]` of Definition 17.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cap {
    /// The distinguished symbol `⊤` (the query ends in a variable).
    Top,
    /// The query ends in this constant.
    Const(Symbol),
}

impl fmt::Display for Cap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cap::Top => f.write_str("⊤"),
            Cap::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A generalized path query (Definition 16): terms may be constants, every
/// term is distinct, and every constant occurs at most twice — at a non-key
/// position and the immediately following key position.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct GeneralizedPathQuery {
    rels: Word,
    /// `terms.len() == rels.len() + 1`.
    terms: Vec<Term>,
}

impl GeneralizedPathQuery {
    /// Builds a generalized path query from its relation-name word and its
    /// `k + 1` terms, validating Definition 16.
    pub fn from_parts(rels: Word, terms: Vec<Term>) -> Result<GeneralizedPathQuery, CoreError> {
        if rels.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        if terms.len() != rels.len() + 1 {
            return Err(CoreError::MalformedQuery(format!(
                "expected {} terms, got {}",
                rels.len() + 1,
                terms.len()
            )));
        }
        // All terms distinct.
        let distinct: BTreeSet<&Term> = terms.iter().collect();
        if distinct.len() != terms.len() {
            return Err(CoreError::MalformedQuery(
                "terms of a generalized path query must be pairwise distinct".into(),
            ));
        }
        Ok(GeneralizedPathQuery { rels, terms })
    }

    /// Builds a generalized path query from a sequence of atoms that must
    /// chain (the value term of each atom equals the key term of the next).
    pub fn from_atoms(atoms: &[Atom]) -> Result<GeneralizedPathQuery, CoreError> {
        if atoms.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        let mut terms = vec![atoms[0].key];
        for pair in atoms.windows(2) {
            if pair[0].value != pair[1].key {
                return Err(CoreError::MalformedQuery(format!(
                    "atoms do not chain: {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        terms.extend(atoms.iter().map(|a| a.value));
        let rels = atoms.iter().map(|a| a.rel).collect();
        GeneralizedPathQuery::from_parts(rels, terms)
    }

    /// The word of relation names.
    pub fn word(&self) -> &Word {
        &self.rels
    }

    /// The terms `s1, …, sk+1`.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> Vec<Atom> {
        (0..self.len())
            .map(|i| Atom::new(self.rels[i], self.terms[i], self.terms[i + 1]))
            .collect()
    }

    /// True iff the query contains at least one constant.
    pub fn has_constants(&self) -> bool {
        self.terms.iter().any(Term::is_const)
    }

    /// True iff the query contains no constant, in which case it is an
    /// ordinary path query.
    pub fn is_constant_free(&self) -> bool {
        !self.has_constants()
    }

    /// Converts to a plain [`PathQuery`] if the query is constant-free.
    pub fn as_path_query(&self) -> Option<PathQuery> {
        self.is_constant_free()
            .then(|| PathQuery::new(self.rels.clone()).expect("nonempty by construction"))
    }

    /// The *characteristic prefix* `char(q)` of Definition 16: the longest
    /// prefix `{R1(s1,s2), …, Rℓ(sℓ,sℓ+1)}` such that no constant occurs among
    /// `s1, …, sℓ` (but `sℓ+1` may be a constant). Returns the prefix as a
    /// `(word, cap)` pair `[[p, γ]]` (Definition 17) together with its length.
    ///
    /// If the query starts with a constant, the characteristic prefix is
    /// empty and `None` is returned.
    pub fn characteristic_prefix(&self) -> Option<(Word, Cap)> {
        if self.terms[0].is_const() {
            return None;
        }
        let mut l = 0;
        while l < self.len() && self.terms[l].is_var() {
            l += 1;
        }
        // The prefix has ℓ = l atoms; s_{l+1} = terms[l] may be a constant.
        let word = self.rels.prefix(l);
        let cap = match self.terms[l] {
            Term::Const(c) => Cap::Const(c),
            Term::Var(_) => Cap::Top,
        };
        Some((word, cap))
    }

    /// The number of atoms of the characteristic prefix (0 if the query
    /// starts with a constant).
    pub fn characteristic_prefix_len(&self) -> usize {
        if self.terms[0].is_const() {
            return 0;
        }
        let mut l = 0;
        while l < self.len() && self.terms[l].is_var() {
            l += 1;
        }
        l
    }

    /// The remainder `q \ char(q)` as a generalized path query (or `None` if
    /// the characteristic prefix is the whole query).
    pub fn remainder_after_characteristic_prefix(&self) -> Option<GeneralizedPathQuery> {
        let l = self.characteristic_prefix_len();
        if l == self.len() {
            return None;
        }
        let rels = self.rels.suffix_from(l);
        let terms = self.terms[l..].to_vec();
        Some(
            GeneralizedPathQuery::from_parts(rels, terms)
                .expect("the remainder of a well-formed query is well-formed"),
        )
    }

    /// The *extended query* `ext(q)` of Definition 22, together with the
    /// fresh relation name used (if any).
    ///
    /// * If `q` contains no constant, `ext(q) = q` (as a word) and no fresh
    ///   relation is introduced.
    /// * Otherwise `char(q) = [[p, c]]` and
    ///   `ext(q) = p · N` for a fresh relation name `N`.
    pub fn extended_query(&self, fresh_rel: RelName) -> (Word, Option<RelName>) {
        match self.characteristic_prefix() {
            None => (Word::empty(), Some(fresh_rel)),
            Some((p, Cap::Top)) => (p, None),
            Some((p, Cap::Const(_))) => {
                let mut w = p;
                w.push(fresh_rel);
                (w, Some(fresh_rel))
            }
        }
    }

    /// Splits the query at every constant occurring in a key position,
    /// yielding the maximal constant-rooted segments used by Lemma 27.
    ///
    /// Each segment is returned as `(start_constant, word, end_cap)` where
    /// `end_cap` is `Cap::Const(c)` if the segment ends at a constant and
    /// `Cap::Top` otherwise. Only the part of the query *after* the
    /// characteristic prefix is segmented (the characteristic prefix itself
    /// has no constant key positions).
    pub fn constant_rooted_segments(&self) -> Vec<(Symbol, Word, Cap)> {
        let mut segments = Vec::new();
        let l = self.characteristic_prefix_len();
        let mut i = l;
        while i < self.len() {
            let start = match self.terms[i] {
                Term::Const(c) => c,
                Term::Var(_) => {
                    // Cannot happen for well-formed queries: after the
                    // characteristic prefix, every key position is a constant
                    // or follows a constant chain; defensively skip.
                    i += 1;
                    continue;
                }
            };
            let mut j = i;
            while j < self.len() && (j == i || self.terms[j].is_var()) {
                j += 1;
            }
            let word = self.rels.slice(i, j);
            let cap = match self.terms[j] {
                Term::Const(c) => Cap::Const(c),
                Term::Var(_) => Cap::Top,
            };
            segments.push((start, word, cap));
            i = j;
        }
        segments
    }
}

impl fmt::Display for GeneralizedPathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atoms = self.atoms();
        let mut first = true;
        for a in atoms {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for GeneralizedPathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GeneralizedPathQuery({self})")
    }
}

impl From<PathQuery> for GeneralizedPathQuery {
    fn from(q: PathQuery) -> GeneralizedPathQuery {
        q.to_generalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_query_round_trips_through_word() {
        let q = PathQuery::parse("RXRY").unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.word(), &Word::from_letters("RXRY"));
        assert!(q.has_self_join());
        assert!(!PathQuery::parse("RXY").unwrap().has_self_join());
    }

    #[test]
    fn empty_query_is_rejected() {
        assert!(PathQuery::parse("").is_err());
    }

    #[test]
    fn atoms_chain_canonical_variables() {
        let q = PathQuery::parse("RS").unwrap();
        let atoms = q.atoms();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].value, atoms[1].key);
        assert_eq!(atoms[0].to_string(), "R(x1, x2)");
        assert_eq!(atoms[1].to_string(), "S(x2, x3)");
    }

    #[test]
    fn rooted_at_replaces_first_variable() {
        let q = PathQuery::parse("RS").unwrap();
        let rooted = q.rooted_at(Symbol::new("c"));
        assert_eq!(rooted.terms()[0], Term::constant("c"));
        assert!(rooted.terms()[1].is_var());
        assert_eq!(rooted.characteristic_prefix_len(), 0);
    }

    #[test]
    fn ending_at_replaces_last_variable() {
        let q = PathQuery::parse("RS").unwrap();
        let capped = q.ending_at(Symbol::new("c"));
        assert_eq!(capped.terms()[2], Term::constant("c"));
        let (word, cap) = capped.characteristic_prefix().unwrap();
        assert_eq!(word, Word::from_letters("RS"));
        assert_eq!(cap, Cap::Const(Symbol::new("c")));
    }

    #[test]
    fn example_8_characteristic_prefix() {
        // q = {R(x,y), S(y,0), T(0,1), R(1,w)}; char(q) = {R(x,y), S(y,0)}.
        let atoms = vec![
            Atom::new(RelName::new("R"), Term::var("x"), Term::var("y")),
            Atom::new(RelName::new("S"), Term::var("y"), Term::constant("0")),
            Atom::new(RelName::new("T"), Term::constant("0"), Term::constant("1")),
            Atom::new(RelName::new("R"), Term::constant("1"), Term::var("w")),
        ];
        let q = GeneralizedPathQuery::from_atoms(&atoms).unwrap();
        assert!(q.has_constants());
        let (word, cap) = q.characteristic_prefix().unwrap();
        assert_eq!(word, Word::from_letters("RS"));
        assert_eq!(cap, Cap::Const(Symbol::new("0")));
        assert_eq!(q.characteristic_prefix_len(), 2);

        let remainder = q.remainder_after_characteristic_prefix().unwrap();
        assert_eq!(remainder.word(), &Word::from_letters("TR"));
        assert_eq!(remainder.terms()[0], Term::constant("0"));

        // ext(q) = R S N for a fresh relation name N (Example 10).
        let n = RelName::new("N");
        let (ext, fresh) = q.extended_query(n);
        assert_eq!(ext, Word::from_letters("RSN"));
        assert_eq!(fresh, Some(n));
    }

    #[test]
    fn constant_free_query_has_top_cap_and_no_fresh_relation() {
        let q = PathQuery::parse("RXR").unwrap().to_generalized();
        let (word, cap) = q.characteristic_prefix().unwrap();
        assert_eq!(word, Word::from_letters("RXR"));
        assert_eq!(cap, Cap::Top);
        let (ext, fresh) = q.extended_query(RelName::new("N"));
        assert_eq!(ext, Word::from_letters("RXR"));
        assert_eq!(fresh, None);
        assert!(q.as_path_query().is_some());
    }

    #[test]
    fn atoms_must_chain() {
        let atoms = vec![
            Atom::new(RelName::new("R"), Term::var("x"), Term::var("y")),
            Atom::new(RelName::new("S"), Term::var("z"), Term::var("w")),
        ];
        assert!(GeneralizedPathQuery::from_atoms(&atoms).is_err());
    }

    #[test]
    fn duplicate_terms_are_rejected() {
        // R(x,y), S(y,x) is not a path query (terms must be distinct).
        let atoms = vec![
            Atom::new(RelName::new("R"), Term::var("x"), Term::var("y")),
            Atom::new(RelName::new("S"), Term::var("y"), Term::var("x")),
        ];
        assert!(GeneralizedPathQuery::from_atoms(&atoms).is_err());
    }

    #[test]
    fn constant_rooted_segments_follow_lemma_27() {
        // q = {R(x,y), S(y,0), T(0,1), R(1,w)}; segments after char(q):
        // (0, T, Const(1)) and (1, R, Top).
        let atoms = vec![
            Atom::new(RelName::new("R"), Term::var("x"), Term::var("y")),
            Atom::new(RelName::new("S"), Term::var("y"), Term::constant("0")),
            Atom::new(RelName::new("T"), Term::constant("0"), Term::constant("1")),
            Atom::new(RelName::new("R"), Term::constant("1"), Term::var("w")),
        ];
        let q = GeneralizedPathQuery::from_atoms(&atoms).unwrap();
        let segments = q.constant_rooted_segments();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].0, Symbol::new("0"));
        assert_eq!(segments[0].1, Word::from_letters("T"));
        assert_eq!(segments[0].2, Cap::Const(Symbol::new("1")));
        assert_eq!(segments[1].0, Symbol::new("1"));
        assert_eq!(segments[1].1, Word::from_letters("R"));
        assert_eq!(segments[1].2, Cap::Top);
    }

    #[test]
    fn query_starting_with_constant_has_no_characteristic_prefix() {
        let q = PathQuery::parse("RS").unwrap().rooted_at(Symbol::new("c"));
        assert!(q.characteristic_prefix().is_none());
        assert_eq!(q.characteristic_prefix_len(), 0);
        let segments = q.constant_rooted_segments();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, Symbol::new("c"));
        assert_eq!(segments[0].1, Word::from_letters("RS"));
        assert_eq!(segments[0].2, Cap::Top);
    }
}
