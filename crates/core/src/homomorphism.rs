//! Conjunctive-query homomorphisms.
//!
//! Definition 18 of the paper: a homomorphism from a generalized path query
//! `q` to a generalized path query `p` is a substitution `θ` for the
//! variables of `q` (extended to be the identity on constants) such that
//! every atom of `q` is mapped to an atom of `p`. A *prefix homomorphism*
//! additionally maps the first term of `q` to the first term of `p`.
//!
//! The implementation is a generic backtracking search over sets of atoms,
//! so it also serves as a general Boolean-CQ homomorphism test used by the
//! lower-bound reductions (e.g. "there is no homomorphism from `q` to
//! `u R w`" in Lemma 18).

use std::collections::{BTreeMap, BTreeSet};

use crate::query::{Atom, GeneralizedPathQuery, Term, Variable};

/// A substitution from variables to terms of the target query.
pub type Substitution = BTreeMap<Variable, Term>;

/// Attempts to extend the partial substitution so that every atom of `source`
/// maps into the set `target`. Returns a witnessing substitution on success.
fn search(
    source: &[Atom],
    target: &BTreeSet<Atom>,
    mut theta: Substitution,
    index: usize,
) -> Option<Substitution> {
    if index == source.len() {
        return Some(theta);
    }
    let atom = source[index];
    for candidate in target.iter().filter(|t| t.rel == atom.rel) {
        let mut local = theta.clone();
        if unify(atom.key, candidate.key, &mut local)
            && unify(atom.value, candidate.value, &mut local)
        {
            if let Some(found) = search(source, target, local, index + 1) {
                return Some(found);
            }
        }
    }
    // Restore is unnecessary because we cloned; keep the borrow checker happy.
    theta.clear();
    None
}

/// Tries to map the source term onto the target term under `theta`.
fn unify(source: Term, target: Term, theta: &mut Substitution) -> bool {
    match source {
        Term::Const(c) => target == Term::Const(c),
        Term::Var(v) => match theta.get(&v) {
            Some(&mapped) => mapped == target,
            None => {
                theta.insert(v, target);
                true
            }
        },
    }
}

/// Returns a homomorphism from the atoms of `source` to the atoms of
/// `target`, if one exists.
pub fn find_homomorphism(source: &[Atom], target: &[Atom]) -> Option<Substitution> {
    let target_set: BTreeSet<Atom> = target.iter().copied().collect();
    search(source, &target_set, Substitution::new(), 0)
}

/// True iff there is a homomorphism from `source` to `target`
/// (both as generalized path queries, per Definition 18).
pub fn has_homomorphism(source: &GeneralizedPathQuery, target: &GeneralizedPathQuery) -> bool {
    find_homomorphism(&source.atoms(), &target.atoms()).is_some()
}

/// True iff there is a *prefix* homomorphism from `source` to `target`:
/// a homomorphism that maps the first term of `source` to the first term of
/// `target`.
pub fn has_prefix_homomorphism(
    source: &GeneralizedPathQuery,
    target: &GeneralizedPathQuery,
) -> bool {
    let source_atoms = source.atoms();
    let target_atoms = target.atoms();
    let target_set: BTreeSet<Atom> = target_atoms.iter().copied().collect();
    let first_source = source.terms()[0];
    let first_target = target.terms()[0];
    let mut theta = Substitution::new();
    if !unify(first_source, first_target, &mut theta) {
        return false;
    }
    search(&source_atoms, &target_set, theta, 0).is_some()
}

/// True iff there is a homomorphism between two arbitrary atom sets
/// (Boolean conjunctive queries over binary relations).
pub fn cq_homomorphism_exists(source: &[Atom], target: &[Atom]) -> bool {
    find_homomorphism(source, target).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PathQuery;
    use crate::symbol::{RelName, Symbol};
    use crate::word::Word;

    fn gpq(word: &str) -> GeneralizedPathQuery {
        PathQuery::parse(word).unwrap().to_generalized()
    }

    fn gpq_capped(word: &str, c: &str) -> GeneralizedPathQuery {
        PathQuery::parse(word).unwrap().ending_at(Symbol::new(c))
    }

    #[test]
    fn constant_free_homomorphism_is_factor_containment() {
        // q = RXRY maps into RXRXRY (it is a factor), but not into RXRX.
        assert!(has_homomorphism(&gpq("RXRY"), &gpq("RXRXRY")));
        assert!(!has_homomorphism(&gpq("RXRY"), &gpq("RXRX")));
    }

    #[test]
    fn constant_free_prefix_homomorphism_is_prefix_containment() {
        assert!(has_prefix_homomorphism(&gpq("RXRX"), &gpq("RXRXRX")));
        assert!(!has_prefix_homomorphism(&gpq("RXRY"), &gpq("RXRXRY")));
        // ... even though a (non-prefix) homomorphism exists.
        assert!(has_homomorphism(&gpq("RXRY"), &gpq("RXRXRY")));
    }

    #[test]
    fn example_9_from_the_paper() {
        // q with char(q) = [[RR, 1]] and p = [[RRR, 1]]: there is a
        // homomorphism from char(q) to p but no prefix homomorphism.
        let source = gpq_capped("RR", "1");
        let target = gpq_capped("RRR", "1");
        assert!(has_homomorphism(&source, &target));
        assert!(!has_prefix_homomorphism(&source, &target));
    }

    #[test]
    fn capped_homomorphism_requires_suffix_alignment() {
        // [[RX, c]] maps into [[RXRX, c]] only at the end (suffix), which is
        // possible; [[XR, c]] does not map into [[RXRX, c]] because the word
        // does not end with XR... it does (R X R X ends with RX not XR).
        assert!(has_homomorphism(
            &gpq_capped("RX", "c"),
            &gpq_capped("RXRX", "c")
        ));
        assert!(!has_homomorphism(
            &gpq_capped("XR", "c"),
            &gpq_capped("RXRX", "c")
        ));
    }

    #[test]
    fn self_join_in_source_can_fold_onto_target() {
        // q1 = R(x,y), R(y,x) has a homomorphism onto the single fact-shaped
        // atom set {R(a,a)} (both atoms map to it).
        let a = Symbol::new("a");
        let fold_target = vec![Atom::new(RelName::new("R"), Term::Const(a), Term::Const(a))];
        let x = Term::var("x");
        let y = Term::var("y");
        let source = vec![
            Atom::new(RelName::new("R"), x, y),
            Atom::new(RelName::new("R"), y, x),
        ];
        assert!(cq_homomorphism_exists(&source, &fold_target));
    }

    #[test]
    fn no_homomorphism_when_relation_missing() {
        let source = gpq("RS");
        let target = gpq("RT");
        assert!(!has_homomorphism(&source, &target));
    }

    #[test]
    fn witness_substitution_maps_atoms_into_target() {
        let source = gpq("RX");
        let target = gpq("YRXZ");
        let theta = find_homomorphism(&source.atoms(), &target.atoms()).unwrap();
        for atom in source.atoms() {
            let mapped_key = match atom.key {
                Term::Var(v) => theta[&v],
                c => c,
            };
            let mapped_value = match atom.value {
                Term::Var(v) => theta[&v],
                c => c,
            };
            assert!(target
                .atoms()
                .contains(&Atom::new(atom.rel, mapped_key, mapped_value)));
        }
    }

    #[test]
    fn empty_source_always_maps() {
        assert!(cq_homomorphism_exists(&[], &gpq("R").atoms()));
    }

    #[test]
    fn constants_must_map_to_themselves() {
        let source = PathQuery::parse("R").unwrap().rooted_at(Symbol::new("a"));
        let target_same = PathQuery::parse("R").unwrap().rooted_at(Symbol::new("a"));
        let target_other = PathQuery::parse("R").unwrap().rooted_at(Symbol::new("b"));
        assert!(has_homomorphism(&source, &target_same));
        assert!(!has_homomorphism(&source, &target_other));
    }

    #[test]
    fn longer_word_cannot_map_into_shorter_path() {
        // A path query with k atoms cannot map into a simple path with fewer
        // atoms unless letters repeat in the target; with distinct variables
        // in the target there is no folding possible beyond factor matching.
        assert!(!has_homomorphism(&gpq("RRR"), &gpq("RR")));
        let _ = Word::from_letters("RR");
    }
}
