//! The conditions D1, D2, D3 for generalized path queries (Section 8).
//!
//! For a generalized path query `q` with characteristic prefix
//! `char(q) = [[p, γ]]` (where `γ` is a constant or the distinguished symbol
//! `⊤`), and for every decomposition `p = u R v R w`:
//!
//! * **D1**: there is a *prefix homomorphism* from `char(q)` to
//!   `[[u R v R v R w, γ]]`;
//! * **D2**: there is a homomorphism from `char(q)` to `[[u R v R v R w, γ]]`;
//!   and whenever `p = u R v1 R v2 R w` for consecutive occurrences of `R`,
//!   `v1 = v2` or there is a prefix homomorphism from `[[R w, γ]]` to
//!   `[[R v1, γ]]`;
//! * **D3**: there is a homomorphism from `char(q)` to `[[u R v R v R w, γ]]`.
//!
//! When `γ = ⊤` these conditions degenerate to C1, C2, C3.

use crate::conditions::{satisfies_c1, satisfies_c2, satisfies_c3};
use crate::homomorphism::{has_homomorphism, has_prefix_homomorphism};
use crate::query::{Cap, GeneralizedPathQuery, PathQuery};
use crate::symbol::Symbol;
use crate::word::Word;

/// Builds the generalized path query `[[word, cap]]` of Definition 17.
/// Returns `None` if the word is empty (only possible for degenerate
/// characteristic prefixes, which the callers handle separately).
pub fn capped_query(word: &Word, cap: Cap) -> Option<GeneralizedPathQuery> {
    let q = PathQuery::new(word.clone()).ok()?;
    Some(match cap {
        Cap::Top => q.to_generalized(),
        Cap::Const(c) => q.ending_at(c),
    })
}

fn char_of(q: &GeneralizedPathQuery) -> Option<(Word, Cap)> {
    q.characteristic_prefix()
}

/// True iff the generalized path query satisfies condition **D1**.
pub fn satisfies_d1(q: &GeneralizedPathQuery) -> bool {
    let Some((p, cap)) = char_of(q) else {
        // char(q) is empty: the query starts with a constant; CERTAINTY(q)
        // is in FO (Lemma 27), so it behaves like a D1 query.
        return true;
    };
    if p.is_empty() {
        return true;
    }
    match cap {
        Cap::Top => satisfies_c1(&p),
        Cap::Const(_) => {
            let Some(source) = capped_query(&p, cap) else {
                return true;
            };
            p.repeated_letter_pairs().into_iter().all(|(i, j)| {
                let rewound = p.rewind_at(i, j);
                match capped_query(&rewound, cap) {
                    Some(target) => has_prefix_homomorphism(&source, &target),
                    None => true,
                }
            })
        }
    }
}

/// True iff the generalized path query satisfies condition **D3**.
pub fn satisfies_d3(q: &GeneralizedPathQuery) -> bool {
    let Some((p, cap)) = char_of(q) else {
        return true;
    };
    if p.is_empty() {
        return true;
    }
    match cap {
        Cap::Top => satisfies_c3(&p),
        Cap::Const(_) => {
            let Some(source) = capped_query(&p, cap) else {
                return true;
            };
            p.repeated_letter_pairs().into_iter().all(|(i, j)| {
                let rewound = p.rewind_at(i, j);
                match capped_query(&rewound, cap) {
                    Some(target) => has_homomorphism(&source, &target),
                    None => true,
                }
            })
        }
    }
}

/// True iff the generalized path query satisfies condition **D2**.
pub fn satisfies_d2(q: &GeneralizedPathQuery) -> bool {
    let Some((p, cap)) = char_of(q) else {
        return true;
    };
    if p.is_empty() {
        return true;
    }
    match cap {
        Cap::Top => satisfies_c2(&p),
        Cap::Const(_) => {
            if !satisfies_d3(q) {
                return false;
            }
            // Second clause: p = u R v1 R v2 R w for consecutive occurrences.
            p.consecutive_triples().into_iter().all(|(i, j, k)| {
                let v1 = p.slice(i + 1, j);
                let v2 = p.slice(j + 1, k);
                if v1 == v2 {
                    return true;
                }
                // Prefix homomorphism from [[R w, γ]] to [[R v1, γ]].
                let rw = p.suffix_from(k);
                let rv1 = p.slice(i, j);
                match (capped_query(&rw, cap), capped_query(&rv1, cap)) {
                    (Some(source), Some(target)) => has_prefix_homomorphism(&source, &target),
                    _ => false,
                }
            })
        }
    }
}

/// Report of the D conditions for a generalized path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneralizedConditionReport {
    /// Condition D1 (FO upper bound).
    pub d1: bool,
    /// Condition D2 (NL upper bound).
    pub d2: bool,
    /// Condition D3 (PTIME upper bound).
    pub d3: bool,
}

/// Evaluates D1, D2 and D3.
pub fn generalized_conditions(q: &GeneralizedPathQuery) -> GeneralizedConditionReport {
    GeneralizedConditionReport {
        d1: satisfies_d1(q),
        d2: satisfies_d2(q),
        d3: satisfies_d3(q),
    }
}

/// Lemma 30/31 helper: the word of `ext(q)` for a given fresh relation name,
/// but with the guarantee that the fresh name does not clash with the
/// relation names of the query.
pub fn fresh_relation_for(q: &GeneralizedPathQuery) -> crate::symbol::RelName {
    let used = q.word().symbols();
    let mut i = 0usize;
    loop {
        let candidate = crate::symbol::RelName::new(&format!("__ext_N{i}"));
        if !used.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

/// Convenience: evaluates D-conditions for `[[q, c]]`, the path query `q`
/// capped with the constant `c`.
pub fn conditions_for_capped(q: &PathQuery, c: Symbol) -> GeneralizedConditionReport {
    generalized_conditions(&q.ending_at(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, Term};
    use crate::symbol::RelName;

    fn capped(word: &str, c: &str) -> GeneralizedPathQuery {
        PathQuery::parse(word).unwrap().ending_at(Symbol::new(c))
    }

    fn plain(word: &str) -> GeneralizedPathQuery {
        PathQuery::parse(word).unwrap().to_generalized()
    }

    #[test]
    fn constant_free_queries_degenerate_to_c_conditions() {
        for (word, c1, c2, c3) in [
            ("RXRX", true, true, true),
            ("RXRY", false, true, true),
            ("RXRYRY", false, false, true),
            ("RXRXRYRY", false, false, false),
        ] {
            let rep = generalized_conditions(&plain(word));
            assert_eq!(rep.d1, c1, "D1 mismatch for {word}");
            assert_eq!(rep.d2, c2, "D2 mismatch for {word}");
            assert_eq!(rep.d3, c3, "D3 mismatch for {word}");
        }
    }

    #[test]
    fn capped_rr_with_constant_violates_d1() {
        // char(q) = [[RR, c]]. Rewinding RR gives RRR; a homomorphism from
        // [[RR, c]] to [[RRR, c]] exists (map onto the suffix), but no prefix
        // homomorphism (Example 9). So D3 holds but D1 fails.
        let q = capped("RR", "c");
        assert!(!satisfies_d1(&q));
        assert!(satisfies_d3(&q));
    }

    #[test]
    fn capped_self_join_free_query_satisfies_all_d_conditions() {
        let q = capped("RS", "c");
        let rep = generalized_conditions(&q);
        assert!(rep.d1 && rep.d2 && rep.d3);
    }

    #[test]
    fn lemma_30_d3_with_constant_implies_d2() {
        // For queries with at least one constant, D3 implies D2 (Lemma 30).
        // Check on a catalogue of capped words.
        let alphabet = [RelName::new("R"), RelName::new("S")];
        for word in crate::word::all_words(&alphabet, 5) {
            let q = match PathQuery::new(word.clone()) {
                Ok(q) => q.ending_at(Symbol::new("c")),
                Err(_) => continue,
            };
            if satisfies_d3(&q) {
                assert!(
                    satisfies_d2(&q),
                    "Lemma 30 (D3 ⇒ D2 with constants) fails for [[{word}, c]]"
                );
            }
        }
    }

    #[test]
    fn d_conditions_imply_weaker_ones() {
        let alphabet = [RelName::new("R"), RelName::new("S")];
        for word in crate::word::all_words(&alphabet, 5) {
            for cap in [None, Some("c")] {
                let q = match PathQuery::new(word.clone()) {
                    Ok(q) => match cap {
                        None => q.to_generalized(),
                        Some(c) => q.ending_at(Symbol::new(c)),
                    },
                    Err(_) => continue,
                };
                let rep = generalized_conditions(&q);
                if rep.d1 {
                    assert!(rep.d2, "D1 ⇒ D2 fails for {q}");
                }
                if rep.d2 {
                    assert!(rep.d3, "D2 ⇒ D3 fails for {q}");
                }
            }
        }
    }

    #[test]
    fn query_with_mid_constants_uses_only_its_characteristic_prefix() {
        // q = {R(x,y), R(y,0), S(0,z)}: char(q) = [[RR, 0]], so the D
        // conditions are those of [[RR, 0]] regardless of the tail.
        let atoms = vec![
            Atom::new(RelName::new("R"), Term::var("x"), Term::var("y")),
            Atom::new(RelName::new("R"), Term::var("y"), Term::constant("0")),
            Atom::new(RelName::new("S"), Term::constant("0"), Term::var("z")),
        ];
        let q = GeneralizedPathQuery::from_atoms(&atoms).unwrap();
        let direct = generalized_conditions(&q);
        let char_only = generalized_conditions(&capped("RR", "0"));
        assert_eq!(direct, char_only);
    }

    #[test]
    fn query_starting_with_constant_is_fo() {
        let q = PathQuery::parse("RRRR")
            .unwrap()
            .rooted_at(Symbol::new("c"));
        let rep = generalized_conditions(&q);
        assert!(rep.d1 && rep.d2 && rep.d3);
    }

    #[test]
    fn fresh_relation_does_not_clash() {
        let q = plain("RXRY");
        let n = fresh_relation_for(&q);
        assert!(!q.word().symbols().contains(&n));
    }
}
