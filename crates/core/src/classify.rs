//! The complexity classification of `CERTAINTY(q)` (Theorems 2, 3, 4, 5).

use std::fmt;

use crate::conditions::{conditions, ConditionReport};
use crate::generalized::{generalized_conditions, GeneralizedConditionReport};
use crate::query::{GeneralizedPathQuery, PathQuery};

/// The four complexity classes of the tetrachotomy (Theorem 2).
///
/// The ordering reflects inclusion of complexity classes:
/// `FO ⊆ NL ⊆ PTIME ⊆ coNP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComplexityClass {
    /// `CERTAINTY(q)` is expressible in first-order logic (a consistent
    /// first-order rewriting exists).
    FO,
    /// `CERTAINTY(q)` is NL-complete.
    NlComplete,
    /// `CERTAINTY(q)` is PTIME-complete.
    PtimeComplete,
    /// `CERTAINTY(q)` is coNP-complete.
    CoNpComplete,
}

impl ComplexityClass {
    /// A short human-readable name, matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            ComplexityClass::FO => "FO",
            ComplexityClass::NlComplete => "NL-complete",
            ComplexityClass::PtimeComplete => "PTIME-complete",
            ComplexityClass::CoNpComplete => "coNP-complete",
        }
    }

    /// True iff `CERTAINTY(q)` is solvable in polynomial time for this class
    /// (i.e. anything below coNP-complete, assuming PTIME ≠ NP).
    pub fn is_tractable(&self) -> bool {
        !matches!(self, ComplexityClass::CoNpComplete)
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of classifying a path query: the complexity class together
/// with the syntactic conditions that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The complexity class of `CERTAINTY(q)`.
    pub class: ComplexityClass,
    /// Whether the query satisfies C1 (respectively D1).
    pub c1: bool,
    /// Whether the query satisfies C2 (respectively D2).
    pub c2: bool,
    /// Whether the query satisfies C3 (respectively D3).
    pub c3: bool,
}

impl From<ConditionReport> for Classification {
    fn from(rep: ConditionReport) -> Classification {
        Classification {
            class: class_from_flags(rep.c1, rep.c2, rep.c3),
            c1: rep.c1,
            c2: rep.c2,
            c3: rep.c3,
        }
    }
}

impl From<GeneralizedConditionReport> for Classification {
    fn from(rep: GeneralizedConditionReport) -> Classification {
        Classification {
            class: class_from_flags(rep.d1, rep.d2, rep.d3),
            c1: rep.d1,
            c2: rep.d2,
            c3: rep.d3,
        }
    }
}

fn class_from_flags(c1: bool, c2: bool, c3: bool) -> ComplexityClass {
    if c1 {
        ComplexityClass::FO
    } else if c2 {
        ComplexityClass::NlComplete
    } else if c3 {
        ComplexityClass::PtimeComplete
    } else {
        ComplexityClass::CoNpComplete
    }
}

/// Classifies a constant-free path query according to Theorem 3.
pub fn classify(q: &PathQuery) -> Classification {
    conditions(q.word()).into()
}

/// Classifies a generalized path query according to Theorem 4.
pub fn classify_generalized(q: &GeneralizedPathQuery) -> Classification {
    generalized_conditions(q).into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn q(word: &str) -> PathQuery {
        PathQuery::parse(word).unwrap()
    }

    #[test]
    fn example_3_tetrachotomy() {
        assert_eq!(classify(&q("RXRX")).class, ComplexityClass::FO);
        assert_eq!(classify(&q("RXRY")).class, ComplexityClass::NlComplete);
        assert_eq!(classify(&q("RXRYRY")).class, ComplexityClass::PtimeComplete);
        assert_eq!(
            classify(&q("RXRXRYRY")).class,
            ComplexityClass::CoNpComplete
        );
    }

    #[test]
    fn introduction_examples() {
        // q1 = RR is in FO (Section 1).
        assert_eq!(classify(&q("RR")).class, ComplexityClass::FO);
        // q2 = RRX is NL-complete or better; the paper's discussion places
        // its certain-answer test in NL (it satisfies C2 but not C1).
        assert_eq!(classify(&q("RRX")).class, ComplexityClass::NlComplete);
        // q3 = ARRX is coNP-complete (Figure 3 discussion).
        assert_eq!(classify(&q("ARRX")).class, ComplexityClass::CoNpComplete);
    }

    #[test]
    fn self_join_free_path_queries_are_fo() {
        for word in ["R", "RS", "RST", "ABCDEFG"] {
            assert_eq!(classify(&q(word)).class, ComplexityClass::FO, "{word}");
        }
    }

    #[test]
    fn lemma_3_boundary_words_are_ptime_complete() {
        assert_eq!(classify(&q("RRSRS")).class, ComplexityClass::PtimeComplete);
        assert_eq!(classify(&q("RSRRR")).class, ComplexityClass::PtimeComplete);
    }

    #[test]
    fn generalized_classification_trichotomy_with_constants() {
        // Theorem 5: with at least one constant, PTIME-complete cannot occur.
        let alphabet = [
            crate::symbol::RelName::new("R"),
            crate::symbol::RelName::new("S"),
        ];
        for word in crate::word::all_words(&alphabet, 5) {
            let Ok(path) = PathQuery::new(word.clone()) else {
                continue;
            };
            let capped = path.ending_at(Symbol::new("c"));
            let class = classify_generalized(&capped).class;
            assert_ne!(
                class,
                ComplexityClass::PtimeComplete,
                "Theorem 5 violated for [[{word}, c]]"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ComplexityClass::FO.to_string(), "FO");
        assert_eq!(ComplexityClass::NlComplete.to_string(), "NL-complete");
        assert_eq!(ComplexityClass::PtimeComplete.to_string(), "PTIME-complete");
        assert_eq!(ComplexityClass::CoNpComplete.to_string(), "coNP-complete");
        assert!(ComplexityClass::FO.is_tractable());
        assert!(!ComplexityClass::CoNpComplete.is_tractable());
    }

    #[test]
    fn classification_order_reflects_inclusion() {
        assert!(ComplexityClass::FO < ComplexityClass::NlComplete);
        assert!(ComplexityClass::NlComplete < ComplexityClass::PtimeComplete);
        assert!(ComplexityClass::PtimeComplete < ComplexityClass::CoNpComplete);
    }

    #[test]
    fn classification_exposes_condition_flags() {
        let c = classify(&q("RXRYRY"));
        assert!(!c.c1 && !c.c2 && c.c3);
        let c = classify(&q("RXRX"));
        assert!(c.c1 && c.c2 && c.c3);
    }
}
