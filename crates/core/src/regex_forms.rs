//! The regular-expression forms B1, B2a, B2b, B3 of Definition 1.
//!
//! * **B1**: for some `k ≥ 0` there are words `v, w` with `v·w` self-join-free
//!   such that `q` is a prefix of `w (v)^k`;
//! * **B2a**: for some `j, k ≥ 0` there are `u, v, w` with `u·v·w`
//!   self-join-free such that `q` is a factor of `(u)^j w (v)^k`;
//! * **B2b**: for some `k ≥ 0` there are `u, v, w` with `u·v·w` self-join-free
//!   such that `q` is a factor of `(uv)^k w v`;
//! * **B3**: for some `k ≥ 0` there are `u, v, w` with `u·v·w` self-join-free
//!   such that `q` is a factor of `u w (uv)^k`.
//!
//! Section 4 of the paper proves `C1 = B1`, `C2 = B2a ∪ B2b` and
//! `C3 = B2a ∪ B2b ∪ B3`; these identities are verified by the test-suite.
//!
//! # Implementation
//!
//! The existential quantification over words `u, v, w` ranges over an
//! infinite alphabet, but only the letters of `q` matter: positions of the
//! template `(u)^j w (v)^k` (etc.) that are **not** covered by the occurrence
//! of `q` can always be filled with fresh relation names, so a form holds if
//! and only if there is an assignment of *template slots* to the positions of
//! `q` such that two positions of `q` carry the same letter exactly when they
//! are assigned the same slot (self-join-freeness of `u·v·w` makes distinct
//! slots carry distinct letters). We therefore enumerate the slot structure
//! — the lengths `|u|, |v|, |w|`, the exponents and the offset of `q` inside
//! the template — and check this combinatorial condition, which is
//! polynomial in `|q|` for each fixed shape.

use crate::symbol::RelName;
use crate::word::Word;

/// A fully explicit witness for one of the B-forms: the words `u, v, w`, the
/// exponents, and the offset of `q` inside the template. Fresh relation names
/// are invented for template positions not covered by `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormWitness {
    /// The word `u` (empty for B1).
    pub u: Word,
    /// The word `v`.
    pub v: Word,
    /// The word `w`.
    pub w: Word,
    /// Exponent `j` (only used by B2a; zero otherwise).
    pub j: usize,
    /// Exponent `k`.
    pub k: usize,
    /// Offset of `q` inside the template.
    pub offset: usize,
    /// The full template word in which `q` occurs.
    pub template: Word,
}

/// Identifier of a template slot. Slots are abstract positions of `u`, `v`
/// and `w`; distinct slots must carry distinct relation names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    U(usize),
    V(usize),
    W(usize),
}

/// Checks whether assigning the given slot sequence to the window
/// `q[offset..offset+|q|]`… actually to all of `q` — the slot sequence has
/// length `|q|` — is consistent: equal letters ⟺ equal slots.
fn slots_consistent(q: &Word, slots: &[Slot]) -> bool {
    debug_assert_eq!(q.len(), slots.len());
    for i in 0..q.len() {
        for j in i + 1..q.len() {
            if (q[i] == q[j]) != (slots[i] == slots[j]) {
                return false;
            }
        }
    }
    true
}

/// Builds the slot sequence of the template `(u)^j w (v)^k` where
/// `|u| = a`, `|w| = c`, `|v| = b`.
fn template_b2a(a: usize, j: usize, c: usize, b: usize, k: usize) -> Vec<Slot> {
    let mut t = Vec::with_capacity(a * j + c + b * k);
    for _ in 0..j {
        for s in 0..a {
            t.push(Slot::U(s));
        }
    }
    for s in 0..c {
        t.push(Slot::W(s));
    }
    for _ in 0..k {
        for s in 0..b {
            t.push(Slot::V(s));
        }
    }
    t
}

/// Builds the slot sequence of the template `(uv)^k w v`.
fn template_b2b(a: usize, b: usize, c: usize, k: usize) -> Vec<Slot> {
    let mut t = Vec::with_capacity((a + b) * k + c + b);
    for _ in 0..k {
        for s in 0..a {
            t.push(Slot::U(s));
        }
        for s in 0..b {
            t.push(Slot::V(s));
        }
    }
    for s in 0..c {
        t.push(Slot::W(s));
    }
    for s in 0..b {
        t.push(Slot::V(s));
    }
    t
}

/// Builds the slot sequence of the template `u w (uv)^k`.
fn template_b3(a: usize, b: usize, c: usize, k: usize) -> Vec<Slot> {
    let mut t = Vec::with_capacity(a + c + (a + b) * k);
    for s in 0..a {
        t.push(Slot::U(s));
    }
    for s in 0..c {
        t.push(Slot::W(s));
    }
    for _ in 0..k {
        for s in 0..a {
            t.push(Slot::U(s));
        }
        for s in 0..b {
            t.push(Slot::V(s));
        }
    }
    t
}

/// Builds the slot sequence of the template `w (v)^k` (for B1, where `q` must
/// be a prefix rather than an arbitrary factor).
fn template_b1(b: usize, c: usize, k: usize) -> Vec<Slot> {
    let mut t = Vec::with_capacity(c + b * k);
    for s in 0..c {
        t.push(Slot::W(s));
    }
    for _ in 0..k {
        for s in 0..b {
            t.push(Slot::V(s));
        }
    }
    t
}

/// Extracts a concrete witness from a successful slot assignment: letters of
/// covered slots come from `q`, uncovered slots receive fresh names.
#[allow(clippy::too_many_arguments)] // mirrors the paper's (a, b, c, j, k) template parameters
fn extract_witness(
    q: &Word,
    template: &[Slot],
    offset: usize,
    a: usize,
    b: usize,
    c: usize,
    j: usize,
    k: usize,
) -> FormWitness {
    let mut fresh_counter = 0usize;
    let mut fresh = || {
        fresh_counter += 1;
        RelName::new(&format!("Fresh{fresh_counter}"))
    };
    let mut u_letters: Vec<Option<RelName>> = vec![None; a];
    let mut v_letters: Vec<Option<RelName>> = vec![None; b];
    let mut w_letters: Vec<Option<RelName>> = vec![None; c];
    for (pos, slot) in template.iter().enumerate() {
        if pos >= offset && pos < offset + q.len() {
            let letter = q[pos - offset];
            match *slot {
                Slot::U(s) => u_letters[s] = Some(letter),
                Slot::V(s) => v_letters[s] = Some(letter),
                Slot::W(s) => w_letters[s] = Some(letter),
            }
        }
    }
    let u: Word = u_letters
        .into_iter()
        .map(|o| o.unwrap_or_else(&mut fresh))
        .collect();
    let v: Word = v_letters
        .into_iter()
        .map(|o| o.unwrap_or_else(&mut fresh))
        .collect();
    let w: Word = w_letters
        .into_iter()
        .map(|o| o.unwrap_or_else(&mut fresh))
        .collect();
    // Rebuild the concrete template word from the slot sequence.
    let template_word: Word = template
        .iter()
        .map(|slot| match *slot {
            Slot::U(s) => u[s],
            Slot::V(s) => v[s],
            Slot::W(s) => w[s],
        })
        .collect();
    FormWitness {
        u,
        v,
        w,
        j,
        k,
        offset,
        template: template_word,
    }
}

/// Checks `q` against a slot template at a given offset; returns a witness on
/// success.
#[allow(clippy::too_many_arguments)] // mirrors the paper's (a, b, c, j, k) template parameters
fn check_at(
    q: &Word,
    template: &[Slot],
    offset: usize,
    a: usize,
    b: usize,
    c: usize,
    j: usize,
    k: usize,
) -> Option<FormWitness> {
    if offset + q.len() > template.len() {
        return None;
    }
    let window = &template[offset..offset + q.len()];
    if !slots_consistent(q, window) {
        return None;
    }
    Some(extract_witness(q, template, offset, a, b, c, j, k))
}

fn exponent_cap(n: usize, period: usize) -> usize {
    n.checked_div(period).map_or(1, |d| d + 2)
}

/// Returns a witness that `q` satisfies **B1**, if one exists.
pub fn b1_witness(q: &Word) -> Option<FormWitness> {
    let n = q.len();
    if n == 0 {
        return Some(FormWitness {
            u: Word::empty(),
            v: Word::empty(),
            w: Word::empty(),
            j: 0,
            k: 0,
            offset: 0,
            template: Word::empty(),
        });
    }
    for c in 0..=n {
        for b in 0..=n {
            for k in 0..=exponent_cap(n, b) {
                let template = template_b1(b, c, k);
                if template.len() < n {
                    continue;
                }
                // B1 requires q to be a *prefix* of the template.
                if let Some(wit) = check_at(q, &template, 0, 0, b, c, 0, k) {
                    return Some(wit);
                }
            }
        }
    }
    None
}

/// Returns a witness that `q` satisfies **B2a**, if one exists.
pub fn b2a_witness(q: &Word) -> Option<FormWitness> {
    let n = q.len();
    for a in 0..=n {
        for j in 0..=exponent_cap(n, a) {
            if a == 0 && j > 0 {
                continue;
            }
            for b in 0..=n {
                for k in 0..=exponent_cap(n, b) {
                    if b == 0 && k > 0 {
                        continue;
                    }
                    for c in 0..=n {
                        let template = template_b2a(a, j, c, b, k);
                        if template.len() < n {
                            continue;
                        }
                        for offset in 0..=template.len() - n {
                            if let Some(wit) = check_at(q, &template, offset, a, b, c, j, k) {
                                return Some(wit);
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Returns a witness that `q` satisfies **B2b**, if one exists.
pub fn b2b_witness(q: &Word) -> Option<FormWitness> {
    let n = q.len();
    for a in 0..=n {
        for b in 0..=n {
            for k in 0..=exponent_cap(n, a + b) {
                if a + b == 0 && k > 0 {
                    continue;
                }
                for c in 0..=n {
                    let template = template_b2b(a, b, c, k);
                    if template.len() < n {
                        continue;
                    }
                    for offset in 0..=template.len() - n {
                        if let Some(wit) = check_at(q, &template, offset, a, b, c, 0, k) {
                            return Some(wit);
                        }
                    }
                }
            }
        }
    }
    None
}

/// Returns a witness that `q` satisfies **B3**, if one exists.
pub fn b3_witness(q: &Word) -> Option<FormWitness> {
    let n = q.len();
    for a in 0..=n {
        for b in 0..=n {
            for k in 0..=exponent_cap(n, a + b) {
                if a + b == 0 && k > 0 {
                    continue;
                }
                for c in 0..=n {
                    let template = template_b3(a, b, c, k);
                    if template.len() < n {
                        continue;
                    }
                    for offset in 0..=template.len() - n {
                        if let Some(wit) = check_at(q, &template, offset, a, b, c, 0, k) {
                            return Some(wit);
                        }
                    }
                }
            }
        }
    }
    None
}

/// True iff `q` satisfies B1.
pub fn satisfies_b1(q: &Word) -> bool {
    b1_witness(q).is_some()
}

/// True iff `q` satisfies B2a.
pub fn satisfies_b2a(q: &Word) -> bool {
    b2a_witness(q).is_some()
}

/// True iff `q` satisfies B2b.
pub fn satisfies_b2b(q: &Word) -> bool {
    b2b_witness(q).is_some()
}

/// True iff `q` satisfies B3.
pub fn satisfies_b3(q: &Word) -> bool {
    b3_witness(q).is_some()
}

/// A strict B2b decomposition of `q` itself (not merely of a superword):
/// `q = s (uv)^(k-1) w v` with `u·v·w` self-join-free, `k ≥ 1` and `s` a
/// proper suffix of `uv`. This is the shape used by the NL algorithm of
/// Lemma 14 (and by Lemma 16 for the language of `NFAmin`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B2bDecomposition {
    /// Word `u`.
    pub u: Word,
    /// Word `v`.
    pub v: Word,
    /// Word `w`.
    pub w: Word,
    /// Exponent `k ≥ 1`.
    pub k: usize,
    /// The suffix `s` of `uv` with `q = s (uv)^(k-1) w v`.
    pub s: Word,
}

impl B2bDecomposition {
    /// The word `uv`.
    pub fn uv(&self) -> Word {
        self.u.concat(&self.v)
    }

    /// The word `wv`.
    pub fn wv(&self) -> Word {
        self.w.concat(&self.v)
    }

    /// The word `s (uv)^(k-1)` — the "spine" that a certain path must follow
    /// before the `(uv)^*` loop in the regular language of Lemma 16.
    pub fn spine(&self) -> Word {
        self.s.concat(&self.uv().repeat(self.k - 1))
    }

    /// Reassembles `s (uv)^(k-1) w v`; equals `q` by construction.
    pub fn reassemble(&self) -> Word {
        self.spine().concat(&self.wv())
    }
}

/// Searches for a strict B2b decomposition of `q` (see
/// [`B2bDecomposition`]). Template positions of `u` that are not covered by
/// `q` (possible only in the truncated first copy of `uv`) are filled with
/// fresh relation names.
pub fn b2b_strict_decomposition(q: &Word) -> Option<B2bDecomposition> {
    let n = q.len();
    if n == 0 {
        return None;
    }
    // Prefer small periods |uv| and small k: the generated Datalog program
    // and the reachability structures are smaller.
    let mut best: Option<B2bDecomposition> = None;
    for period in 0..=n {
        for a in 0..=period {
            let b = period - a;
            for k in 1..=exponent_cap(n, period.max(1)) {
                // |q| = |s| + (k-1)(a+b) + c + b with 0 <= |s| < a+b
                // (or a+b == 0, in which case s = ε).
                let fixed = (k - 1) * period + b;
                if fixed > n {
                    continue;
                }
                for c in 0..=n - fixed {
                    let s_len = n - fixed - c;
                    if period > 0 && s_len >= period {
                        continue;
                    }
                    if period == 0 && s_len > 0 {
                        continue;
                    }
                    // Build the template (uv)^k w v and align q so that it
                    // ends exactly at the template's end.
                    let template = template_b2b(a, b, c, k);
                    if template.len() < n {
                        continue;
                    }
                    let offset = template.len() - n;
                    // The offset must fall inside the first copy of uv (the
                    // suffix s starts there).
                    if offset != period.saturating_sub(s_len) && !(period == 0 && offset == 0) {
                        continue;
                    }
                    if let Some(wit) = check_at(q, &template, offset, a, b, c, 0, k) {
                        let s = if s_len == 0 {
                            Word::empty()
                        } else {
                            q.prefix(s_len)
                        };
                        let dec = B2bDecomposition {
                            u: wit.u,
                            v: wit.v,
                            w: wit.w,
                            k,
                            s,
                        };
                        debug_assert_eq!(
                            &dec.reassemble(),
                            q,
                            "strict decomposition must rebuild q"
                        );
                        let better = match &best {
                            None => true,
                            Some(b0) => (dec.uv().len(), dec.k) < (b0.uv().len(), b0.k),
                        };
                        if better {
                            best = Some(dec);
                        }
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{satisfies_c1, satisfies_c2, satisfies_c3};

    fn w(s: &str) -> Word {
        Word::from_letters(s)
    }

    #[test]
    fn b1_examples() {
        // RXRX is a prefix of (RX)^2 with w = ε, v = RX.
        assert!(satisfies_b1(&w("RXRX")));
        // RXRY is not: Lemma 1 says B1 = C1 and RXRY violates C1.
        assert!(!satisfies_b1(&w("RXRY")));
        // RR is a prefix of (R)^2.
        assert!(satisfies_b1(&w("RR")));
    }

    #[test]
    fn b2a_finds_the_rotated_period_for_rxry() {
        // RXRY is a factor of (XR)^2 Y = XRXRY.
        let wit = b2a_witness(&w("RXRY")).expect("RXRY satisfies B2a");
        let template = wit.template.clone();
        assert!(w("RXRY").is_factor_of(&template));
    }

    #[test]
    fn b2b_examples() {
        // RRX = (R)^2 X with u = R, v = ε, w = X: template (uv)^2 w v = RRX.
        assert!(satisfies_b2b(&w("RRX")));
        // The paper's NL example UVUVWV is literally of the form (uv)^2 w v.
        assert!(satisfies_b2b(&w("UVUVWV")));
    }

    #[test]
    fn b3_example() {
        // RXRRR? B3: q factor of u w (uv)^k. Take u = R, w = X, v = ε, k = 3:
        // template = R X R R R = RXRRR.
        assert!(satisfies_b3(&w("RXRRR")));
    }

    #[test]
    fn witnesses_really_contain_q_as_factor() {
        for q in ["RXRY", "RRX", "RXRX", "UVUVWV", "RXRRR", "RRSRS", "RSRRR"] {
            let q = w(q);
            for wit in [b2a_witness(&q), b2b_witness(&q), b3_witness(&q)]
                .into_iter()
                .flatten()
            {
                assert!(
                    q.is_factor_of(&wit.template),
                    "witness template {} does not contain {}",
                    wit.template,
                    q
                );
            }
            if let Some(wit) = b1_witness(&q) {
                assert!(
                    q.is_prefix_of(&wit.template),
                    "B1 witness template {} does not start with {}",
                    wit.template,
                    q
                );
            }
        }
    }

    /// Exhaustively check Lemma 1 (C1 = B1), Lemma 3 (C2 = B2a ∪ B2b) and
    /// Lemma 2 (C3 = B2a ∪ B2b ∪ B3) on all words of length ≤ 4 over a
    /// three-letter alphabet; longer witness words are checked separately.
    #[test]
    fn lemmas_1_2_3_hold_on_small_words() {
        let alphabet = [RelName::new("R"), RelName::new("S"), RelName::new("T")];
        for q in crate::word::all_words(&alphabet, 4) {
            check_lemmas_on(&q);
        }
    }

    /// The same lemma checks on a curated set of longer, structurally
    /// interesting words (including the boundary words of Lemma 3).
    #[test]
    fn lemmas_1_2_3_hold_on_selected_longer_words() {
        for q in [
            "RRSRS", "RSRRR", "RXRXRYRY", "RXRYRY", "RXRRR", "UVUVWV", "RXRXRX", "RRRRR", "RSRSR",
            "SRRSR", "RSSRS", "ABABAB",
        ] {
            check_lemmas_on(&w(q));
        }
    }

    fn check_lemmas_on(q: &Word) {
        let c1 = satisfies_c1(q);
        let c2 = satisfies_c2(q);
        let c3 = satisfies_c3(q);
        let b1 = satisfies_b1(q);
        let b2a = satisfies_b2a(q);
        let b2b = satisfies_b2b(q);
        let b3 = satisfies_b3(q);
        assert_eq!(c1, b1, "Lemma 1 (C1 = B1) fails for {q}");
        assert_eq!(c2, b2a || b2b, "Lemma 3 (C2 = B2a ∪ B2b) fails for {q}");
        assert_eq!(
            c3,
            b2a || b2b || b3,
            "Lemma 2 (C3 = B2a ∪ B2b ∪ B3) fails for {q}"
        );
        // B1 ⊆ B2a ∩ B3 (noted just after Definition 1).
        if b1 {
            assert!(b2a && b3, "B1 ⊆ B2a ∩ B3 fails for {q}");
        }
    }

    #[test]
    fn strict_b2b_decomposition_of_rrx() {
        let dec = b2b_strict_decomposition(&w("RRX")).expect("RRX has a strict B2b form");
        assert_eq!(dec.reassemble(), w("RRX"));
        // uv should be R (period 1) and wv = X. The search normalizes s to a
        // proper suffix of uv, so q = (R)^2 X is reported as k = 3, s = ε
        // rather than k = 2, s = R.
        assert_eq!(dec.uv(), w("R"));
        assert_eq!(dec.wv(), w("X"));
        assert_eq!(dec.k, 3);
        assert_eq!(dec.s, Word::empty());
    }

    #[test]
    fn strict_b2b_decomposition_of_uvuvwv() {
        let dec = b2b_strict_decomposition(&w("UVUVWV")).expect("UVUVWV has a strict B2b form");
        assert_eq!(dec.reassemble(), w("UVUVWV"));
        assert_eq!(dec.uv(), w("UV"));
        assert_eq!(dec.wv(), w("WV"));
        assert_eq!(dec.k, 3);
        assert_eq!(dec.s, Word::empty());
    }

    #[test]
    fn strict_b2b_decomposition_reassembles_for_c2_queries() {
        for q in ["RRX", "RXRX", "UVUVWV", "RR", "RRR", "ABAB"] {
            let q = w(q);
            if satisfies_c2(&q) {
                if let Some(dec) = b2b_strict_decomposition(&q) {
                    assert_eq!(dec.reassemble(), q, "reassembly failed for {q}");
                    assert!(
                        dec.u.concat(&dec.v).concat(&dec.w).is_self_join_free(),
                        "uvw not self-join-free for {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_join_free_words_satisfy_every_form() {
        for q in ["R", "RX", "RXY"] {
            let q = w(q);
            assert!(satisfies_b1(&q));
            assert!(satisfies_b2a(&q));
            assert!(satisfies_b2b(&q));
            assert!(satisfies_b3(&q));
        }
    }
}
