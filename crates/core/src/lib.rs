//! # cqa-core
//!
//! Core types and algorithms for the complexity classification of consistent
//! query answering (CQA) on **path queries** under primary-key constraints,
//! reproducing *"Consistent Query Answering for Primary Keys on Path
//! Queries"* (Koutris, Ouyang, Wijsen; PODS 2021).
//!
//! The crate provides:
//!
//! * interned [`symbol::Symbol`]s and [`symbol::RelName`]s;
//! * [`word::Word`]s over relation names with the *rewinding* operator;
//! * [`query::PathQuery`] and [`query::GeneralizedPathQuery`] (Section 8);
//! * the syntactic conditions [`conditions::satisfies_c1`] /
//!   [`conditions::satisfies_c2`] / [`conditions::satisfies_c3`] and their
//!   generalized variants D1/D2/D3 ([`generalized`]);
//! * the regex forms B1/B2a/B2b/B3 of Section 4 ([`regex_forms`]) together
//!   with explicit witnesses and the strict B2b decomposition used by the NL
//!   algorithm;
//! * conjunctive-query homomorphisms ([`homomorphism`]);
//! * the complexity classification itself ([`classify::classify`],
//!   [`classify::classify_generalized`]), which is polynomial in `|q|`.
//!
//! ```
//! use cqa_core::prelude::*;
//!
//! let q = PathQuery::parse("RXRY").unwrap();
//! assert_eq!(classify(&q).class, ComplexityClass::NlComplete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod conditions;
pub mod error;
pub mod generalized;
pub mod homomorphism;
pub mod parser;
pub mod query;
pub mod regex_forms;
pub mod symbol;
pub mod word;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::classify::{classify, classify_generalized, Classification, ComplexityClass};
    pub use crate::conditions::{
        conditions, satisfies_c1, satisfies_c2, satisfies_c3, ConditionReport,
    };
    pub use crate::error::CoreError;
    pub use crate::generalized::{
        generalized_conditions, satisfies_d1, satisfies_d2, satisfies_d3,
        GeneralizedConditionReport,
    };
    pub use crate::homomorphism::{has_homomorphism, has_prefix_homomorphism};
    pub use crate::parser::parse_query;
    pub use crate::query::{Atom, Cap, GeneralizedPathQuery, PathQuery, Term, Variable};
    pub use crate::regex_forms::{
        b2b_strict_decomposition, satisfies_b1, satisfies_b2a, satisfies_b2b, satisfies_b3,
        B2bDecomposition,
    };
    pub use crate::symbol::{RelName, Symbol};
    pub use crate::word::Word;
}
