//! Error types for the core crate.

use std::fmt;

/// Errors produced while constructing or analysing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A Boolean path query must contain at least one atom.
    EmptyQuery,
    /// The query violates the shape constraints of Definition 16.
    MalformedQuery(String),
    /// A query string could not be parsed.
    ParseError(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyQuery => f.write_str("path queries must contain at least one atom"),
            CoreError::MalformedQuery(msg) => write!(f, "malformed query: {msg}"),
            CoreError::ParseError(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_human_readable_messages() {
        assert!(CoreError::EmptyQuery
            .to_string()
            .contains("at least one atom"));
        assert!(CoreError::MalformedQuery("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::ParseError("y".into()).to_string().contains("y"));
    }
}
