//! Interned symbols.
//!
//! Relation names and constants are represented as small copyable handles
//! into a process-wide string interner. Interning gives `O(1)` equality and
//! hashing, which matters because the classification algorithms and the
//! solvers compare relation names in tight inner loops.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned string.
///
/// Two symbols are equal if and only if their underlying strings are equal.
/// Symbols are cheap to copy, compare and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    strings: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            strings: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.index.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn new(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = interner().read().expect("interner lock poisoned");
            if let Some(&id) = guard.index.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner lock poisoned");
        Symbol(guard.intern(s))
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> &'static str {
        interner()
            .read()
            .expect("interner lock poisoned")
            .resolve(self.0)
    }

    /// Returns the raw interner id. Useful as a dense index in hot code.
    pub fn id(&self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from a raw interner id previously obtained from
    /// [`Symbol::id`] in this process. Columnar execution kernels store bare
    /// ids and reconstitute symbols on output without touching the interner.
    ///
    /// Passing an id that never came from `id()` yields a symbol whose
    /// `as_str` panics; no such value can be constructed from stored data.
    pub fn from_id(id: u32) -> Symbol {
        Symbol(id)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

/// The name of a binary relation (e.g. `R`, `S`, `Follows`).
///
/// The first position of every relation is its primary key, as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelName(pub Symbol);

impl RelName {
    /// Interns a relation name.
    pub fn new(s: &str) -> RelName {
        RelName(Symbol::new(s))
    }

    /// The relation name as a string.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying symbol.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelName({:?})", self.as_str())
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> RelName {
        RelName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("R");
        let b = Symbol::new("R");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "R");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("alpha");
        let b = Symbol::new("beta");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn relation_names_display_as_their_string() {
        let r = RelName::new("Follows");
        assert_eq!(r.to_string(), "Follows");
        assert_eq!(format!("{r:?}"), "RelName(\"Follows\")");
    }

    #[test]
    fn symbols_are_ordered_consistently_with_ids() {
        let a = Symbol::new("zzz_order_a");
        let b = Symbol::new("zzz_order_b");
        // Order is id-based (interning order), we only require a total order.
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn symbols_survive_round_trip_through_strings() {
        let a = Symbol::new("round_trip");
        let b = Symbol::new(a.as_str());
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
