//! A small parser for (generalized) path queries in atom syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := atom ("," atom)*
//! atom   := NAME "(" term "," term ")"
//! term   := NAME            -- lowercase first letter: variable
//!         | "'" NAME "'"    -- quoted: constant
//!         | NUMBER          -- bare number: constant
//! ```
//!
//! Relation names start with an uppercase letter. Examples:
//!
//! ```text
//! R(x,y), R(y,z)
//! R(x,y), S(y,'0'), T('0','1'), R('1',w)
//! ```
//!
//! The single-letter word syntax of the paper (`RXRY`) is handled directly by
//! [`crate::query::PathQuery::parse`].

use crate::error::CoreError;
use crate::query::{Atom, GeneralizedPathQuery, Term};
use crate::symbol::{RelName, Symbol};

/// Parses a generalized path query from atom syntax.
pub fn parse_query(input: &str) -> Result<GeneralizedPathQuery, CoreError> {
    let atoms = parse_atoms(input)?;
    GeneralizedPathQuery::from_atoms(&atoms)
}

/// Parses a comma-separated list of atoms.
pub fn parse_atoms(input: &str) -> Result<Vec<Atom>, CoreError> {
    let mut atoms = Vec::new();
    let mut rest = input.trim();
    if rest.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    while !rest.is_empty() {
        let (atom, remainder) = parse_atom(rest)?;
        atoms.push(atom);
        rest = remainder.trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
            if rest.is_empty() {
                return Err(CoreError::ParseError("trailing comma".into()));
            }
        } else if !rest.is_empty() {
            return Err(CoreError::ParseError(format!(
                "expected ',' before {rest:?}"
            )));
        }
    }
    Ok(atoms)
}

fn parse_atom(input: &str) -> Result<(Atom, &str), CoreError> {
    let input = input.trim_start();
    let open = input
        .find('(')
        .ok_or_else(|| CoreError::ParseError(format!("expected '(' in {input:?}")))?;
    let rel_name = input[..open].trim();
    if rel_name.is_empty() {
        return Err(CoreError::ParseError("empty relation name".into()));
    }
    if !rel_name.chars().next().unwrap().is_uppercase() {
        return Err(CoreError::ParseError(format!(
            "relation names must start with an uppercase letter: {rel_name:?}"
        )));
    }
    let close = input
        .find(')')
        .ok_or_else(|| CoreError::ParseError(format!("expected ')' in {input:?}")))?;
    if close < open {
        return Err(CoreError::ParseError(format!(
            "mismatched parentheses in {input:?}"
        )));
    }
    let args: Vec<&str> = input[open + 1..close].split(',').map(str::trim).collect();
    if args.len() != 2 {
        return Err(CoreError::ParseError(format!(
            "expected exactly two arguments, got {}",
            args.len()
        )));
    }
    let atom = Atom::new(
        RelName::new(rel_name),
        parse_term(args[0])?,
        parse_term(args[1])?,
    );
    Ok((atom, &input[close + 1..]))
}

fn parse_term(s: &str) -> Result<Term, CoreError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(CoreError::ParseError("empty term".into()));
    }
    if let Some(stripped) = s.strip_prefix('\'') {
        let inner = stripped
            .strip_suffix('\'')
            .ok_or_else(|| CoreError::ParseError(format!("unterminated constant {s:?}")))?;
        return Ok(Term::Const(Symbol::new(inner)));
    }
    let first = s.chars().next().unwrap();
    if first.is_ascii_digit() {
        return Ok(Term::Const(Symbol::new(s)));
    }
    if first.is_lowercase() || first == '_' {
        return Ok(Term::var(s));
    }
    Err(CoreError::ParseError(format!(
        "cannot parse term {s:?}: variables start with a lowercase letter, constants are quoted or numeric"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;

    #[test]
    fn parses_plain_path_query() {
        let q = parse_query("R(x,y), R(y,z), X(z,w)").unwrap();
        assert_eq!(q.word(), &Word::from_letters("RRX"));
        assert!(q.is_constant_free());
    }

    #[test]
    fn parses_example_8_with_constants() {
        let q = parse_query("R(x,y), S(y,'0'), T('0','1'), R('1',w)").unwrap();
        assert!(q.has_constants());
        assert_eq!(q.word(), &Word::from_letters("RSTR"));
        assert_eq!(q.characteristic_prefix_len(), 2);
    }

    #[test]
    fn numeric_terms_are_constants() {
        let q = parse_query("R(x,y), S(y,0), T(0,1), R(1,w)").unwrap();
        assert!(q.has_constants());
        assert_eq!(q.constant_rooted_segments().len(), 2);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_query("").is_err());
        assert!(parse_query("R(x)").is_err());
        assert!(parse_query("R(x,y,z)").is_err());
        assert!(parse_query("r(x,y)").is_err());
        assert!(parse_query("R(x,y),").is_err());
        assert!(parse_query("R(x,y) S(y,z)").is_err());
        assert!(parse_query("R(x,'y)").is_err());
    }

    #[test]
    fn rejects_non_chaining_atoms() {
        assert!(parse_query("R(x,y), S(z,w)").is_err());
    }

    #[test]
    fn multi_character_relation_names() {
        let q = parse_query("Follows(x,y), Likes(y,z)").unwrap();
        assert_eq!(q.word(), &Word::from_names("Follows Likes"));
    }
}
