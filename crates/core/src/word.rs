//! Words over the alphabet of relation names.
//!
//! A path query `q = ∃x1…xk+1 (R1(x1,x2) ∧ … ∧ Rk(xk,xk+1))` is represented
//! losslessly (up to variable renaming) by the word `R1 R2 … Rk`. All of the
//! combinatorics in Sections 3–4 of the paper (the *rewinding* operator, the
//! conditions C1/C2/C3 and the regex forms B1/B2a/B2b/B3) are operations on
//! words, implemented in this module and in [`crate::conditions`] /
//! [`crate::regex_forms`].

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;

use crate::symbol::RelName;

/// A finite word over relation names. The empty word is allowed.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Word(Vec<RelName>);

impl Word {
    /// The empty word ε.
    pub fn empty() -> Word {
        Word(Vec::new())
    }

    /// Builds a word from a sequence of relation names.
    pub fn new<I: IntoIterator<Item = RelName>>(letters: I) -> Word {
        Word(letters.into_iter().collect())
    }

    /// Parses a word in which every relation name is a single character,
    /// e.g. `"RXRY"` becomes `R·X·R·Y`. Whitespace is ignored.
    ///
    /// This is the notation used throughout the paper.
    pub fn from_letters(s: &str) -> Word {
        Word(
            s.chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| RelName::new(&c.to_string()))
                .collect(),
        )
    }

    /// Parses a word of whitespace-separated relation names,
    /// e.g. `"Follows Likes Follows"`.
    pub fn from_names(s: &str) -> Word {
        Word(s.split_whitespace().map(RelName::new).collect())
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff this is the empty word ε.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The letters as a slice.
    pub fn letters(&self) -> &[RelName] {
        &self.0
    }

    /// Iterator over the letters.
    pub fn iter(&self) -> impl Iterator<Item = RelName> + '_ {
        self.0.iter().copied()
    }

    /// First letter, if the word is nonempty (`first(u)` in the paper).
    pub fn first(&self) -> Option<RelName> {
        self.0.first().copied()
    }

    /// Last letter, if the word is nonempty (`last(u)` in the paper).
    pub fn last(&self) -> Option<RelName> {
        self.0.last().copied()
    }

    /// Appends a letter in place.
    pub fn push(&mut self, r: RelName) {
        self.0.push(r);
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Word) -> Word {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Word(v)
    }

    /// The word repeated `k` times; `(u)^0 = ε`.
    pub fn repeat(&self, k: usize) -> Word {
        let mut v = Vec::with_capacity(self.len() * k);
        for _ in 0..k {
            v.extend_from_slice(&self.0);
        }
        Word(v)
    }

    /// The factor `self[i..j]` (empty if `i >= j`).
    pub fn slice(&self, i: usize, j: usize) -> Word {
        if i >= j || i >= self.len() {
            Word::empty()
        } else {
            Word(self.0[i..j.min(self.len())].to_vec())
        }
    }

    /// The prefix of length `n`.
    pub fn prefix(&self, n: usize) -> Word {
        self.slice(0, n)
    }

    /// The suffix starting at position `n`.
    pub fn suffix_from(&self, n: usize) -> Word {
        self.slice(n, self.len())
    }

    /// All prefixes, from ε to the full word (inclusive), in increasing length.
    pub fn prefixes(&self) -> Vec<Word> {
        (0..=self.len()).map(|n| self.prefix(n)).collect()
    }

    /// All suffixes, from the full word down to ε.
    pub fn suffixes(&self) -> Vec<Word> {
        (0..=self.len()).map(|n| self.suffix_from(n)).collect()
    }

    /// All distinct nonempty factors.
    pub fn factors(&self) -> Vec<Word> {
        let mut set = BTreeSet::new();
        for i in 0..self.len() {
            for j in i + 1..=self.len() {
                set.insert(self.slice(i, j));
            }
        }
        set.into_iter().collect()
    }

    /// True iff `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Word) -> bool {
        self.len() <= other.len() && self.0[..] == other.0[..self.len()]
    }

    /// True iff `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &Word) -> bool {
        self.len() <= other.len() && self.0[..] == other.0[other.len() - self.len()..]
    }

    /// True iff `self` occurs as a (contiguous) factor of `other`.
    pub fn is_factor_of(&self, other: &Word) -> bool {
        if self.is_empty() {
            return true;
        }
        if self.len() > other.len() {
            return false;
        }
        other
            .0
            .windows(self.len())
            .any(|window| window == self.0.as_slice())
    }

    /// All start offsets at which `self` occurs as a factor of `other`.
    pub fn occurrences_in(&self, other: &Word) -> Vec<usize> {
        if self.is_empty() {
            return (0..=other.len()).collect();
        }
        if self.len() > other.len() {
            return Vec::new();
        }
        (0..=other.len() - self.len())
            .filter(|&o| other.0[o..o + self.len()] == self.0[..])
            .collect()
    }

    /// The set of relation names occurring in the word (`symbols(q)`).
    pub fn symbols(&self) -> BTreeSet<RelName> {
        self.0.iter().copied().collect()
    }

    /// True iff no relation name occurs more than once (`self-join-free`).
    pub fn is_self_join_free(&self) -> bool {
        self.symbols().len() == self.len()
    }

    /// All positions at which `r` occurs.
    pub fn positions_of(&self, r: RelName) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| (x == r).then_some(i))
            .collect()
    }

    /// All pairs of positions `(i, j)` with `i < j` and `self[i] == self[j]`.
    ///
    /// Each such pair witnesses a decomposition `q = u R v R w` with
    /// `u = q[..i]`, `R = q[i]`, `v = q[i+1..j]`, `w = q[j+1..]`, which is
    /// exactly the situation in which the *rewinding* operator applies.
    pub fn repeated_letter_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                if self.0[i] == self.0[j] {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// For every relation name `R` occurring at least three times, all triples
    /// `(i, j, k)` of *consecutive* occurrences of `R` (no occurrence of `R`
    /// strictly between `i` and `j`, nor between `j` and `k`).
    ///
    /// These are the decompositions `q = u R v1 R v2 R w` used by condition C2.
    pub fn consecutive_triples(&self) -> Vec<(usize, usize, usize)> {
        let mut triples = Vec::new();
        for r in self.symbols() {
            let pos = self.positions_of(r);
            for window in pos.windows(3) {
                triples.push((window[0], window[1], window[2]));
            }
        }
        triples.sort_unstable();
        triples
    }

    /// Applies one *rewind* at the pair `(i, j)` (which must satisfy
    /// `self[i] == self[j]` and `i < j`): writing `q = u R v R w` with
    /// `u = q[..i]` and `R v = q[i..j]`, returns `u R v R v R w`.
    ///
    /// # Panics
    /// Panics if `i >= j`, either index is out of range, or the letters differ.
    pub fn rewind_at(&self, i: usize, j: usize) -> Word {
        assert!(i < j && j < self.len(), "rewind indices out of range");
        assert_eq!(self.0[i], self.0[j], "rewind requires equal letters");
        let mut v = Vec::with_capacity(self.len() + (j - i));
        v.extend_from_slice(&self.0[..j]);
        v.extend_from_slice(&self.0[i..]);
        Word(v)
    }

    /// All single-step rewinds of the word, each tagged with the pair of
    /// positions that produced it.
    pub fn rewinds(&self) -> Vec<(usize, usize, Word)> {
        self.repeated_letter_pairs()
            .into_iter()
            .map(|(i, j)| (i, j, self.rewind_at(i, j)))
            .collect()
    }

    /// All words reachable from `self` by at most `depth` rewinds, including
    /// `self` itself. This is a finite under-approximation of `L↬(q)`, used
    /// in tests and in the bounded language-exploration utilities.
    pub fn rewind_closure(&self, depth: usize) -> BTreeSet<Word> {
        let mut seen: BTreeSet<Word> = BTreeSet::new();
        seen.insert(self.clone());
        let mut frontier = vec![self.clone()];
        for _ in 0..depth {
            let mut next = Vec::new();
            for w in &frontier {
                for (_, _, r) in w.rewinds() {
                    if seen.insert(r.clone()) {
                        next.push(r);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        seen
    }

    /// All rotations of the word (`uv ↦ vu`). The word itself is included.
    pub fn rotations(&self) -> Vec<Word> {
        if self.is_empty() {
            return vec![Word::empty()];
        }
        (0..self.len())
            .map(|i| {
                let mut v = Vec::with_capacity(self.len());
                v.extend_from_slice(&self.0[i..]);
                v.extend_from_slice(&self.0[..i]);
                Word(v)
            })
            .collect()
    }

    /// All *episodes* of the word: factors of the form `R u R` such that `R`
    /// does not occur in `u` (Definition 19 in the paper). Returned as
    /// `(start, end_inclusive)` position pairs of the two `R`s.
    pub fn episodes(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                if self.0[i] == self.0[j] && !self.0[i + 1..j].contains(&self.0[i]) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// True iff the episode at `(i, j)` is *right-repeating* within the word:
    /// with `q = ℓ R u R r`, the suffix `r` is a prefix of `(u R)^|r|`.
    pub fn episode_right_repeating(&self, i: usize, j: usize) -> bool {
        let u = self.slice(i + 1, j);
        let r = self.suffix_from(j + 1);
        let mut ur = u.clone();
        ur.push(self.0[i]);
        r.is_prefix_of(&ur.repeat(r.len().max(1)))
    }

    /// True iff the episode at `(i, j)` is *left-repeating* within the word:
    /// with `q = ℓ R u R r`, the prefix `ℓ` is a suffix of `(R u)^|ℓ|`.
    pub fn episode_left_repeating(&self, i: usize, j: usize) -> bool {
        let u = self.slice(i + 1, j);
        let l = self.prefix(i);
        let mut ru = Word::new([self.0[i]]);
        ru = ru.concat(&u);
        l.is_suffix_of(&ru.repeat(l.len().max(1)))
    }
}

/// Enumerates every word of length between 1 and `max_len` (inclusive) over
/// the given alphabet, in length-then-lexicographic order.
///
/// Used by exhaustive tests of the combinatorial lemmas and by the
/// classification benchmarks.
pub fn all_words(alphabet: &[RelName], max_len: usize) -> Vec<Word> {
    let mut out = Vec::new();
    let base = alphabet.len();
    if base == 0 {
        return out;
    }
    for len in 1..=max_len as u32 {
        let count = base.pow(len);
        for code in 0..count {
            let mut rest = code;
            let mut letters = Vec::with_capacity(len as usize);
            for _ in 0..len {
                letters.push(alphabet[rest % base]);
                rest /= base;
            }
            out.push(Word::new(letters));
        }
    }
    out
}

impl Index<usize> for Word {
    type Output = RelName;

    fn index(&self, i: usize) -> &RelName {
        &self.0[i]
    }
}

impl FromIterator<RelName> for Word {
    fn from_iter<I: IntoIterator<Item = RelName>>(iter: I) -> Word {
        Word(iter.into_iter().collect())
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({self})")
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        let single_char = self.0.iter().all(|r| r.as_str().chars().count() == 1);
        let sep = if single_char { "" } else { " " };
        let mut first = true;
        for r in &self.0 {
            if !first {
                f.write_str(sep)?;
            }
            f.write_str(r.as_str())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::from_letters(s)
    }

    #[test]
    fn from_letters_parses_single_character_names() {
        let q = w("RXRY");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], RelName::new("R"));
        assert_eq!(q[1], RelName::new("X"));
        assert_eq!(q.to_string(), "RXRY");
    }

    #[test]
    fn from_names_parses_multi_character_names() {
        let q = Word::from_names("Follows Likes Follows");
        assert_eq!(q.len(), 3);
        assert_eq!(q[0], RelName::new("Follows"));
        assert_eq!(q.to_string(), "Follows Likes Follows");
    }

    #[test]
    fn empty_word_displays_as_epsilon() {
        assert_eq!(Word::empty().to_string(), "ε");
        assert!(Word::empty().is_empty());
    }

    #[test]
    fn prefix_suffix_factor_relations() {
        let q = w("RXRY");
        assert!(w("RX").is_prefix_of(&q));
        assert!(!w("XR").is_prefix_of(&q));
        assert!(w("RY").is_suffix_of(&q));
        assert!(w("XR").is_factor_of(&q));
        assert!(!w("YR").is_factor_of(&q));
        assert!(Word::empty().is_prefix_of(&q));
        assert!(Word::empty().is_factor_of(&q));
    }

    #[test]
    fn occurrences_are_all_start_offsets() {
        let q = w("RRRR");
        assert_eq!(w("RR").occurrences_in(&q), vec![0, 1, 2]);
        assert_eq!(w("X").occurrences_in(&q), Vec::<usize>::new());
    }

    #[test]
    fn self_join_free_detection() {
        assert!(w("RXY").is_self_join_free());
        assert!(!w("RXR").is_self_join_free());
        assert!(Word::empty().is_self_join_free());
    }

    #[test]
    fn rewind_matches_paper_examples() {
        // TWITTER rewinds to TWI·TWI·TTER, TWIT·TWIT·TER and TWI·T·T·TER.
        let q = w("TWITTER");
        let rewinds: BTreeSet<Word> = q.rewinds().into_iter().map(|(_, _, r)| r).collect();
        assert!(rewinds.contains(&w("TWITWITTER")));
        assert!(rewinds.contains(&w("TWITTWITTER")));
        assert!(rewinds.contains(&w("TWITTTER")));
        // The E/R pair does not exist; count the distinct rewound words:
        // pairs of equal letters: (T0,T3), (T0,T4), (T3,T4), (E?) none, (R?) none... plus (T0,T3),(T0,T4),(T3,T4)
        assert_eq!(q.repeated_letter_pairs().len(), 3);
    }

    #[test]
    fn rewind_at_rr() {
        let q = w("RR");
        assert_eq!(q.rewind_at(0, 1), w("RRR"));
        let q = w("RRX");
        assert_eq!(q.rewind_at(0, 1), w("RRRX"));
    }

    #[test]
    #[should_panic]
    fn rewind_at_rejects_unequal_letters() {
        let q = w("RX");
        let _ = q.rewind_at(0, 1);
    }

    #[test]
    fn rewind_closure_of_rr_is_r_star() {
        let q = w("RR");
        let closure = q.rewind_closure(3);
        // RR, RRR, RRRR, RRRRR are reachable within 3 rewinds.
        assert!(closure.contains(&w("RR")));
        assert!(closure.contains(&w("RRR")));
        assert!(closure.contains(&w("RRRRR")));
    }

    #[test]
    fn consecutive_triples_only_lists_adjacent_occurrences() {
        let q = w("RXRYRZR");
        // R occurs at 0, 2, 4, 6; consecutive triples: (0,2,4), (2,4,6).
        assert_eq!(q.consecutive_triples(), vec![(0, 2, 4), (2, 4, 6)]);
        assert!(w("RXRY").consecutive_triples().is_empty());
    }

    #[test]
    fn rotations_include_identity_and_have_same_multiset() {
        let q = w("RXY");
        let rots = q.rotations();
        assert_eq!(rots.len(), 3);
        assert!(rots.contains(&w("RXY")));
        assert!(rots.contains(&w("XYR")));
        assert!(rots.contains(&w("YRX")));
    }

    #[test]
    fn episodes_exclude_inner_occurrences() {
        // In AMAA the episodes of A are (0,2) and (2,3), but not (0,3).
        let q = w("AMAA");
        let eps = q.episodes();
        assert!(eps.contains(&(0, 2)));
        assert!(eps.contains(&(2, 3)));
        assert!(!eps.contains(&(0, 3)));
    }

    #[test]
    fn episode_repetition_example_from_paper() {
        // q = AMAA MAAMA MAAMAAMAB; episode e1 = (M)AAM(A) at ... the paper's
        // example says the episode starting at position 1 (M A A M) is
        // left-repeating. We verify left/right repetition on a simpler case:
        // in q = RXRXR, the episode (0,2) (RXR) is right-repeating
        // (suffix XR is a prefix of (XR)^2) and (2,4) is left-repeating.
        let q = w("RXRXR");
        assert!(q.episode_right_repeating(0, 2));
        assert!(q.episode_left_repeating(2, 4));
    }

    #[test]
    fn slices_and_repeats() {
        let q = w("RXRY");
        assert_eq!(q.slice(1, 3), w("XR"));
        assert_eq!(q.prefix(2), w("RX"));
        assert_eq!(q.suffix_from(2), w("RY"));
        assert_eq!(w("RX").repeat(3), w("RXRXRX"));
        assert_eq!(w("RX").repeat(0), Word::empty());
    }
}
