//! Benchmark-only crate: all content lives in the Criterion benches
//! under `benches/`; see EXPERIMENTS.md for the experiment index.
