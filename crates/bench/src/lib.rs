//! Benchmark-only crate: all content lives in the Criterion benches under
//! `benches/`. Run `scripts/bench_datalog.sh` at the repository root to
//! produce `BENCH_datalog.json` (median ns/iter for the Datalog-relevant
//! suites); `cargo bench -p cqa-bench` runs everything.
