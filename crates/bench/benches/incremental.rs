//! E19: checkpointed base derivation against from-scratch evaluation on
//! warm shared-prefix family batches.
//!
//! The serving scenario behind PR 8: a resident tenant holds one frozen
//! prefix base that many requests (and live `APPEND`/`RETRACT` mutations)
//! share. With `Checkpoint::On`, the monotone EDB-only-dependent strata of
//! the demand-transformed program are pre-evaluated into a cached variant of
//! the base exactly once; every request then *resumes* semi-naive from that
//! checkpoint with its overlay delta as the initial frontier, re-running
//! only the negation-dependent strata. With `Checkpoint::Off`, every request
//! derives the full program from scratch over the shared base.
//!
//! All sides produce byte-identical answer bitmaps (pinned by
//! `crates/path-cqa/tests/checkpoint_agreement.rs` across maintain, demand,
//! kernel and thread knobs). Three arms per pair go into
//! `BENCH_datalog.json` — `off` (from scratch, PR 8's baseline), `on`
//! (checkpointed, PR 8's win) and `dm` (checkpointed *and* differentially
//! maintained, this PR's win):
//!
//! * `warm_batch_*` — a warm session answering the full family batch against
//!   a resident base (checkpoint already built, outside the timed loop). The
//!   maintained side answers every unchanged request straight from its
//!   maintained IDB — a pure hit, no derivation at all.
//! * `mutate_requery_*` — the live-mutation loop: alternate between two
//!   family generations differing in one request's delta (an `APPEND`-sized
//!   edit) and re-answer the batch. The base and its checkpoint survive the
//!   mutation; the maintained side additionally keeps its materialized IDB
//!   and repairs it by the O(changed-tuples) support-count / DRed passes.
//! * `mutate_retract_*` — the same loop with a retract-heavy edit (two
//!   retractions plus one insertion), the shape that exercises DRed
//!   overdelete/rederive rather than the insert-only delta path.
//!
//! **Honest caveat:** the checkpointed win is whatever share of derivation
//! the checkpointable (negation-free, EDB-fed) strata represent, and the
//! maintained win depends on the change ratio (maintenance falls back to
//! from-scratch when the EDB diff is a large fraction of the materialized
//! store) — measured, not assumed; see the recorded deltas in ROADMAP.md
//! against the ≥1.5x target at 10^4-fact prefixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::edb_base_from_instance;
use cqa_datalog::store::BaseStore;
use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::shared_prefix_families;

/// Largest prefix instance; `CQA_BENCH_MAX_FACTS` caps it so the CI smoke
/// run stays at ~10^3 facts.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// A second family generation: the same prefix and deltas, with one
/// `APPEND`-sized edit to request 0's delta — the shape of a live tenant
/// mutation (the resident base is untouched).
fn mutated(family: &InstanceFamily) -> InstanceFamily {
    let mut deltas = family.deltas().to_vec();
    deltas[0].insert_parsed("R", "mut_a", "mut_b");
    deltas[0].insert_parsed("R", "mut_b", "mut_c");
    InstanceFamily::with_deltas(family.prefix().clone(), deltas)
}

/// A retract-heavy generation: request 0's delta loses its first two facts
/// and gains one fresh one — the `RETRACT`-dominated shape that drives the
/// DRed overdelete/rederive passes instead of the insert-only delta path.
fn retracted(family: &InstanceFamily) -> InstanceFamily {
    let mut deltas = family.deltas().to_vec();
    let victims: Vec<_> = deltas[0].facts().iter().copied().take(2).collect();
    deltas[0] = DatabaseInstance::from_facts(
        deltas[0]
            .facts()
            .iter()
            .copied()
            .filter(|f| !victims.contains(f)),
    );
    deltas[0].insert_parsed("R", "ret_a", "ret_b");
    InstanceFamily::with_deltas(family.prefix().clone(), deltas)
}

/// Answers the full batch and folds the bitmap, with everything warm.
fn batch(
    session: &CertaintySession,
    query: &PathQuery,
    family: &InstanceFamily,
    base: &Arc<BaseStore>,
) -> usize {
    let requests: Vec<usize> = (0..family.len()).collect();
    session
        .certain_batch_family_resident(query, family, base, &requests)
        .iter()
        .filter(|a| *a.as_ref().unwrap())
        .count()
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);

    let query = PathQuery::parse("RRX").unwrap();
    // The 0.1-ratio points use the same scale grid as `session_cow`
    // (prefixes near 10^3 and 10^4 facts, 16 requests at a 90% shared
    // prefix) for cross-group comparability. The 0.02-ratio point is the
    // serving shape the checkpoint targets: `APPEND`-sized deltas over a
    // large resident prefix, where per-request work is dominated by the
    // re-derivation the checkpoint elides.
    for (width, ratio) in [(270usize, 0.1), (2700, 0.1), (2700, 0.02)] {
        let family = shared_prefix_families(query.word(), width, 16, ratio, 0x1C_4E41);
        if family.prefix().len() > max_facts() {
            continue;
        }
        let shared_pct = (family.shared_fraction() * 100.0).round();
        let id = format!(
            "{}f_x{}_{}pct",
            family.prefix().len(),
            family.len(),
            shared_pct
        );
        let alt = mutated(&family);
        let shrunk = retracted(&family);

        for (label, checkpoint, maintain) in [
            ("off", Checkpoint::Off, Maintain::Off),
            ("on", Checkpoint::On, Maintain::Off),
            ("dm", Checkpoint::On, Maintain::On),
        ] {
            let session = CertaintySession::with_options(
                NlBackend::Datalog,
                EvalOptions::sequential()
                    .with_checkpoint(checkpoint)
                    .with_maintain(maintain),
            );
            // One resident base per side, shared across all pairs — plan
            // compilation, committed probe indexes, the cached checkpoint
            // variant and (on the `dm` side) the bootstrapped maintained
            // IDB are all built here, outside the timed loops, exactly as a
            // resident cqa-server tenant would hold them.
            let base = edb_base_from_instance(family.prefix());
            batch(&session, &query, &family, &base);
            batch(&session, &query, &alt, &base);
            batch(&session, &query, &shrunk, &base);

            group.bench_with_input(
                BenchmarkId::new(format!("warm_batch_{label}"), &id),
                &family,
                |b, family| b.iter(|| black_box(batch(&session, &query, family, &base))),
            );

            group.bench_with_input(
                BenchmarkId::new(format!("mutate_requery_{label}"), &id),
                &(&family, &alt),
                |b, (family, alt)| {
                    b.iter(|| {
                        let first = batch(&session, &query, family, &base);
                        let second = batch(&session, &query, alt, &base);
                        black_box(first + second)
                    })
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("mutate_retract_{label}"), &id),
                &(&family, &shrunk),
                |b, (family, shrunk)| {
                    b.iter(|| {
                        let first = batch(&session, &query, family, &base);
                        let second = batch(&session, &query, shrunk, &base);
                        black_box(first + second)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
