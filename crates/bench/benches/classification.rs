//! E1/E15: cost of the polynomial-time classification (Theorem 2) as a
//! function of query length, plus the Example 3 catalogue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::classify::classify;
use cqa_core::query::PathQuery;
use cqa_core::symbol::RelName;
use cqa_core::word::Word;

fn repeated_pattern(pattern: &str, target_len: usize) -> PathQuery {
    let letters: Vec<RelName> = pattern
        .chars()
        .cycle()
        .take(target_len)
        .map(|c| RelName::new(&c.to_string()))
        .collect();
    PathQuery::new(Word::new(letters)).expect("nonempty")
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    group.sample_size(30);

    // The Example 3 catalogue (one query per complexity class).
    for word in ["RXRX", "RXRY", "RXRYRY", "RXRXRYRY"] {
        let q = PathQuery::parse(word).unwrap();
        group.bench_with_input(BenchmarkId::new("example3", word), &q, |b, q| {
            b.iter(|| black_box(classify(q)))
        });
    }

    // Scaling with query length for a self-join-heavy pattern.
    for len in [4usize, 8, 12, 16, 24, 32] {
        let q = repeated_pattern("RXRY", len);
        group.bench_with_input(BenchmarkId::new("length_rxry_pattern", len), &q, |b, q| {
            b.iter(|| black_box(classify(q)))
        });
        let q = repeated_pattern("RRS", len);
        group.bench_with_input(BenchmarkId::new("length_rrs_pattern", len), &q, |b, q| {
            b.iter(|| black_box(classify(q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
