//! E18: parallel stratum evaluation at 1/2/4/8 worker threads.
//!
//! Two engine workloads at ~10^3 and ~10^4 facts:
//!
//! * `tc` — transitive closure of a layered random graph: a single recursive
//!   rule, so all parallelism comes from chunking the delta scan range;
//! * `cqa_rrx` — the generated linear Lemma 14 program for `RRX`, the
//!   engine's production shape (several rules per stratum plus a recursive
//!   `uvpath` core).
//!
//! The `tN` suffix is the fixed thread count ([`Threads::Fixed`]); `t1` is
//! the exact sequential engine, so `t1 / tN` is the speedup tracked in
//! `BENCH_datalog.json`. Note that the trajectory numbers are only
//! meaningful relative to the host they were recorded on: on a single-core
//! container the expected "speedup" is ≤ 1 (the bench then measures the
//! snapshot-round driver's overhead instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_workloads::random::LayeredConfig;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn tc_program() -> Program {
    let mut p = Program::new();
    p.declare_edb(Predicate::new("R", 2));
    let atom = |name: &str, vars: [&str; 2]| {
        DlAtom::new(
            Predicate::new(name, 2),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    p.add_rule(Rule::new(
        atom("path", ["X", "Y"]),
        vec![BodyLiteral::Positive(atom("R", ["X", "Y"]))],
    ));
    p.add_rule(Rule::new(
        atom("path", ["X", "Z"]),
        vec![
            BodyLiteral::Positive(atom("path", ["X", "Y"])),
            BodyLiteral::Positive(atom("R", ["Y", "Z"])),
        ],
    ));
    p
}

/// A layered single-relation graph with bounded depth (see
/// `datalog_engine.rs`), sized by layer width.
fn layered_graph(width: usize) -> DatabaseInstance {
    LayeredConfig {
        relations: vec![cqa_core::symbol::RelName::new("R")],
        layers: 8,
        width,
        conflict_probability: 0.3,
        dead_end_probability: 0.05,
        seed: 0xE18 ^ width as u64,
    }
    .generate()
}

/// Largest instance any entry is asked to handle; `CQA_BENCH_MAX_FACTS` caps
/// it so CI smoke runs stay at ~10^3 facts.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_tc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_parallel");
    group.sample_size(10);
    let compiled = CompiledProgram::compile(&tc_program()).expect("tc compiles");
    let path = Predicate::new("path", 2);
    for width in [120usize, 1_200] {
        let db = layered_graph(width);
        let facts = db.len();
        if facts > max_facts() {
            continue;
        }
        for threads in THREADS {
            let options = EvalOptions::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("tc_t{threads}"), facts),
                &db,
                |b, db| b.iter(|| black_box(compiled.run_with(db, &options).len(path))),
            );
        }
    }
    group.finish();
}

fn bench_cqa_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_parallel");
    group.sample_size(10);
    let q = PathQuery::parse("RRX").unwrap();
    let dec = b2b_strict_decomposition(q.word()).expect("RRX decomposes");
    let cqa = generate_program(&dec, q.word()).expect("program generated");
    for width in [300usize, 3_000] {
        let db = LayeredConfig::for_word(q.word(), width, 0xCAA ^ width as u64).generate();
        let facts = db.len();
        if facts > max_facts() {
            continue;
        }
        for threads in THREADS {
            let options = EvalOptions::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("cqa_rrx_t{threads}"), facts),
                &db,
                |b, db| {
                    b.iter(|| {
                        let store = cqa.compiled.run_with(db, &options);
                        black_box(store.unary(cqa.o).unwrap().len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tc_scaling, bench_cqa_scaling);
criterion_main!(benches);
