//! E9/E10: the hardness gadgets as adversarial workloads — build the
//! REACHABILITY and SAT reductions at growing source sizes and decide the
//! resulting instances with the dispatcher (polynomial for the NL-class
//! target query, SAT-based for the coNP-class target query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_reductions::prelude::*;
use cqa_solver::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reachability_gadgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability_gadget");
    group.sample_size(10);
    let q = PathQuery::parse("RXRY").unwrap();
    let dispatcher = DispatchSolver::new();
    let mut rng = StdRng::seed_from_u64(7);
    for n in [16usize, 64, 256] {
        let graph = Digraph::random_dag(n, 0.1, &mut rng);
        let db = reachability_reduction(&graph, 0, n - 1, &q).unwrap();
        group.bench_with_input(BenchmarkId::new("build", n), &graph, |b, graph| {
            b.iter(|| black_box(reachability_reduction(graph, 0, n - 1, &q).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("solve_nl", db.len()), &db, |b, db| {
            b.iter(|| black_box(dispatcher.certain(&q, db).unwrap()))
        });
    }
    group.finish();
}

fn bench_sat_gadgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_gadget");
    group.sample_size(10);
    let q = PathQuery::parse("RXRXRYRY").unwrap();
    let conp = SatCertaintySolver::default();
    let mut rng = StdRng::seed_from_u64(11);
    for vars in [6usize, 12, 20] {
        let formula = CnfFormula::random(vars, vars * 4, 3, &mut rng);
        let db = sat_reduction(&formula, &q).unwrap();
        group.bench_with_input(BenchmarkId::new("build", vars), &formula, |b, formula| {
            b.iter(|| black_box(sat_reduction(formula, &q).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("solve_conp", db.len()), &db, |b, db| {
            b.iter(|| black_box(conp.certain(&q, db).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability_gadgets, bench_sat_gadgets);
criterion_main!(benches);
