//! E17: warm certainty sessions against cold per-call dispatch on
//! repeated-query workloads.
//!
//! A production certain-answer service sees the *same* query against many
//! instances. Three server designs are replayed over an identical workload:
//!
//! * `cold_dispatch` — the pre-plan-cache architecture: every request
//!   re-derives the query's strict B2b decomposition, re-generates the
//!   linear CQA program and re-plans it (a fresh `PlanCache` per call, so
//!   nothing is shared);
//! * `percall_dispatch` — a fresh [`DispatchSolver`] per request; per-call
//!   query setup is repeated, but compiled plans are shared through the
//!   process-wide plan cache;
//! * `warm_session` / `warm_session_batch` — one [`CertaintySession`]
//!   serving the whole workload, per-query plans cached after the first
//!   request; the `_batch` variant submits through
//!   [`CertaintySession::certain_batch`], which groups by query up front.
//!
//! The `BENCH_datalog.json` trajectory tracks the warm/cold gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::regex_forms::b2b_strict_decomposition;
use cqa_datalog::cqa_program::generate_program_with_cache;
use cqa_datalog::plan_cache::PlanCache;
use cqa_solver::prelude::*;
use cqa_workloads::random::repeated_query_requests;

/// Largest per-request instance; `CQA_BENCH_MAX_FACTS` caps it for CI smoke
/// runs (the workloads here are small by design, so the cap rarely binds).
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_session_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_batch");
    group.sample_size(10);

    // NL-class queries served by the Datalog back-end: the per-query setup
    // (classification, decomposition, program generation and planning) is
    // what a warm session amortizes across the batch.
    let words = ["RRX", "RXRY"];
    for width in [3usize, 12] {
        let requests = repeated_query_requests(&words, 16, width, 0xBA7C);
        if requests.iter().any(|(_, db)| db.len() > max_facts()) {
            continue;
        }
        let avg_facts = requests.iter().map(|(_, db)| db.len()).sum::<usize>() / requests.len();
        let id = format!("{}qx{}/{}", words.len(), requests.len(), avg_facts);

        group.bench_with_input(
            BenchmarkId::new("cold_dispatch", &id),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let mut certain = 0u32;
                    for (query, db) in requests {
                        // Plan-every-call: decomposition, program generation
                        // and join planning all happen per request.
                        let dec = b2b_strict_decomposition(query.word()).expect("NL query");
                        let cache = PlanCache::new();
                        let cqa = generate_program_with_cache(&dec, query.word(), &cache)
                            .expect("non-degenerate decomposition");
                        let store = cqa.compiled.run(db);
                        let o_holds = store.unary(cqa.o).unwrap();
                        certain += db.adom().iter().any(|c| !o_holds.contains(c.symbol())) as u32;
                    }
                    black_box(certain)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("percall_dispatch", &id),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let mut certain = 0u32;
                    for (query, db) in requests {
                        let solver = DispatchSolver::with_datalog_nl();
                        certain += solver.certain(query, db).unwrap() as u32;
                    }
                    black_box(certain)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("warm_session", &id),
            &requests,
            |b, requests| {
                let session = CertaintySession::with_datalog_nl();
                b.iter(|| {
                    let mut certain = 0u32;
                    for (query, db) in requests {
                        certain += session.certain(query, db).unwrap() as u32;
                    }
                    black_box(certain)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("warm_session_batch", &id),
            &requests,
            |b, requests| {
                let session = CertaintySession::with_datalog_nl();
                b.iter(|| {
                    let answers = session.certain_batch(requests);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            },
        );

        // The same warm batch fanned out across 4 worker threads (each
        // request still evaluated sequentially inside its worker). On
        // multi-core hosts this tracks batch-level scaling; on a single core
        // it tracks the fan-out overhead.
        group.bench_with_input(
            BenchmarkId::new("warm_session_batch_t4", &id),
            &requests,
            |b, requests| {
                let session = CertaintySession::with_options(
                    NlBackend::Datalog,
                    EvalOptions::with_threads(4),
                );
                b.iter(|| {
                    let answers = session.certain_batch(requests);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_batch);
criterion_main!(benches);
