//! E19: demand-driven derivation — off vs prune vs magic.
//!
//! Three workloads, each evaluated under every [`Demand`] setting so
//! `BENCH_datalog.json` records what the transformation buys (or costs):
//!
//! * `tc_chain` — the textbook magic-sets win, isolated to the engine: a
//!   goal seeded near the end of a long chain whose unrestricted program
//!   closes the full Θ(n²) transitive closure while the demanded cone walks
//!   a short suffix. This bounds the *possible* win on goal-sparse shapes.
//! * `cqa_rrx` — a warm session answering single `RRX` requests through the
//!   Datalog NL route on a layered instance: the generated Lemma 14 programs
//!   are goal-dense (the certainty check consults `o/1` over the whole
//!   active domain), so this measures what demand transformation costs when
//!   there is little to skip — the honest flip side.
//! * `family` — the serving shape: 16-request shared-prefix family batches
//!   at ~10^3 and ~10^4 prefix facts through
//!   `CertaintySession::certain_batch_family`, per demand setting.
//!
//! Answers are pinned mode-independent by `tests/demand_agreement.rs`; these
//! entries only decide which setting `Demand::Auto` should default to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::{shared_prefix_families, LayeredConfig};

const MODES: [(&str, Demand); 3] = [
    ("off", Demand::Off),
    ("prune", Demand::Prune),
    ("magic", Demand::Magic),
];

/// Largest prefix instance; `CQA_BENCH_MAX_FACTS` caps it so the CI smoke
/// run stays at ~10^3 facts.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Transitive closure over a chain with a `goal` seeded 5 nodes from the
/// end — the goal-sparse shape stage 2 exists for.
fn tc_chain_program() -> (Program, Predicate) {
    let atom = |name: &str, vars: &[&str]| {
        DlAtom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    let pos = |name: &str, vars: &[&str]| BodyLiteral::Positive(atom(name, vars));
    let mut p = Program::new();
    p.declare_edb(Predicate::new("E", 2));
    p.declare_edb(Predicate::new("seed", 2));
    p.add_rule(Rule::new(
        atom("path", &["X", "Y"]),
        vec![pos("E", &["X", "Y"])],
    ));
    p.add_rule(Rule::new(
        atom("path", &["X", "Z"]),
        vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
    ));
    p.add_rule(Rule::new(
        atom("goal", &["Y"]),
        vec![pos("seed", &["X", "X2"]), pos("path", &["X", "Y"])],
    ));
    (p, Predicate::new("goal", 1))
}

fn chain_db(n: usize) -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    for i in 0..n {
        db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
    }
    db.insert_parsed("seed", &format!("n{}", n - 5), &format!("n{}", n - 5));
    db
}

fn bench_demand_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_transform");
    group.sample_size(10);

    // Engine-level: goal-sparse transitive closure, transformed once,
    // evaluated per iteration.
    let (tc, tc_goal) = tc_chain_program();
    let tc_db = chain_db(1000.min(max_facts()));
    for (name, demand) in MODES {
        let (transformed, _) = demand_transform(&tc, tc_goal, demand.resolve());
        let compiled = CompiledProgram::compile(&transformed).expect("tc compiles");
        group.bench_with_input(BenchmarkId::new("tc_chain", name), &tc_db, |b, db| {
            b.iter(|| {
                let store = compiled.run_with(db, &EvalOptions::sequential());
                black_box(store.generation())
            })
        });
    }

    // Route-level: warm single-request RRX certainty on a layered instance.
    let query = PathQuery::parse("RRX").unwrap();
    let rrx_db =
        LayeredConfig::for_word(query.word(), 270.min(max_facts() / 4 + 1), 0xDE3A).generate();
    for (name, demand) in MODES {
        let session = CertaintySession::with_options(
            NlBackend::Datalog,
            EvalOptions::sequential().with_demand(demand),
        );
        session.certain(&query, &rrx_db).unwrap(); // warm the plan
        group.bench_with_input(BenchmarkId::new("cqa_rrx", name), &rrx_db, |b, db| {
            b.iter(|| black_box(session.certain(&query, db).unwrap()))
        });
    }

    // Serving-level: shared-prefix family batches at ~10^3 and ~10^4 facts.
    for width in [270usize, 2700] {
        let family = shared_prefix_families(query.word(), width, 16, 0.1, 0xC0_FFA);
        if family.prefix().len() > max_facts() {
            continue;
        }
        for (name, demand) in MODES {
            let session = CertaintySession::with_options(
                NlBackend::Datalog,
                EvalOptions::sequential().with_demand(demand),
            );
            let id = format!("{}f_{}", family.prefix().len(), name);
            group.bench_with_input(BenchmarkId::new("family", &id), &family, |b, family| {
                b.iter(|| {
                    let answers = session.certain_batch_family(&query, family);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_demand_transform);
criterion_main!(benches);
