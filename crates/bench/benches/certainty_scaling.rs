//! E13: certain-query-answering runtime versus database size, one
//! representative query per complexity class, solved by the dispatcher's
//! specialized algorithm for that class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_solver::prelude::*;
use cqa_workloads::random::LayeredConfig;

/// Largest instance any solver is asked to handle; `CQA_BENCH_MAX_FACTS`
/// caps it for CI smoke runs.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("certainty_scaling");
    group.sample_size(10);

    let queries = [
        ("FO/RXRX", "RXRX"),
        ("NL/RXRY", "RXRY"),
        ("PTIME/RXRYRY", "RXRYRY"),
        ("coNP/RXRXRYRY", "RXRXRYRY"),
    ];
    let dispatcher = DispatchSolver::new();
    for (label, word) in queries {
        let q = PathQuery::parse(word).unwrap();
        for width in [50usize, 200, 800] {
            let db = LayeredConfig::for_word(q.word(), width, 0xACE).generate();
            if db.len() > max_facts() {
                continue;
            }
            group.throughput(Throughput::Elements(db.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(label, db.len()),
                &(&q, &db),
                |b, (q, db)| b.iter(|| black_box(dispatcher.certain(q, db).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
