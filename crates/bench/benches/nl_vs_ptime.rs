//! E8: the two NL back-ends (direct reachability over the `P`/`O` predicates
//! and the generated linear Datalog program) against the PTIME fixpoint
//! algorithm on NL-class queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_solver::prelude::*;
use cqa_workloads::random::LayeredConfig;

/// Largest instance any solver is asked to handle; `CQA_BENCH_MAX_FACTS`
/// caps it for CI smoke runs.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_nl_vs_ptime(c: &mut Criterion) {
    let mut group = c.benchmark_group("nl_vs_ptime");
    group.sample_size(10);

    let direct = NlSolver::direct();
    let datalog = NlSolver::datalog();
    let fixpoint = FixpointSolver::unchecked();

    for word in ["RRX", "RXRY"] {
        let q = PathQuery::parse(word).unwrap();
        for width in [20usize, 80, 240] {
            let db = LayeredConfig::for_word(q.word(), width, 0xD1CE).generate();
            if db.len() > max_facts() {
                continue;
            }
            let id = format!("{word}/{}", db.len());
            group.bench_with_input(BenchmarkId::new("nl_direct", &id), &db, |b, db| {
                b.iter(|| black_box(direct.certain(&q, db).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("ptime_fixpoint", &id), &db, |b, db| {
                b.iter(|| black_box(fixpoint.certain(&q, db).unwrap()))
            });
            // The Datalog engine is the slowest back-end; keep its inputs small.
            if width <= 80 {
                group.bench_with_input(BenchmarkId::new("nl_datalog", &id), &db, |b, db| {
                    b.iter(|| black_box(datalog.certain(&q, db).unwrap()))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_nl_vs_ptime);
criterion_main!(benches);
