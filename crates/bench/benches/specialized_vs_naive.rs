//! E14: the specialized polynomial solvers versus the exponential baselines
//! (naive repair enumeration and pruned backtracking) as the number of
//! conflicting blocks grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_solver::prelude::*;
use cqa_workloads::random::LayeredConfig;

fn bench_specialized_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("specialized_vs_naive");
    group.sample_size(10);

    let q = PathQuery::parse("RRX").unwrap();
    let fixpoint = FixpointSolver::unchecked();
    let nl = NlSolver::direct();
    let fo_unchecked = FoSolver::unchecked();
    let naive = NaiveSolver::with_limit(1 << 26);
    let backtrack = BacktrackSolver::new();

    for width in [4usize, 8, 12, 16] {
        let mut config = LayeredConfig::for_word(q.word(), width, 0xFEED ^ width as u64);
        config.conflict_probability = 0.6;
        let db = config.generate();
        let blocks = db.block_count();
        group.bench_with_input(BenchmarkId::new("ptime_fixpoint", blocks), &db, |b, db| {
            b.iter(|| black_box(fixpoint.certain(&q, db).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("nl_direct", blocks), &db, |b, db| {
            b.iter(|| black_box(nl.certain(&q, db).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("fo_rewriting_unchecked", blocks),
            &db,
            |b, db| b.iter(|| black_box(fo_unchecked.evaluate_rewriting(&q, db))),
        );
        // The exponential baselines are only run while affordable.
        if db.repair_count() <= 1 << 18 {
            group.bench_with_input(
                BenchmarkId::new("naive_enumeration", blocks),
                &db,
                |b, db| b.iter(|| black_box(naive.certain(&q, db).unwrap())),
            );
            group.bench_with_input(
                BenchmarkId::new("pruned_backtracking", blocks),
                &db,
                |b, db| b.iter(|| black_box(backtrack.certain(&q, db).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_specialized_vs_naive);
criterion_main!(benches);
