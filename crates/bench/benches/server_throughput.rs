//! E19: the serving layer's wire/dispatch overhead — a live loopback
//! `cqa-server` against direct in-process session calls on the identical
//! multi-tenant request stream.
//!
//! Both sides answer the same `tenant_request_stream` (4 tenants,
//! Zipf-skewed, mixed query words) against the same resident families:
//!
//! * `direct_session` — the floor: one warm [`CertaintySession`] and one
//!   resident `Arc<BaseStore>` per tenant, `certain_batch_family_resident`
//!   called in-process per stream command. No sockets, no queue.
//! * `loopback_server` — a real server on 127.0.0.1 with its worker pool,
//!   one client connection replaying the stream as `QUERY` commands. The
//!   measured gap over `direct_session` *is* the wire + framing + queue +
//!   reply-channel cost per command. Runs with `PATH_CQA_TRACE` forced
//!   *off*, so the entry stays comparable with pre-observability baselines:
//!   only the always-on recorder (counters + histograms) is in the path.
//! * `loopback_trace_on` — identical, with fine-grained trace spans forced
//!   *on*. The ratio over `loopback_server` is the trace-knob overhead;
//!   the ratio of `loopback_server` over its checked-in baseline is the
//!   always-on instrumentation overhead (budget: <2%).
//!
//! Requests/sec: each iteration answers the whole stream, so
//! `commands_per_iter / (median_ns · 1e-9)` is the command throughput (and
//! × requests-per-family the per-request throughput). **Honest caveat:**
//! this container is single-CPU, so the loopback numbers measure protocol
//! overhead at concurrency 1 — not multi-core serving capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cqa_datalog::prelude::edb_base_from_instance;
use cqa_datalog::store::BaseStore;
use cqa_db::family::InstanceFamily;
use cqa_server::client::Client;
use cqa_server::server::{start, ServerConfig};
use cqa_solver::prelude::*;
use cqa_workloads::random::{shared_prefix_families, tenant_request_stream, TenantRequest};

const TENANTS: usize = 4;
const COMMANDS: usize = 32;
const WORDS: [&str; 3] = ["RRX", "RXRY", "RXRX"];

fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    // Baseline arms measure the always-on recorder only; the trace-on arm
    // flips the knob itself.
    cqa_obs::set_trace(cqa_obs::Trace::Off);

    let word = cqa_core::word::Word::from_letters("RXRYRY");
    // Widths as in `session_cow`: prefixes near 10^3 and 10^4 facts.
    for width in [270usize, 2700] {
        let families: Vec<InstanceFamily> = (0..TENANTS)
            .map(|t| shared_prefix_families(&word, width, 8, 0.1, 0xF00D + t as u64))
            .collect();
        if families[0].prefix().len() > max_facts() {
            continue;
        }
        let stream = tenant_request_stream(TENANTS, &WORDS, COMMANDS, 1.0, 0x5EEE);
        let id = format!(
            "{}f_x{}t_{}cmd",
            families[0].prefix().len(),
            TENANTS,
            stream.len()
        );

        // The in-process floor: warm session, resident bases, no wire.
        group.bench_with_input(
            BenchmarkId::new("direct_session", &id),
            &stream,
            |b, stream| {
                let session =
                    CertaintySession::with_options(NlBackend::Datalog, EvalOptions::sequential());
                let bases: Vec<Arc<BaseStore>> = families
                    .iter()
                    .map(|f| edb_base_from_instance(f.prefix()))
                    .collect();
                let all: Vec<Vec<usize>> =
                    families.iter().map(|f| (0..f.len()).collect()).collect();
                b.iter(|| {
                    let mut certain = 0usize;
                    for TenantRequest { tenant, query } in stream {
                        let answers = session.certain_batch_family_resident(
                            query,
                            &families[*tenant],
                            &bases[*tenant],
                            &all[*tenant],
                        );
                        certain += answers.iter().filter(|a| *a.as_ref().unwrap()).count();
                    }
                    black_box(certain)
                })
            },
        );

        // The same stream over a live loopback socket, once per trace-knob
        // position (`set_trace` flips the knob in-process, so both arms run
        // in one bench invocation and land in the same BENCH json).
        for (arm, trace) in [
            ("loopback_server", cqa_obs::Trace::Off),
            ("loopback_trace_on", cqa_obs::Trace::On),
        ] {
            group.bench_with_input(BenchmarkId::new(arm, &id), &stream, |b, stream| {
                cqa_obs::set_trace(trace);
                let server = start(ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    workers: 2,
                    ..ServerConfig::default()
                })
                .expect("bind loopback");
                let mut client = Client::connect(server.addr()).expect("connect");
                for (t, family) in families.iter().enumerate() {
                    client.load_family(&format!("t{t}"), family).expect("load");
                }
                // Warm the resident bases so the measured loop compares
                // steady-state serving, exactly like the warm direct side.
                for t in 0..TENANTS {
                    for w in WORDS {
                        client.query(&format!("t{t}"), w).expect("warm");
                    }
                }
                let queries: Vec<(String, String)> = stream
                    .iter()
                    .map(|r| (format!("t{}", r.tenant), r.query.word().to_string()))
                    .collect();
                b.iter(|| {
                    let mut certain = 0usize;
                    for (tenant, word) in &queries {
                        let answers = client.query(tenant, word).expect("query");
                        certain += answers.iter().filter(|&&a| a).count();
                    }
                    black_box(certain)
                });
                client.quit().expect("quit");
                server.shutdown();
                cqa_obs::set_trace(cqa_obs::Trace::Off);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
