//! E5/E6 support: cost of the automaton machinery — building `NFA(q)`,
//! determinizing to `NFAmin(q)`, running `start(q, r)` over repairs, and the
//! fixpoint relation `N` of Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_automata::prelude::*;
use cqa_core::query::PathQuery;
use cqa_solver::prelude::*;
use cqa_workloads::random::LayeredConfig;

fn bench_automata(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata");
    group.sample_size(20);

    for word in ["RRX", "RXRRR", "RXRXRYRY"] {
        let q = PathQuery::parse(word).unwrap();
        group.bench_with_input(BenchmarkId::new("build_nfa", word), &q, |b, q| {
            b.iter(|| black_box(QueryNfa::new(q).num_states()))
        });
        group.bench_with_input(BenchmarkId::new("nfamin_dfa", word), &q, |b, q| {
            b.iter(|| black_box(QueryNfa::new(q).minimal_dfa().num_states()))
        });
    }

    let q = PathQuery::parse("RRX").unwrap();
    let automaton = QueryNfa::new(&q);
    for width in [50usize, 200] {
        let db = LayeredConfig::for_word(q.word(), width, 99).generate();
        let mut rng = rand::rng();
        let repair = db.random_repair(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("start_set_on_repair", repair.len()),
            &repair,
            |b, repair| b.iter(|| black_box(start_set(&automaton, repair).len())),
        );
        group.bench_with_input(BenchmarkId::new("fixpoint_n", db.len()), &db, |b, db| {
            b.iter(|| black_box(compute_fixpoint(&q, db).n.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
