//! E20: shape-specialized binary-relation kernels — off vs on.
//!
//! Three workloads, each evaluated with the kernel knob in both positions so
//! `BENCH_datalog.json` records what the specialized execution core buys:
//!
//! * `tc_chains` — transitive closure over disjoint chains, the binary-heavy
//!   engine shape: every rule is in the unary/binary fragment, so the linear
//!   rule's CSR/merge join replaces the generic hash probe wholesale, and the
//!   chain-parallel deltas are wide enough to cross the merge threshold.
//! * `cqa_rrx` — a warm session answering single `RRX` requests through the
//!   Datalog NL route on a layered instance: the generated Lemma 14 programs
//!   are entirely unary/binary, measuring the win on the serving-path
//!   programs the kernels were built for.
//! * `family` — the serving shape: 16-request shared-prefix family batches
//!   at ~10^3 and ~10^4 prefix facts through
//!   `CertaintySession::certain_batch_family`, per kernel setting.
//!
//! Answers are pinned knob-independent by `tests/kernel_agreement.rs`; these
//! entries only decide which setting `Kernels::Auto` should default to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::{shared_prefix_families, LayeredConfig};

const MODES: [(&str, Kernels); 2] = [("off", Kernels::Off), ("on", Kernels::On)];

/// Largest prefix instance; `CQA_BENCH_MAX_FACTS` caps it so the CI smoke
/// run stays at ~10^3 facts.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Unseeded transitive closure: the full closure keeps the join kernels
/// saturated instead of measuring demand pruning.
fn tc_program() -> Program {
    let atom = |name: &str, vars: &[&str]| {
        DlAtom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    let pos = |name: &str, vars: &[&str]| BodyLiteral::Positive(atom(name, vars));
    let mut p = Program::new();
    p.declare_edb(Predicate::new("E", 2));
    p.add_rule(Rule::new(
        atom("path", &["X", "Y"]),
        vec![pos("E", &["X", "Y"])],
    ));
    p.add_rule(Rule::new(
        atom("path", &["X", "Z"]),
        vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
    ));
    p
}

/// `k` disjoint chains of `len` edges each. Closure size is `k · len²/2`
/// over `len` seminaive rounds, so per-round deltas are `k`-wide: the join
/// kernels stay saturated (wide deltas cross the sort-merge threshold)
/// instead of the measurement drowning in per-round fixed costs the way a
/// single degree-1 chain of the same closure size would (`len` rounds of
/// `O(k·len)` work each vs. `k·len` rounds of `O(len)`).
fn chains_db(k: usize, len: usize) -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    for c in 0..k {
        for i in 0..len {
            db.insert_parsed("E", &format!("c{c}n{i}"), &format!("c{c}n{}", i + 1));
        }
    }
    db
}

fn bench_binary_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_kernels");
    group.sample_size(10);

    // Engine-level: the full closure of 100 disjoint 60-edge chains (~183k
    // derived tuples), compiled once, evaluated per iteration under each
    // knob position. The CI cap shrinks the chain count, not the length.
    let tc = tc_program();
    let compiled = CompiledProgram::compile(&tc).expect("tc compiles");
    let tc_db = chains_db(100.min(max_facts() / 60).max(1), 60);
    for (name, kernels) in MODES {
        let options = EvalOptions::sequential().with_kernels(kernels);
        group.bench_with_input(BenchmarkId::new("tc_chains", name), &tc_db, |b, db| {
            b.iter(|| {
                let store = compiled.run_with(db, &options);
                black_box(store.generation())
            })
        });
    }

    // Route-level: warm single-request RRX certainty on a layered instance.
    let query = PathQuery::parse("RRX").unwrap();
    let rrx_db =
        LayeredConfig::for_word(query.word(), 270.min(max_facts() / 4 + 1), 0xDE3A).generate();
    for (name, kernels) in MODES {
        let session = CertaintySession::with_options(
            NlBackend::Datalog,
            EvalOptions::sequential().with_kernels(kernels),
        );
        session.certain(&query, &rrx_db).unwrap(); // warm the plan
        group.bench_with_input(BenchmarkId::new("cqa_rrx", name), &rrx_db, |b, db| {
            b.iter(|| black_box(session.certain(&query, db).unwrap()))
        });
    }

    // Serving-level: shared-prefix family batches at ~10^3 and ~10^4 facts.
    for width in [270usize, 2700] {
        let family = shared_prefix_families(query.word(), width, 16, 0.1, 0xC0_FFA);
        if family.prefix().len() > max_facts() {
            continue;
        }
        for (name, kernels) in MODES {
            let session = CertaintySession::with_options(
                NlBackend::Datalog,
                EvalOptions::sequential().with_kernels(kernels),
            );
            let id = format!("{}f_{}", family.prefix().len(), name);
            group.bench_with_input(BenchmarkId::new("family", &id), &family, |b, family| {
                b.iter(|| {
                    let answers = session.certain_batch_family(&query, family);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_binary_kernels);
criterion_main!(benches);
