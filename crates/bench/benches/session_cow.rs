//! E18: copy-on-write family sessions against fresh-load batches on
//! shared-prefix workloads.
//!
//! The serving scenario: a family of requests arrives as one shared EDB
//! prefix plus a small per-request delta (90% shared here), all asking the
//! same NL-class query through the Datalog back-end. Two architectures
//! answer the identical input:
//!
//! * `fresh_load` — the pre-layering path: every request materializes its
//!   full instance (`prefix ∪ delta`) and goes through
//!   [`CertaintySession::certain_batch`], which loads a fresh
//!   `RelationStore` — re-copying and re-indexing the prefix — per request;
//! * `prefix_shared` — [`CertaintySession::certain_batch_family`]: the
//!   prefix is loaded and frozen into a copy-on-write base store once per
//!   batch (committed indexes built on the first request), and each request
//!   forks an O(delta) overlay.
//!
//! Both produce byte-identical answer bitmaps (pinned by
//! `tests/family_cow.rs`). Two layers of comparison go into
//! `BENCH_datalog.json`:
//!
//! * `store_build_fresh` vs `store_build_overlay` isolate the component the
//!   layering amortizes — per-request instance materialization, EDB store
//!   loading and (on first probe) index construction. This is where the
//!   copy-on-write win lives, and it is large (O(database) vs O(delta)).
//! * `fresh_load` vs `prefix_shared` measure the full end-to-end batch.
//!   **Honest caveat:** on this engine the end-to-end gap is small (~1.1x),
//!   because after PRs 1–2 the dominant per-request cost is semi-naive
//!   *derivation* — which both architectures must redo per request, since
//!   stratified negation makes the derived relations non-monotone in the
//!   delta — not store construction. The faster the engine got, the less
//!   there is for EDB sharing to save end to end.
//!
//! `prefix_shared_t4` additionally fans the family across 4 worker threads —
//! on this single-CPU container that measures fan-out overhead, not scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::{edb_base_from_instance, edb_from_instance, edb_overlay_on};
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::shared_prefix_families;

/// Largest prefix instance; `CQA_BENCH_MAX_FACTS` caps it so the CI smoke
/// run stays at ~10^3 facts.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_session_cow(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_cow");
    group.sample_size(10);

    let query = PathQuery::parse("RRX").unwrap();
    // Widths chosen so prefixes land near 10^3 and 10^4 facts (the layered
    // generator emits ~3.7 facts per vertex-width for a 3-letter word);
    // 16 requests at a 0.1 delta ratio ≈ 90% shared prefix.
    for width in [270usize, 2700] {
        let family = shared_prefix_families(query.word(), width, 16, 0.1, 0xC0_FFA);
        if family.prefix().len() > max_facts() {
            continue;
        }
        let shared_pct = (family.shared_fraction() * 100.0).round();
        let id = format!(
            "{}f_x{}_{}pct",
            family.prefix().len(),
            family.len(),
            shared_pct
        );

        // Store construction alone — the amortized component. The overlay
        // side pays the base build (freeze + first-probe index commits) once
        // per batch, then O(delta) per request.
        group.bench_with_input(
            BenchmarkId::new("store_build_fresh", &id),
            &family,
            |b, family| {
                b.iter(|| {
                    let mut tuples = 0u64;
                    for i in 0..family.len() {
                        tuples += edb_from_instance(&family.materialize(i)).generation();
                    }
                    black_box(tuples)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("store_build_overlay", &id),
            &family,
            |b, family| {
                b.iter(|| {
                    let base = edb_base_from_instance(family.prefix());
                    let mut tuples = 0u64;
                    for delta in family.deltas() {
                        tuples += edb_overlay_on(&base, delta).generation();
                    }
                    black_box(tuples)
                })
            },
        );

        // Warm sessions for both sides: query planning is already amortized
        // by PR 2, so the measured gap is store loading + index building.
        group.bench_with_input(BenchmarkId::new("fresh_load", &id), &family, |b, family| {
            let session = CertaintySession::with_datalog_nl();
            b.iter(|| {
                let requests: Vec<(PathQuery, DatabaseInstance)> = (0..family.len())
                    .map(|i| (query.clone(), family.materialize(i)))
                    .collect();
                let answers = session.certain_batch(&requests);
                black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("prefix_shared", &id),
            &family,
            |b, family| {
                let session = CertaintySession::with_datalog_nl();
                b.iter(|| {
                    let answers = session.certain_batch_family(&query, family);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("prefix_shared_t4", &id),
            &family,
            |b, family| {
                let session = CertaintySession::with_options(
                    NlBackend::Datalog,
                    EvalOptions::with_threads(4),
                );
                b.iter(|| {
                    let answers = session.certain_batch_family(&query, family);
                    black_box(answers.iter().filter(|a| *a.as_ref().unwrap()).count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_cow);
criterion_main!(benches);
