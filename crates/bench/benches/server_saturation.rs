//! E20: the serving layer under concurrent load — N client threads
//! hammering a live loopback `cqa-server` with a mixed `QUERY`/`APPEND`
//! stream, reported against the `METRICS` queue-wait vs service-time
//! split.
//!
//! Unlike `server_throughput` (one connection, concurrency 1, pure
//! protocol overhead), this group saturates the bounded work queue: four
//! connections race `workers` threads, so commands genuinely wait in the
//! queue and the scrape at the end shows where wall-clock went —
//! `cqa_server_queue_wait_ns` (backpressure) vs `cqa_server_service_ns`
//! (real work). Full-queue rejections surface as `ERR busy` and are
//! retried by the driver; the retry count and the split are printed per
//! arm.
//!
//! Doubles as the METRICS smoke check: after the measured runs the scrape
//! is asserted to contain every required family, so the CI bench-smoke
//! job fails if the exposition loses a family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::thread;

use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;
use cqa_server::client::Client;
use cqa_server::server::{start, ServerConfig};
use cqa_workloads::random::{shared_prefix_families, tenant_request_stream, TenantRequest};

const TENANTS: usize = 2;
const CLIENTS: usize = 4;
const COMMANDS_PER_CLIENT: usize = 24;
/// Every 4th command is an APPEND, so the stream mixes mutations (which
/// invalidate maintained state and force repair/re-derivation) into the
/// read path.
const APPEND_EVERY: usize = 4;
const WORDS: [&str; 3] = ["RRX", "RXRY", "RXRX"];

fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Sums every series of `family` (e.g. all `command="..."` label values)
/// in a Prometheus text exposition.
fn family_sum(text: &str, family: &str) -> u64 {
    text.lines()
        .filter(|line| {
            line.strip_prefix(family)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn bench_server_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_saturation");
    group.sample_size(10);
    cqa_obs::set_trace(cqa_obs::Trace::Off);

    let word = cqa_core::word::Word::from_letters("RXRYRY");
    for width in [270usize] {
        let families: Vec<InstanceFamily> = (0..TENANTS)
            // Seed matches `server_throughput`: at width 270 the prefix is
            // 1999 facts, *under* the CI smoke cap (CQA_BENCH_MAX_FACTS=2000)
            // — the smoke job must run this group, it carries the METRICS
            // family assertions.
            .map(|t| shared_prefix_families(&word, width, 8, 0.1, 0xF00D + t as u64))
            .collect();
        if families[0].prefix().len() > max_facts() {
            continue;
        }
        let id = format!(
            "{}f_x{}cli_{}cmd",
            families[0].prefix().len(),
            CLIENTS,
            CLIENTS * COMMANDS_PER_CLIENT
        );

        group.bench_with_input(BenchmarkId::new("mixed_query_append", &id), &(), |b, ()| {
            let server = start(ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                workers: 2,
                max_queue: 16,
                ..ServerConfig::default()
            })
            .expect("bind loopback");
            let addr = server.addr();
            let mut setup = Client::connect(addr).expect("connect");
            for (t, family) in families.iter().enumerate() {
                setup.load_family(&format!("t{t}"), family).expect("load");
            }
            // Warm every (tenant, word) so the measured runs compare
            // steady-state serving.
            for t in 0..TENANTS {
                for w in WORDS {
                    setup.query(&format!("t{t}"), w).expect("warm");
                }
            }

            // One pre-rendered command stream per client thread. Each
            // APPEND re-adds the same per-client fact — idempotent on the
            // delta, but it still invalidates maintained answers, so the
            // mutation path is exercised on every round.
            let streams: Vec<Vec<(String, usize, Option<DatabaseInstance>)>> = (0..CLIENTS)
                .map(|client_id| {
                    let stream = tenant_request_stream(
                        TENANTS,
                        &WORDS,
                        COMMANDS_PER_CLIENT,
                        1.0,
                        0x5A7 + client_id as u64,
                    );
                    stream
                        .iter()
                        .enumerate()
                        .map(|(i, TenantRequest { tenant, query })| {
                            let facts = (i % APPEND_EVERY == APPEND_EVERY - 1).then(|| {
                                let mut delta = DatabaseInstance::new();
                                let c = 9_000 + client_id;
                                delta.insert_parsed("R", &c.to_string(), &(c + 1).to_string());
                                delta
                            });
                            (query.word().to_string(), *tenant, facts)
                        })
                        .collect()
                })
                .collect();

            let mut busy_retries = 0u64;
            b.iter(|| {
                let answered: usize = thread::scope(|scope| {
                    let handles: Vec<_> = streams
                        .iter()
                        .map(|stream| {
                            scope.spawn(move || {
                                let mut client = Client::connect(addr).expect("connect");
                                let mut answered = 0usize;
                                let mut retries = 0u64;
                                for (word, tenant, facts) in stream {
                                    let tenant = format!("t{tenant}");
                                    loop {
                                        let outcome = match facts {
                                            Some(delta) => {
                                                client.append(&tenant, 0, delta).map(|_| 1)
                                            }
                                            None => client.query(&tenant, word).map(|a| a.len()),
                                        };
                                        match outcome {
                                            Ok(n) => {
                                                answered += n;
                                                break;
                                            }
                                            Err(e) if e.is_busy() => retries += 1,
                                            Err(e) => panic!("command failed: {e}"),
                                        }
                                    }
                                }
                                (answered, retries)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            let (answered, retries) = h.join().expect("client thread");
                            busy_retries += retries;
                            answered
                        })
                        .sum()
                });
                black_box(answered)
            });

            // Where did the wall-clock go? The scrape's histogram sums
            // split queued time from worked time across the whole run.
            let text = setup.metrics().expect("scrape");
            for family in [
                "# TYPE cqa_server_commands_total counter",
                "# TYPE cqa_server_busy_total counter",
                "# TYPE cqa_server_queue_depth gauge",
                "# TYPE cqa_server_command_ns histogram",
                "# TYPE cqa_server_queue_wait_ns histogram",
                "# TYPE cqa_server_service_ns histogram",
                "# TYPE cqa_route_service_ns histogram",
            ] {
                assert!(text.contains(family), "METRICS lost {family:?}");
            }
            let queue_ns = family_sum(&text, "cqa_server_queue_wait_ns_sum");
            let service_ns = family_sum(&text, "cqa_server_service_ns_sum");
            let total = (queue_ns + service_ns).max(1);
            eprintln!(
                "server_saturation/{id}: queue-wait {:.1}% vs service {:.1}% \
                 (queue {queue_ns} ns, service {service_ns} ns, busy retries {busy_retries})",
                100.0 * queue_ns as f64 / total as f64,
                100.0 * service_ns as f64 / total as f64,
            );
            setup.quit().expect("quit");
            server.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server_saturation);
criterion_main!(benches);
