//! E16: the indexed semi-naive Datalog engine against the retained
//! scan-based reference engine, across instance sizes from 10^2 to 10^5
//! facts, on two workloads:
//!
//! * `tc` — transitive closure of a layered random graph (pure recursion,
//!   the classic join-heavy stress test);
//! * `cqa_rrx` — the generated linear program of Lemma 14 for the query
//!   `RRX` (the engine's production workload on every certain-answer call).
//!
//! The scan engine is quadratic-ish in the instance size and is therefore
//! only measured up to ~10^4 facts; the `*_scan` / `*_indexed` pairs at equal
//! sizes are the before/after numbers tracked in `BENCH_datalog.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_workloads::random::LayeredConfig;

fn tc_program() -> Program {
    let mut p = Program::new();
    p.declare_edb(Predicate::new("R", 2));
    let atom = |name: &str, vars: [&str; 2]| {
        DlAtom::new(
            Predicate::new(name, 2),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    p.add_rule(Rule::new(
        atom("path", ["X", "Y"]),
        vec![BodyLiteral::Positive(atom("R", ["X", "Y"]))],
    ));
    p.add_rule(Rule::new(
        atom("path", ["X", "Z"]),
        vec![
            BodyLiteral::Positive(atom("path", ["X", "Y"])),
            BodyLiteral::Positive(atom("R", ["Y", "Z"])),
        ],
    ));
    p
}

/// A layered single-relation graph with bounded depth, so the closure stays
/// linear-ish in the instance size instead of quadratic.
fn layered_graph(width: usize) -> DatabaseInstance {
    LayeredConfig {
        relations: vec![cqa_core::symbol::RelName::new("R")],
        layers: 8,
        width,
        conflict_probability: 0.3,
        dead_end_probability: 0.05,
        seed: 0xE16 ^ width as u64,
    }
    .generate()
}

/// Largest instance the scan engine is asked to handle (~30 s/iteration at
/// 10^4 facts); `CQA_BENCH_SCAN_CUTOFF` overrides it, e.g. for CI smoke runs.
fn scan_cutoff() -> usize {
    std::env::var("CQA_BENCH_SCAN_CUTOFF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15_000)
}

/// Largest instance any engine is asked to handle; `CQA_BENCH_MAX_FACTS`
/// caps it so CI smoke runs stop at ~10^3 facts instead of 10^5.
fn max_facts() -> usize {
    std::env::var("CQA_BENCH_MAX_FACTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_engine");
    group.sample_size(10);
    let program = tc_program();
    for width in [12usize, 120, 1_200, 12_000] {
        let db = layered_graph(width);
        let facts = db.len();
        if facts > max_facts() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("tc_indexed", facts), &db, |b, db| {
            b.iter(|| {
                black_box(
                    evaluate(&program, db)
                        .unwrap()
                        .len(Predicate::new("path", 2)),
                )
            })
        });
        if facts <= scan_cutoff() {
            group.bench_with_input(BenchmarkId::new("tc_scan", facts), &db, |b, db| {
                b.iter(|| {
                    black_box(
                        evaluate_scan(&program, db)
                            .unwrap()
                            .len(Predicate::new("path", 2)),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_cqa_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_engine");
    group.sample_size(10);
    let q = PathQuery::parse("RRX").unwrap();
    let dec = b2b_strict_decomposition(q.word()).expect("RRX decomposes");
    let cqa = generate_program(&dec, q.word()).expect("program generated");
    for width in [30usize, 300, 3_000, 30_000] {
        let db = LayeredConfig::for_word(q.word(), width, 0xCAA ^ width as u64).generate();
        let facts = db.len();
        if facts > max_facts() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("cqa_rrx_indexed", facts), &db, |b, db| {
            b.iter(|| {
                let store = evaluate(&cqa.program, db).unwrap();
                black_box(store.unary(cqa.o).unwrap().len())
            })
        });
        // The warm path every repeated certain-answer call takes: the plan
        // is compiled once (shared via the plan cache inside `cqa`) and only
        // evaluation runs per iteration. Result extraction is identical to
        // the `cqa_rrx_indexed` entry, so the two differ only in per-call
        // compilation.
        group.bench_with_input(
            BenchmarkId::new("cqa_rrx_warm_plan", facts),
            &db,
            |b, db| {
                b.iter(|| {
                    let store = cqa.compiled.run(db);
                    black_box(store.unary(cqa.o).unwrap().len())
                })
            },
        );
        if facts <= scan_cutoff() {
            group.bench_with_input(BenchmarkId::new("cqa_rrx_scan", facts), &db, |b, db| {
                b.iter(|| {
                    let store = evaluate_scan(&cqa.program, db).unwrap();
                    black_box(store.unary(cqa.o).unwrap().len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_transitive_closure, bench_cqa_program);
criterion_main!(benches);
