//! Database instances over binary relations with primary keys.
//!
//! A database instance is a finite set of facts. A *block* is a maximal set
//! of key-equal facts; an instance is *consistent* if every block contains a
//! single fact; a *repair* is an inclusion-maximal consistent subinstance,
//! obtained by choosing exactly one fact from every block (Section 2).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use cqa_core::symbol::RelName;

use crate::error::DbError;
use crate::fact::{BlockId, Constant, Fact, FactId};
use crate::repair::{ConsistentInstance, RepairsIter};

/// An in-memory database instance: a set of facts over binary relations,
/// indexed by block.
#[derive(Clone, Default)]
pub struct DatabaseInstance {
    facts: Vec<Fact>,
    fact_ids: HashMap<Fact, FactId>,
    blocks: BTreeMap<BlockId, Vec<FactId>>,
    adom: BTreeSet<Constant>,
}

impl DatabaseInstance {
    /// Creates an empty instance.
    pub fn new() -> DatabaseInstance {
        DatabaseInstance::default()
    }

    /// Builds an instance from an iterator of facts (duplicates are ignored).
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for f in facts {
            db.insert(f);
        }
        db
    }

    /// Inserts a fact; returns its identifier. Inserting an existing fact is
    /// a no-op that returns the existing identifier.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        if let Some(&id) = self.fact_ids.get(&fact) {
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        self.facts.push(fact);
        self.fact_ids.insert(fact, id);
        self.blocks.entry(fact.block_id()).or_default().push(id);
        self.adom.insert(fact.key);
        self.adom.insert(fact.value);
        id
    }

    /// Convenience: inserts `R(key, value)` given as strings.
    pub fn insert_parsed(&mut self, rel: &str, key: &str, value: &str) -> FactId {
        self.insert(Fact::parse(rel, key, value))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The facts, in insertion order. Indexable by [`FactId`].
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The fact with the given identifier.
    pub fn fact(&self, id: FactId) -> Fact {
        self.facts[id.index()]
    }

    /// The identifier of a fact, if present.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        self.fact_ids.get(fact).copied()
    }

    /// True iff the instance contains the fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.fact_ids.contains_key(fact)
    }

    /// The active domain: all constants occurring in the instance.
    pub fn adom(&self) -> &BTreeSet<Constant> {
        &self.adom
    }

    /// The set of relation names with at least one fact.
    pub fn relation_names(&self) -> BTreeSet<RelName> {
        self.facts.iter().map(|f| f.rel).collect()
    }

    /// The facts grouped by relation name, `(key, value)` pairs in insertion
    /// order within each group. This is the bulk-load entry point for engines
    /// that want per-relation slices with exact counts (e.g. the Datalog
    /// engine's EDB loader) instead of re-dispatching fact by fact.
    pub fn facts_by_relation(&self) -> BTreeMap<RelName, Vec<(Constant, Constant)>> {
        let mut grouped: BTreeMap<RelName, Vec<(Constant, Constant)>> = BTreeMap::new();
        for fact in &self.facts {
            grouped
                .entry(fact.rel)
                .or_default()
                .push((fact.key, fact.value));
        }
        grouped
    }

    /// Iterator over the blocks (block id and member fact ids).
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &[FactId])> {
        self.blocks.iter().map(|(id, v)| (*id, v.as_slice()))
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The fact ids of the block `R(key, ∗)`; empty if the block is empty.
    pub fn block(&self, rel: RelName, key: Constant) -> &[FactId] {
        self.blocks
            .get(&BlockId { rel, key })
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The facts of the block `R(key, ∗)`.
    pub fn block_facts(&self, rel: RelName, key: Constant) -> Vec<Fact> {
        self.block(rel, key)
            .iter()
            .map(|&id| self.fact(id))
            .collect()
    }

    /// All values `b` such that `R(key, b)` is a fact.
    pub fn out_values(&self, rel: RelName, key: Constant) -> Vec<Constant> {
        self.block(rel, key)
            .iter()
            .map(|&id| self.fact(id).value)
            .collect()
    }

    /// True iff the block `R(key, ∗)` is nonempty.
    pub fn has_block(&self, rel: RelName, key: Constant) -> bool {
        !self.block(rel, key).is_empty()
    }

    /// True iff no block contains more than one fact.
    pub fn is_consistent(&self) -> bool {
        self.blocks.values().all(|b| b.len() <= 1)
    }

    /// The blocks that contain more than one fact (the sources of
    /// inconsistency).
    pub fn conflicting_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The number of repairs, saturating at `u128::MAX`.
    pub fn repair_count(&self) -> u128 {
        let mut count: u128 = 1;
        for block in self.blocks.values() {
            count = count.saturating_mul(block.len() as u128);
        }
        count
    }

    /// Iterator over all repairs, in a deterministic order.
    ///
    /// The number of repairs is the product of the block sizes and can be
    /// exponential; callers that cannot afford full enumeration should use
    /// [`DatabaseInstance::repair_count`] first or sample with
    /// [`DatabaseInstance::random_repair`].
    pub fn repairs(&self) -> RepairsIter<'_> {
        RepairsIter::new(self)
    }

    /// Builds the repair selecting, for every block, the fact at the given
    /// choice index (`choices[i] < block_i.len()`); blocks are enumerated in
    /// the order of [`DatabaseInstance::blocks`].
    pub fn repair_from_choices(&self, choices: &[usize]) -> Result<ConsistentInstance, DbError> {
        if choices.len() != self.blocks.len() {
            return Err(DbError::InvalidRepairChoice(format!(
                "expected {} choices, got {}",
                self.blocks.len(),
                choices.len()
            )));
        }
        let mut selected = Vec::with_capacity(self.blocks.len());
        for ((block_id, members), &choice) in self.blocks.iter().zip(choices) {
            let &fact_id = members.get(choice).ok_or_else(|| {
                DbError::InvalidRepairChoice(format!(
                    "choice {choice} out of range for block {block_id}"
                ))
            })?;
            selected.push(fact_id);
        }
        Ok(ConsistentInstance::from_fact_ids(self, selected))
    }

    /// Builds a uniformly random repair.
    pub fn random_repair<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ConsistentInstance {
        use rand::RngExt as _;
        let selected: Vec<FactId> = self
            .blocks
            .values()
            .map(|members| members[rng.random_range(0..members.len())])
            .collect();
        ConsistentInstance::from_fact_ids(self, selected)
    }

    /// Builds the repair containing the given facts, completing every other
    /// block with its first fact. Facts must belong to pairwise distinct
    /// blocks.
    pub fn repair_containing(&self, facts: &[Fact]) -> Result<ConsistentInstance, DbError> {
        let mut forced: HashMap<BlockId, FactId> = HashMap::new();
        for f in facts {
            let id = self
                .fact_id(f)
                .ok_or_else(|| DbError::UnknownFact(f.to_string()))?;
            if let Some(prev) = forced.insert(f.block_id(), id) {
                if prev != id {
                    return Err(DbError::InvalidRepairChoice(format!(
                        "two distinct facts of block {} requested",
                        f.block_id()
                    )));
                }
            }
        }
        let selected: Vec<FactId> = self
            .blocks
            .iter()
            .map(|(id, members)| forced.get(id).copied().unwrap_or(members[0]))
            .collect();
        Ok(ConsistentInstance::from_fact_ids(self, selected))
    }

    /// Merges another instance into this one (set union).
    pub fn extend_with(&mut self, other: &DatabaseInstance) {
        for &f in other.facts() {
            self.insert(f);
        }
    }

    /// Returns the union of two instances.
    pub fn union(&self, other: &DatabaseInstance) -> DatabaseInstance {
        let mut db = self.clone();
        db.extend_with(other);
        db
    }

    /// Internal: the ordered list of blocks, used by the repair iterator.
    pub(crate) fn block_members(&self) -> Vec<&[FactId]> {
        self.blocks.values().map(Vec::as_slice).collect()
    }
}

impl fmt::Debug for DatabaseInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DatabaseInstance ({} facts, {} blocks):",
            self.len(),
            self.block_count()
        )?;
        for fact in &self.facts {
            writeln!(f, "  {fact}")?;
        }
        Ok(())
    }
}

impl fmt::Display for DatabaseInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fact in &self.facts {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{fact}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Fact> for DatabaseInstance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> DatabaseInstance {
        DatabaseInstance::from_facts(iter)
    }
}

impl PartialEq for DatabaseInstance {
    fn eq(&self, other: &DatabaseInstance) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.facts.iter().all(|f| other.contains(f))
    }
}

impl Eq for DatabaseInstance {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The instance of Figure 1: R and S each contain {a,b} × {a,b}.
    fn figure_1() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for rel in ["R", "S"] {
            for x in ["a", "b"] {
                for y in ["a", "b"] {
                    db.insert_parsed(rel, x, y);
                }
            }
        }
        db
    }

    #[test]
    fn insert_deduplicates() {
        let mut db = DatabaseInstance::new();
        let id1 = db.insert_parsed("R", "a", "b");
        let id2 = db.insert_parsed("R", "a", "b");
        assert_eq!(id1, id2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn blocks_group_key_equal_facts() {
        let db = figure_1();
        assert_eq!(db.len(), 8);
        assert_eq!(db.block_count(), 4);
        assert_eq!(db.block(RelName::new("R"), Constant::new("a")).len(), 2);
        assert!(!db.is_consistent());
        assert_eq!(db.conflicting_blocks().len(), 4);
    }

    #[test]
    fn figure_1_has_sixteen_repairs() {
        let db = figure_1();
        assert_eq!(db.repair_count(), 16);
        assert_eq!(db.repairs().count(), 16);
        for repair in db.repairs() {
            assert_eq!(repair.len(), 4);
            assert!(repair.is_consistent_subset_of(&db));
        }
    }

    #[test]
    fn adom_collects_all_constants() {
        let db = figure_1();
        let adom: Vec<&str> = db.adom().iter().map(|c| c.as_str()).collect();
        assert_eq!(adom.len(), 2);
        assert!(adom.contains(&"a") && adom.contains(&"b"));
    }

    #[test]
    fn consistent_instance_detection() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "b", "c");
        db.insert_parsed("S", "a", "b");
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), 1);
        db.insert_parsed("R", "a", "c");
        assert!(!db.is_consistent());
        assert_eq!(db.repair_count(), 2);
    }

    #[test]
    fn repair_from_choices_validates_input() {
        let db = figure_1();
        assert!(db.repair_from_choices(&[0, 0, 0, 0]).is_ok());
        assert!(db.repair_from_choices(&[0, 0, 0]).is_err());
        assert!(db.repair_from_choices(&[0, 0, 0, 5]).is_err());
    }

    #[test]
    fn repair_containing_forces_the_given_facts() {
        let db = figure_1();
        let fact = Fact::parse("R", "a", "b");
        let repair = db.repair_containing(&[fact]).unwrap();
        assert!(repair.contains(&fact));
        assert!(!repair.contains(&Fact::parse("R", "a", "a")));
        // Conflicting forced facts are rejected.
        assert!(db
            .repair_containing(&[Fact::parse("R", "a", "a"), Fact::parse("R", "a", "b")])
            .is_err());
        // Unknown facts are rejected.
        assert!(db.repair_containing(&[Fact::parse("T", "a", "b")]).is_err());
    }

    #[test]
    fn random_repair_is_a_repair() {
        let db = figure_1();
        let mut rng = rand::rng();
        for _ in 0..10 {
            let r = db.random_repair(&mut rng);
            assert_eq!(r.len(), 4);
            assert!(r.is_consistent_subset_of(&db));
        }
    }

    #[test]
    fn union_merges_fact_sets() {
        let mut a = DatabaseInstance::new();
        a.insert_parsed("R", "1", "2");
        let mut b = DatabaseInstance::new();
        b.insert_parsed("R", "1", "2");
        b.insert_parsed("S", "2", "3");
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u, b);
    }

    #[test]
    fn equality_is_set_equality() {
        let mut a = DatabaseInstance::new();
        a.insert_parsed("R", "1", "2");
        a.insert_parsed("S", "2", "3");
        let mut b = DatabaseInstance::new();
        b.insert_parsed("S", "2", "3");
        b.insert_parsed("R", "1", "2");
        assert_eq!(a, b);
    }
}
