//! # cqa-db
//!
//! The database substrate for the path-query CQA reproduction: inconsistent
//! database instances over binary relations with primary keys, blocks,
//! repairs, and paths.
//!
//! ```
//! use cqa_db::prelude::*;
//! use cqa_core::prelude::*;
//!
//! let mut db = DatabaseInstance::new();
//! db.insert_parsed("R", "0", "1");
//! db.insert_parsed("R", "0", "2"); // conflicts with the previous fact
//! db.insert_parsed("X", "1", "3");
//!
//! assert!(!db.is_consistent());
//! assert_eq!(db.repair_count(), 2);
//! let q = PathQuery::parse("RX").unwrap();
//! let satisfied_everywhere = db.repairs().all(|r| r.satisfies_word(q.word()));
//! assert!(!satisfied_everywhere);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod fact;
pub mod family;
pub mod instance;
pub mod path;
pub mod repair;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::codec::{
        family_from_text, family_to_text, from_text, to_text, FamilyRepr, InstanceRepr,
    };
    pub use crate::error::DbError;
    pub use crate::fact::{BlockId, Constant, Fact, FactId};
    pub use crate::family::InstanceFamily;
    pub use crate::instance::DatabaseInstance;
    pub use crate::path::{
        consistent_path_endpoints, embeddings, has_path, paths_with_trace, paths_with_trace_from,
        reachable_by_trace, DbPath,
    };
    pub use crate::repair::{ConsistentInstance, RepairsIter};
}
