//! Facts and constants.

use std::fmt;

use cqa_core::symbol::{RelName, Symbol};

/// A database constant (an element of the active domain).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constant(pub Symbol);

impl Constant {
    /// Interns a constant.
    pub fn new(s: &str) -> Constant {
        Constant(Symbol::new(s))
    }

    /// A numbered constant `c{i}`, convenient for generators.
    pub fn numbered(i: usize) -> Constant {
        Constant(Symbol::new(&format!("c{i}")))
    }

    /// The constant as a string.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying symbol.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Constant({})", self.as_str())
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Constant {
        Constant::new(s)
    }
}

impl From<Symbol> for Constant {
    fn from(s: Symbol) -> Constant {
        Constant(s)
    }
}

/// A fact `R(key, value)` over a binary relation whose first position is the
/// primary key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The relation name.
    pub rel: RelName,
    /// The primary-key value.
    pub key: Constant,
    /// The non-key value.
    pub value: Constant,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelName, key: Constant, value: Constant) -> Fact {
        Fact { rel, key, value }
    }

    /// Convenience constructor from string slices.
    pub fn parse(rel: &str, key: &str, value: &str) -> Fact {
        Fact::new(RelName::new(rel), Constant::new(key), Constant::new(value))
    }

    /// True iff the two facts are *key-equal*: same relation name and same
    /// primary-key value (Section 2).
    pub fn key_equal(&self, other: &Fact) -> bool {
        self.rel == other.rel && self.key == other.key
    }

    /// The block identifier `(R, c)` this fact belongs to.
    pub fn block_id(&self) -> BlockId {
        BlockId {
            rel: self.rel,
            key: self.key,
        }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.rel, self.key, self.value)
    }
}

/// Identifier of a block: a relation name together with a primary-key value.
/// The block `R(c, ∗)` contains all facts with relation name `R` and key `c`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The relation name.
    pub rel: RelName,
    /// The primary-key value.
    pub key: Constant,
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, ∗)", self.rel, self.key)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, ∗)", self.rel, self.key)
    }
}

/// A stable identifier of a fact within a [`crate::instance::DatabaseInstance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_requires_same_relation_and_key() {
        let a = Fact::parse("R", "1", "2");
        let b = Fact::parse("R", "1", "3");
        let c = Fact::parse("S", "1", "2");
        let d = Fact::parse("R", "2", "2");
        assert!(a.key_equal(&b));
        assert!(!a.key_equal(&c));
        assert!(!a.key_equal(&d));
        assert!(a.key_equal(&a));
    }

    #[test]
    fn block_id_groups_key_equal_facts() {
        let a = Fact::parse("R", "1", "2");
        let b = Fact::parse("R", "1", "3");
        assert_eq!(a.block_id(), b.block_id());
        assert_eq!(a.block_id().to_string(), "R(1, ∗)");
    }

    #[test]
    fn facts_display_in_standard_notation() {
        assert_eq!(Fact::parse("R", "a", "b").to_string(), "R(a, b)");
    }

    #[test]
    fn constants_are_interned() {
        assert_eq!(Constant::new("a"), Constant::new("a"));
        assert_ne!(Constant::new("a"), Constant::new("b"));
        assert_eq!(Constant::numbered(7).as_str(), "c7");
    }
}
