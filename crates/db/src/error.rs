//! Error types for the database crate.

use std::fmt;

/// Errors produced by database-instance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A repair choice vector did not match the block structure.
    InvalidRepairChoice(String),
    /// A referenced fact is not part of the instance.
    UnknownFact(String),
    /// A sequence of facts does not form a path.
    BrokenPath(String),
    /// Path enumeration exceeded the configured limit.
    PathLimitExceeded(usize),
    /// A textual instance encoding could not be parsed.
    ParseError(String),
    /// A sectioned family encoding repeated a section that may appear only
    /// once (the `[prefix]` header).
    DuplicateSection {
        /// 1-based line number of the repeated header.
        line: usize,
        /// The repeated section name (without brackets).
        section: String,
    },
    /// A sectioned family encoding placed a header or fact where the format
    /// does not allow it (a `[delta]` header or fact before `[prefix]`).
    MisplacedSection {
        /// 1-based line number of the misplaced line.
        line: usize,
        /// What was found there.
        found: String,
    },
    /// A sectioned family encoding never opened a required section (a
    /// family without a `[prefix]` header is not a family, even if empty).
    MissingSection {
        /// The absent section name (without brackets).
        section: String,
    },
    /// A sectioned family encoding used a section header this format does
    /// not define (anything other than `[prefix]` / `[delta]`).
    UnknownSection {
        /// 1-based line number of the unknown header.
        line: usize,
        /// The unknown section name (without brackets).
        section: String,
    },
    /// A fact line carried the wrong number of fields (every fact is the
    /// binary `REL KEY VALUE`).
    ArityMismatch {
        /// 1-based line number of the offending fact.
        line: usize,
        /// Number of whitespace-separated fields found.
        found: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidRepairChoice(msg) => write!(f, "invalid repair choice: {msg}"),
            DbError::UnknownFact(msg) => write!(f, "unknown fact: {msg}"),
            DbError::BrokenPath(msg) => write!(f, "broken path: {msg}"),
            DbError::PathLimitExceeded(limit) => {
                write!(f, "path enumeration exceeded the limit of {limit} paths")
            }
            DbError::ParseError(msg) => write!(f, "parse error: {msg}"),
            DbError::DuplicateSection { line, section } => {
                write!(f, "line {line}: duplicate [{section}] section")
            }
            DbError::MisplacedSection { line, found } => {
                write!(f, "line {line}: {found} before the [prefix] header")
            }
            DbError::MissingSection { section } => {
                write!(f, "missing [{section}] section")
            }
            DbError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            DbError::ArityMismatch { line, found } => {
                write!(
                    f,
                    "line {line}: expected the 3 fields of `REL KEY VALUE`, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_payloads() {
        assert!(DbError::UnknownFact("R(a, b)".into())
            .to_string()
            .contains("R(a, b)"));
        assert!(DbError::PathLimitExceeded(7).to_string().contains('7'));
    }
}
