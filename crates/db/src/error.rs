//! Error types for the database crate.

use std::fmt;

/// Errors produced by database-instance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A repair choice vector did not match the block structure.
    InvalidRepairChoice(String),
    /// A referenced fact is not part of the instance.
    UnknownFact(String),
    /// A sequence of facts does not form a path.
    BrokenPath(String),
    /// Path enumeration exceeded the configured limit.
    PathLimitExceeded(usize),
    /// A textual instance encoding could not be parsed.
    ParseError(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidRepairChoice(msg) => write!(f, "invalid repair choice: {msg}"),
            DbError::UnknownFact(msg) => write!(f, "unknown fact: {msg}"),
            DbError::BrokenPath(msg) => write!(f, "broken path: {msg}"),
            DbError::PathLimitExceeded(limit) => {
                write!(f, "path enumeration exceeded the limit of {limit} paths")
            }
            DbError::ParseError(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_payloads() {
        assert!(DbError::UnknownFact("R(a, b)".into())
            .to_string()
            .contains("R(a, b)"));
        assert!(DbError::PathLimitExceeded(7).to_string().contains('7'));
    }
}
