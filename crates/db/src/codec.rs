//! Textual encodings of database instances and instance families.
//!
//! The text format is one fact per line: `R key value`, with `#`-comments and
//! blank lines ignored. It is convenient for checked-in test fixtures and for
//! piping instances between the example binaries. The `*Repr` types are
//! plain-data mirrors of the interned types, suitable for any serializer.
//!
//! An [`crate::family::InstanceFamily`] adds section headers to the same
//! line format: a `[prefix]` section followed by one `[delta]` section per
//! request (see [`family_to_text`] / [`family_from_text`]).

use crate::error::DbError;
use crate::fact::Fact;
use crate::family::InstanceFamily;
use crate::instance::DatabaseInstance;

/// Serializable representation of a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactRepr {
    /// Relation name.
    pub rel: String,
    /// Primary-key value.
    pub key: String,
    /// Non-key value.
    pub value: String,
}

impl From<Fact> for FactRepr {
    fn from(f: Fact) -> FactRepr {
        FactRepr {
            rel: f.rel.as_str().to_owned(),
            key: f.key.as_str().to_owned(),
            value: f.value.as_str().to_owned(),
        }
    }
}

impl From<&FactRepr> for Fact {
    fn from(r: &FactRepr) -> Fact {
        Fact::parse(&r.rel, &r.key, &r.value)
    }
}

/// Serializable representation of a whole instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceRepr {
    /// All facts of the instance.
    pub facts: Vec<FactRepr>,
}

impl From<&DatabaseInstance> for InstanceRepr {
    fn from(db: &DatabaseInstance) -> InstanceRepr {
        InstanceRepr {
            facts: db.facts().iter().copied().map(FactRepr::from).collect(),
        }
    }
}

impl From<&InstanceRepr> for DatabaseInstance {
    fn from(repr: &InstanceRepr) -> DatabaseInstance {
        DatabaseInstance::from_facts(repr.facts.iter().map(Fact::from))
    }
}

/// Renders an instance in the line-based text format.
pub fn to_text(db: &DatabaseInstance) -> String {
    let mut out = String::new();
    for fact in db.facts() {
        out.push_str(fact.rel.as_str());
        out.push(' ');
        out.push_str(fact.key.as_str());
        out.push(' ');
        out.push_str(fact.value.as_str());
        out.push('\n');
    }
    out
}

/// Parses an instance from the line-based text format.
pub fn from_text(text: &str) -> Result<DatabaseInstance, DbError> {
    let mut db = DatabaseInstance::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(DbError::ArityMismatch {
                line: lineno + 1,
                found: parts.len(),
            });
        }
        db.insert_parsed(parts[0], parts[1], parts[2]);
    }
    Ok(db)
}

/// Serializable representation of an instance family: the shared prefix and
/// one delta per request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FamilyRepr {
    /// The shared prefix instance.
    pub prefix: InstanceRepr,
    /// Per-request delta instances, in request order.
    pub deltas: Vec<InstanceRepr>,
}

impl From<&InstanceFamily> for FamilyRepr {
    fn from(family: &InstanceFamily) -> FamilyRepr {
        FamilyRepr {
            prefix: InstanceRepr::from(family.prefix()),
            deltas: family.deltas().iter().map(InstanceRepr::from).collect(),
        }
    }
}

impl From<&FamilyRepr> for InstanceFamily {
    fn from(repr: &FamilyRepr) -> InstanceFamily {
        InstanceFamily::with_deltas(
            DatabaseInstance::from(&repr.prefix),
            repr.deltas.iter().map(DatabaseInstance::from).collect(),
        )
    }
}

/// Renders an instance family in the sectioned text format: a `[prefix]`
/// header, its facts, then one `[delta]` header per request followed by that
/// delta's facts.
pub fn family_to_text(family: &InstanceFamily) -> String {
    let mut out = String::from("[prefix]\n");
    out.push_str(&to_text(family.prefix()));
    for delta in family.deltas() {
        out.push_str("[delta]\n");
        out.push_str(&to_text(delta));
    }
    out
}

/// Parses an instance family from the sectioned text format. The `[prefix]`
/// header must come first and exactly once (facts or `[delta]` headers
/// before it are rejected); each `[delta]` header opens one request, which
/// may be empty. Rejections carry typed [`DbError`] variants —
/// [`DbError::DuplicateSection`], [`DbError::MisplacedSection`],
/// [`DbError::UnknownSection`] and [`DbError::ArityMismatch`] — so a wire
/// boundary (`cqa-server`'s `LOAD`) can report *what* was malformed instead
/// of a free-form string.
pub fn family_from_text(text: &str) -> Result<InstanceFamily, DbError> {
    let mut seen_prefix = false;
    let mut prefix = DatabaseInstance::new();
    let mut deltas: Vec<DatabaseInstance> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[prefix]" => {
                if seen_prefix {
                    return Err(DbError::DuplicateSection {
                        line: lineno,
                        section: "prefix".to_owned(),
                    });
                }
                seen_prefix = true;
            }
            "[delta]" => {
                if !seen_prefix {
                    return Err(DbError::MisplacedSection {
                        line: lineno,
                        found: "[delta] header".to_owned(),
                    });
                }
                deltas.push(DatabaseInstance::new());
            }
            header if header.starts_with('[') && header.ends_with(']') => {
                return Err(DbError::UnknownSection {
                    line: lineno,
                    section: header[1..header.len() - 1].to_owned(),
                });
            }
            _ => {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(DbError::ArityMismatch {
                        line: lineno,
                        found: parts.len(),
                    });
                }
                if !seen_prefix {
                    return Err(DbError::MisplacedSection {
                        line: lineno,
                        found: format!("fact {line:?}"),
                    });
                }
                let fact = Fact::parse(parts[0], parts[1], parts[2]);
                match deltas.last_mut() {
                    Some(delta) => delta.insert(fact),
                    None => prefix.insert(fact),
                };
            }
        }
    }
    if !seen_prefix {
        return Err(DbError::MissingSection {
            section: "prefix".to_owned(),
        });
    }
    Ok(InstanceFamily::with_deltas(prefix, deltas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("X", "2", "3");
        let text = to_text(&db);
        let back = from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn text_parser_skips_comments_and_blank_lines() {
        let db = from_text("# a comment\n\nR a b\n  \nS b c\n").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert_eq!(
            from_text("R a"),
            Err(DbError::ArityMismatch { line: 1, found: 2 })
        );
        assert_eq!(
            from_text("R a b\nR a b c\n"),
            Err(DbError::ArityMismatch { line: 2, found: 4 })
        );
    }

    #[test]
    fn family_text_round_trip() {
        let mut prefix = DatabaseInstance::new();
        prefix.insert_parsed("R", "a", "b");
        prefix.insert_parsed("S", "b", "c");
        let mut d0 = DatabaseInstance::new();
        d0.insert_parsed("R", "c", "d");
        let d1 = DatabaseInstance::new(); // empty delta is legal
        let family = InstanceFamily::with_deltas(prefix, vec![d0, d1]);
        let text = family_to_text(&family);
        assert!(text.starts_with("[prefix]\n"));
        assert_eq!(text.matches("[delta]").count(), 2);
        let back = family_from_text(&text).unwrap();
        assert_eq!(family, back);
        // Comments and blank lines are tolerated anywhere.
        let commented = format!("# family fixture\n\n{text}\n# end\n");
        assert_eq!(family_from_text(&commented).unwrap(), family);
    }

    #[test]
    fn family_parser_rejects_facts_before_the_prefix_header() {
        match family_from_text("# leading comment\nR a b\n") {
            Err(DbError::MisplacedSection { line: 2, found }) => {
                assert!(found.contains("R a b"), "got {found:?}")
            }
            other => panic!("expected MisplacedSection, got {other:?}"),
        }
    }

    #[test]
    fn family_parser_rejects_delta_before_prefix() {
        assert_eq!(
            family_from_text("[delta]\nR a b\n"),
            Err(DbError::MisplacedSection {
                line: 1,
                found: "[delta] header".to_owned()
            })
        );
    }

    #[test]
    fn family_parser_rejects_duplicate_prefix_sections() {
        // Both a back-to-back repeat and a [prefix] reopened after deltas.
        assert_eq!(
            family_from_text("[prefix]\n[prefix]\n"),
            Err(DbError::DuplicateSection {
                line: 2,
                section: "prefix".to_owned()
            })
        );
        assert_eq!(
            family_from_text("[prefix]\nR a b\n[delta]\n[prefix]\n"),
            Err(DbError::DuplicateSection {
                line: 4,
                section: "prefix".to_owned()
            })
        );
    }

    #[test]
    fn family_parser_rejects_unknown_sections() {
        assert_eq!(
            family_from_text("[prefix]\n[snapshot]\n"),
            Err(DbError::UnknownSection {
                line: 2,
                section: "snapshot".to_owned()
            })
        );
        // Even before the prefix, an unknown header is reported as such.
        assert_eq!(
            family_from_text("[snapshot]\n"),
            Err(DbError::UnknownSection {
                line: 1,
                section: "snapshot".to_owned()
            })
        );
    }

    #[test]
    fn family_parser_rejects_inconsistent_arities() {
        assert_eq!(
            family_from_text("[prefix]\nR a\n"),
            Err(DbError::ArityMismatch { line: 2, found: 2 })
        );
        assert_eq!(
            family_from_text("[prefix]\nR a b\n[delta]\nR a b c\n"),
            Err(DbError::ArityMismatch { line: 4, found: 4 })
        );
    }

    #[test]
    fn family_parser_requires_a_prefix_section() {
        // An empty (or comments-only) payload is not an empty family — it
        // is not a family at all, and a wire boundary must reject it.
        assert_eq!(
            family_from_text(""),
            Err(DbError::MissingSection {
                section: "prefix".to_owned()
            })
        );
        assert_eq!(
            family_from_text("# nothing here\n\n"),
            Err(DbError::MissingSection {
                section: "prefix".to_owned()
            })
        );
        // An empty prefix *section* is still a family.
        assert!(family_from_text("[prefix]\n").unwrap().is_empty());
    }

    #[test]
    fn prefix_only_families_parse_to_zero_requests() {
        let empty = family_from_text("[prefix]\nR a b\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.prefix().len(), 1);
    }

    #[test]
    fn family_repr_round_trip() {
        let mut prefix = DatabaseInstance::new();
        prefix.insert_parsed("R", "0", "1");
        let mut delta = DatabaseInstance::new();
        delta.insert_parsed("R", "1", "2");
        let family = InstanceFamily::with_deltas(prefix, vec![delta]);
        let repr = FamilyRepr::from(&family);
        assert_eq!(repr.deltas.len(), 1);
        assert_eq!(InstanceFamily::from(&repr), family);
    }

    #[test]
    fn repr_round_trip() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("S", "1", "2");
        let repr = InstanceRepr::from(&db);
        let back = DatabaseInstance::from(&repr);
        assert_eq!(db, back);
        // Representations are plain data, renderable by any serializer.
        let json_like = format!("{repr:?}");
        assert!(json_like.contains("\"R\"") || json_like.contains("rel"));
    }
}
