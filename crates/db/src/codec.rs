//! Textual encodings of database instances.
//!
//! The text format is one fact per line: `R key value`, with `#`-comments and
//! blank lines ignored. It is convenient for checked-in test fixtures and for
//! piping instances between the example binaries. The `*Repr` types are
//! plain-data mirrors of the interned types, suitable for any serializer.

use crate::error::DbError;
use crate::fact::Fact;
use crate::instance::DatabaseInstance;

/// Serializable representation of a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactRepr {
    /// Relation name.
    pub rel: String,
    /// Primary-key value.
    pub key: String,
    /// Non-key value.
    pub value: String,
}

impl From<Fact> for FactRepr {
    fn from(f: Fact) -> FactRepr {
        FactRepr {
            rel: f.rel.as_str().to_owned(),
            key: f.key.as_str().to_owned(),
            value: f.value.as_str().to_owned(),
        }
    }
}

impl From<&FactRepr> for Fact {
    fn from(r: &FactRepr) -> Fact {
        Fact::parse(&r.rel, &r.key, &r.value)
    }
}

/// Serializable representation of a whole instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceRepr {
    /// All facts of the instance.
    pub facts: Vec<FactRepr>,
}

impl From<&DatabaseInstance> for InstanceRepr {
    fn from(db: &DatabaseInstance) -> InstanceRepr {
        InstanceRepr {
            facts: db.facts().iter().copied().map(FactRepr::from).collect(),
        }
    }
}

impl From<&InstanceRepr> for DatabaseInstance {
    fn from(repr: &InstanceRepr) -> DatabaseInstance {
        DatabaseInstance::from_facts(repr.facts.iter().map(Fact::from))
    }
}

/// Renders an instance in the line-based text format.
pub fn to_text(db: &DatabaseInstance) -> String {
    let mut out = String::new();
    for fact in db.facts() {
        out.push_str(fact.rel.as_str());
        out.push(' ');
        out.push_str(fact.key.as_str());
        out.push(' ');
        out.push_str(fact.value.as_str());
        out.push('\n');
    }
    out
}

/// Parses an instance from the line-based text format.
pub fn from_text(text: &str) -> Result<DatabaseInstance, DbError> {
    let mut db = DatabaseInstance::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(DbError::ParseError(format!(
                "line {}: expected `REL KEY VALUE`, got {line:?}",
                lineno + 1
            )));
        }
        db.insert_parsed(parts[0], parts[1], parts[2]);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("X", "2", "3");
        let text = to_text(&db);
        let back = from_text(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn text_parser_skips_comments_and_blank_lines() {
        let db = from_text("# a comment\n\nR a b\n  \nS b c\n").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        assert!(from_text("R a").is_err());
        assert!(from_text("R a b c").is_err());
    }

    #[test]
    fn repr_round_trip() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("S", "1", "2");
        let repr = InstanceRepr::from(&db);
        let back = DatabaseInstance::from(&repr);
        assert_eq!(db, back);
        // Representations are plain data, renderable by any serializer.
        let json_like = format!("{repr:?}");
        assert!(json_like.contains("\"R\"") || json_like.contains("rel"));
    }
}
