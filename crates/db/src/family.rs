//! Families of database instances extending a shared prefix.
//!
//! Production certain-answer traffic rarely asks about unrelated instances:
//! a batching front-end typically sees thousands of requests that all extend
//! one common EDB prefix (a published base dataset, a tenant's snapshot, a
//! daily import) with a small per-request delta. An [`InstanceFamily`] names
//! that shape explicitly — a prefix instance plus per-request delta
//! instances, where request `i` denotes the full instance
//! `prefix ∪ deltas[i]` — so the layers above can exploit the sharing:
//! `cqa_solver::session::CertaintySession::certain_batch_family` loads the
//! prefix into a frozen copy-on-write base store once and forks an O(delta)
//! overlay per request, instead of re-materializing the prefix per request.
//!
//! A family is purely a *description* of the workload; [`materialize`]
//! recovers the plain per-request instances for any consumer that does not
//! understand sharing (and for differential tests pinning the shared path to
//! the fresh-load path). Text and plain-data codecs live in
//! [`crate::codec`] ([`crate::codec::family_to_text`] /
//! [`crate::codec::FamilyRepr`]).
//!
//! [`materialize`]: InstanceFamily::materialize

use crate::instance::DatabaseInstance;

/// A shared EDB prefix plus per-request delta instances; request `i` stands
/// for the full instance `prefix ∪ deltas[i]`.
///
/// Deltas may overlap the prefix (shared facts are deduplicated by the set
/// semantics of [`DatabaseInstance`]) and may introduce new constants — the
/// active domain of request `i` is `adom(prefix) ∪ adom(deltas[i])`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceFamily {
    prefix: DatabaseInstance,
    deltas: Vec<DatabaseInstance>,
}

impl InstanceFamily {
    /// Creates a family with the given shared prefix and no requests yet.
    pub fn new(prefix: DatabaseInstance) -> InstanceFamily {
        InstanceFamily {
            prefix,
            deltas: Vec::new(),
        }
    }

    /// Creates a family from a prefix and its per-request deltas.
    pub fn with_deltas(prefix: DatabaseInstance, deltas: Vec<DatabaseInstance>) -> InstanceFamily {
        InstanceFamily { prefix, deltas }
    }

    /// Appends one request (its delta over the prefix).
    pub fn push_delta(&mut self, delta: DatabaseInstance) {
        self.deltas.push(delta);
    }

    /// The shared prefix instance.
    pub fn prefix(&self) -> &DatabaseInstance {
        &self.prefix
    }

    /// The per-request delta instances, in request order.
    pub fn deltas(&self) -> &[DatabaseInstance] {
        &self.deltas
    }

    /// Number of requests (deltas) in the family.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True iff the family carries no requests.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The full instance of request `i`: `prefix ∪ deltas[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn materialize(&self, i: usize) -> DatabaseInstance {
        self.prefix.union(&self.deltas[i])
    }

    /// The full instances of every request, in request order — the fresh-load
    /// view of the family, for consumers that do not exploit sharing.
    pub fn materialize_all(&self) -> Vec<DatabaseInstance> {
        (0..self.len()).map(|i| self.materialize(i)).collect()
    }

    /// Fraction of the average full instance's facts that come from the
    /// shared prefix — `1.0` means every request is exactly the prefix, `0.0`
    /// a disjoint delta-only family. Diagnostic; duplicated facts count for
    /// the prefix.
    pub fn shared_fraction(&self) -> f64 {
        if self.deltas.is_empty() || self.prefix.is_empty() {
            return if self.deltas.is_empty() { 1.0 } else { 0.0 };
        }
        let total: usize = (0..self.len()).map(|i| self.materialize(i).len()).sum();
        (self.len() * self.prefix.len()) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(facts: &[(&str, &str, &str)]) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for &(r, k, v) in facts {
            db.insert_parsed(r, k, v);
        }
        db
    }

    #[test]
    fn materialize_unions_prefix_and_delta() {
        let prefix = instance(&[("R", "a", "b"), ("S", "b", "c")]);
        let mut family = InstanceFamily::new(prefix.clone());
        assert!(family.is_empty());
        family.push_delta(instance(&[("R", "c", "d")]));
        family.push_delta(instance(&[("R", "a", "b")])); // fully shared
        assert_eq!(family.len(), 2);

        let first = family.materialize(0);
        assert_eq!(first.len(), 3);
        assert!(first.contains(&crate::fact::Fact::parse("R", "c", "d")));

        // A delta repeating prefix facts materializes to the prefix itself.
        assert_eq!(family.materialize(1), prefix);
        assert_eq!(family.materialize_all().len(), 2);
    }

    #[test]
    fn shared_fraction_reflects_the_split() {
        let prefix = instance(&[("R", "a", "b"), ("R", "b", "c"), ("R", "c", "d")]);
        let family = InstanceFamily::with_deltas(
            prefix.clone(),
            vec![instance(&[("R", "d", "e")]), instance(&[("R", "d", "f")])],
        );
        let f = family.shared_fraction();
        assert!((f - 0.75).abs() < 1e-9, "got {f}");
        assert!((InstanceFamily::new(prefix).shared_fraction() - 1.0).abs() < 1e-9);
    }
}
