//! Consistent instances (repairs) and repair enumeration.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cqa_core::query::{GeneralizedPathQuery, Term};
use cqa_core::symbol::RelName;
use cqa_core::word::Word;

use crate::fact::{Constant, Fact, FactId};
use crate::instance::DatabaseInstance;

/// A consistent database instance: at most one fact per block.
///
/// A repair of a [`DatabaseInstance`] is a maximal consistent subinstance;
/// it contains exactly one fact of every block. Because every key has at most
/// one outgoing edge per relation, a consistent instance supports `O(1)`
/// lookup of "the" value of `R(c, ·)`.
#[derive(Clone)]
pub struct ConsistentInstance {
    out: BTreeMap<(RelName, Constant), Constant>,
    facts: Vec<Fact>,
    adom: BTreeSet<Constant>,
}

impl PartialEq for ConsistentInstance {
    fn eq(&self, other: &ConsistentInstance) -> bool {
        self.out == other.out
    }
}

impl Eq for ConsistentInstance {}

impl ConsistentInstance {
    /// Builds a consistent instance from facts.
    ///
    /// # Panics
    /// Panics if two distinct key-equal facts are supplied.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> ConsistentInstance {
        let mut out = BTreeMap::new();
        let mut fact_vec = Vec::new();
        let mut adom = BTreeSet::new();
        for f in facts {
            match out.insert((f.rel, f.key), f.value) {
                Some(prev) if prev != f.value => {
                    panic!("facts {}({}, {prev}) and {f} are key-equal", f.rel, f.key)
                }
                Some(_) => continue,
                None => {}
            }
            adom.insert(f.key);
            adom.insert(f.value);
            fact_vec.push(f);
        }
        ConsistentInstance {
            out,
            facts: fact_vec,
            adom,
        }
    }

    /// Builds a consistent instance from fact identifiers of a database.
    pub(crate) fn from_fact_ids(db: &DatabaseInstance, ids: Vec<FactId>) -> ConsistentInstance {
        ConsistentInstance::from_facts(ids.into_iter().map(|id| db.fact(id)))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The facts of the instance.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The active domain of the instance.
    pub fn adom(&self) -> &BTreeSet<Constant> {
        &self.adom
    }

    /// True iff the instance contains the fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.out.get(&(fact.rel, fact.key)) == Some(&fact.value)
    }

    /// The unique value `b` with `R(key, b)` in the instance, if any.
    pub fn out(&self, rel: RelName, key: Constant) -> Option<Constant> {
        self.out.get(&(rel, key)).copied()
    }

    /// Converts back into a (consistent) [`DatabaseInstance`].
    pub fn to_database(&self) -> DatabaseInstance {
        DatabaseInstance::from_facts(self.facts.iter().copied())
    }

    /// True iff every fact of this instance belongs to `db` and the instance
    /// selects at most one fact per block of `db`.
    pub fn is_consistent_subset_of(&self, db: &DatabaseInstance) -> bool {
        self.facts.iter().all(|f| db.contains(f))
    }

    /// True iff this instance is a *repair* of `db`: a consistent subset
    /// containing exactly one fact from every block.
    pub fn is_repair_of(&self, db: &DatabaseInstance) -> bool {
        self.is_consistent_subset_of(db) && self.len() == db.block_count()
    }

    /// Follows the unique path with the given trace starting at `start`,
    /// returning the endpoint if the whole trace can be traversed.
    pub fn walk(&self, start: Constant, trace: &Word) -> Option<Constant> {
        let mut current = start;
        for rel in trace.iter() {
            current = self.out(rel, current)?;
        }
        Some(current)
    }

    /// True iff the instance contains a path with trace `word` starting at
    /// `start`. Deterministic because the instance is consistent.
    pub fn satisfies_word_from(&self, start: Constant, word: &Word) -> bool {
        self.walk(start, word).is_some()
    }

    /// True iff the instance contains a path with trace `word` starting
    /// anywhere; this is exactly "the instance satisfies the Boolean path
    /// query represented by `word`".
    pub fn satisfies_word(&self, word: &Word) -> bool {
        if word.is_empty() {
            return true;
        }
        self.adom.iter().any(|&c| self.satisfies_word_from(c, word))
    }

    /// All constants from which a path with trace `word` starts.
    pub fn starts_of_word(&self, word: &Word) -> BTreeSet<Constant> {
        self.adom
            .iter()
            .copied()
            .filter(|&c| self.satisfies_word_from(c, word))
            .collect()
    }

    /// True iff the instance satisfies a generalized path query (constants in
    /// the query must match the constants on the path).
    pub fn satisfies_generalized(&self, query: &GeneralizedPathQuery) -> bool {
        let terms = query.terms();
        let word = query.word();
        let start_candidates: Vec<Constant> = match terms[0] {
            Term::Const(c) => vec![Constant(c)],
            Term::Var(_) => self.adom.iter().copied().collect(),
        };
        'starts: for start in start_candidates {
            let mut current = start;
            for (i, rel) in word.iter().enumerate() {
                match self.out(rel, current) {
                    Some(next) => {
                        if let Term::Const(expected) = terms[i + 1] {
                            if next != Constant(expected) {
                                continue 'starts;
                            }
                        }
                        current = next;
                    }
                    None => continue 'starts,
                }
            }
            return true;
        }
        false
    }
}

impl fmt::Debug for ConsistentInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConsistentInstance {{ ")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{fact}")?;
        }
        f.write_str(" }")
    }
}

/// Iterator over all repairs of a database instance, in the lexicographic
/// order of per-block choices.
pub struct RepairsIter<'a> {
    db: &'a DatabaseInstance,
    blocks: Vec<&'a [FactId]>,
    /// Current choice per block; `None` once exhausted.
    choices: Option<Vec<usize>>,
}

impl<'a> RepairsIter<'a> {
    pub(crate) fn new(db: &'a DatabaseInstance) -> RepairsIter<'a> {
        let blocks = db.block_members();
        let choices = Some(vec![0; blocks.len()]);
        RepairsIter {
            db,
            blocks,
            choices,
        }
    }

    /// The number of repairs remaining is not tracked; use
    /// [`DatabaseInstance::repair_count`] for the total.
    pub fn database(&self) -> &DatabaseInstance {
        self.db
    }
}

impl Iterator for RepairsIter<'_> {
    type Item = ConsistentInstance;

    fn next(&mut self) -> Option<ConsistentInstance> {
        let choices = self.choices.as_mut()?;
        let selected: Vec<FactId> = self
            .blocks
            .iter()
            .zip(choices.iter())
            .map(|(block, &c)| block[c])
            .collect();
        let repair = ConsistentInstance::from_fact_ids(self.db, selected);
        // Advance the mixed-radix counter.
        let mut pos = self.blocks.len();
        loop {
            if pos == 0 {
                self.choices = None;
                break;
            }
            pos -= 1;
            choices[pos] += 1;
            if choices[pos] < self.blocks[pos].len() {
                break;
            }
            choices[pos] = 0;
        }
        Some(repair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::query::PathQuery;
    use cqa_core::symbol::Symbol;

    fn sample_db() -> DatabaseInstance {
        // Figure 2: R(0,1), R(1,2), R(1,3), R(2,3), X(3,4).
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        db
    }

    #[test]
    fn figure_2_has_two_repairs() {
        let db = sample_db();
        assert_eq!(db.repair_count(), 2);
        let repairs: Vec<ConsistentInstance> = db.repairs().collect();
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            assert!(r.is_repair_of(&db));
        }
    }

    #[test]
    fn both_figure_2_repairs_satisfy_rrx() {
        let db = sample_db();
        let q = PathQuery::parse("RRX").unwrap();
        for r in db.repairs() {
            assert!(r.satisfies_word(q.word()));
        }
    }

    #[test]
    fn walk_follows_deterministic_edges() {
        let db = sample_db();
        let repair = db.repair_containing(&[Fact::parse("R", "1", "2")]).unwrap();
        let start = Constant::new("0");
        assert_eq!(
            repair.walk(start, &Word::from_letters("RRRX")),
            Some(Constant::new("4"))
        );
        assert_eq!(repair.walk(start, &Word::from_letters("RRX")), None);
        assert!(repair.satisfies_word_from(Constant::new("1"), &Word::from_letters("RRX")));
    }

    #[test]
    fn starts_of_word_matches_example_4() {
        // Example 4: in r1 (containing R(1,2)) the only path with exact trace
        // RRX starts in 1; in r2 (containing R(1,3)) it starts in 0.
        let db = sample_db();
        let q = Word::from_letters("RRX");
        let r1 = db.repair_containing(&[Fact::parse("R", "1", "2")]).unwrap();
        let r2 = db.repair_containing(&[Fact::parse("R", "1", "3")]).unwrap();
        assert_eq!(r1.starts_of_word(&q), BTreeSet::from([Constant::new("1")]));
        assert_eq!(r2.starts_of_word(&q), BTreeSet::from([Constant::new("0")]));
    }

    #[test]
    #[should_panic]
    fn conflicting_facts_are_rejected() {
        ConsistentInstance::from_facts([Fact::parse("R", "a", "b"), Fact::parse("R", "a", "c")]);
    }

    #[test]
    fn duplicate_facts_are_deduplicated() {
        let r = ConsistentInstance::from_facts([
            Fact::parse("R", "a", "b"),
            Fact::parse("R", "a", "b"),
        ]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn satisfies_generalized_checks_constants() {
        let db = sample_db();
        let repair = db.repair_containing(&[Fact::parse("R", "1", "3")]).unwrap();
        let q = PathQuery::parse("RR").unwrap();
        // R R ending at constant 3 holds (path 0 -> 1 -> 3).
        assert!(repair.satisfies_generalized(&q.ending_at(Symbol::new("3"))));
        // R R ending at constant 2 does not hold in this repair.
        assert!(!repair.satisfies_generalized(&q.ending_at(Symbol::new("2"))));
        // Rooted at 0: R R starting at 0 holds.
        assert!(repair.satisfies_generalized(&q.rooted_at(Symbol::new("0"))));
        // Rooted at 4: no outgoing R from 4.
        assert!(!repair.satisfies_generalized(&q.rooted_at(Symbol::new("4"))));
    }

    #[test]
    fn to_database_round_trip() {
        let db = sample_db();
        let repair = db.repairs().next().unwrap();
        let back = repair.to_database();
        assert_eq!(back.len(), repair.len());
        assert!(back.is_consistent());
    }

    #[test]
    fn repairs_iterator_is_exhaustive_and_distinct() {
        // 3 blocks of sizes 2, 3, 1 -> 6 repairs, all distinct.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "1");
        db.insert_parsed("R", "a", "2");
        db.insert_parsed("S", "b", "1");
        db.insert_parsed("S", "b", "2");
        db.insert_parsed("S", "b", "3");
        db.insert_parsed("T", "c", "1");
        let repairs: Vec<ConsistentInstance> = db.repairs().collect();
        assert_eq!(repairs.len(), 6);
        for i in 0..repairs.len() {
            for j in i + 1..repairs.len() {
                assert_ne!(repairs[i], repairs[j]);
            }
        }
    }
}
