//! Paths in database instances (Definition 6 and Definition 15).
//!
//! A *path* in an instance `db` is a sequence of facts
//! `R1(c1,c2), R2(c2,c3), …, Rn(cn,cn+1)`; its *trace* is the word
//! `R1 R2 … Rn`. A path is *consistent* if it does not contain two distinct
//! key-equal facts.

use std::collections::BTreeSet;

use cqa_core::word::Word;

use crate::error::DbError;
use crate::fact::{Constant, Fact, FactId};
use crate::instance::DatabaseInstance;

/// A path in a database instance, stored as the sequence of fact identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbPath {
    facts: Vec<FactId>,
}

impl DbPath {
    /// Builds a path from its fact identifiers, verifying that consecutive
    /// facts chain (`value` of one equals `key` of the next).
    pub fn new(db: &DatabaseInstance, facts: Vec<FactId>) -> Result<DbPath, DbError> {
        for pair in facts.windows(2) {
            let a = db.fact(pair[0]);
            let b = db.fact(pair[1]);
            if a.value != b.key {
                return Err(DbError::BrokenPath(format!("{a} does not chain with {b}")));
            }
        }
        Ok(DbPath { facts })
    }

    /// The fact identifiers along the path.
    pub fn fact_ids(&self) -> &[FactId] {
        &self.facts
    }

    /// The facts along the path.
    pub fn facts(&self, db: &DatabaseInstance) -> Vec<Fact> {
        self.facts.iter().map(|&id| db.fact(id)).collect()
    }

    /// The number of facts (the path length).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the path has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The trace of the path.
    pub fn trace(&self, db: &DatabaseInstance) -> Word {
        self.facts.iter().map(|&id| db.fact(id).rel).collect()
    }

    /// The start constant of the path, if nonempty.
    pub fn start(&self, db: &DatabaseInstance) -> Option<Constant> {
        self.facts.first().map(|&id| db.fact(id).key)
    }

    /// The end constant of the path, if nonempty.
    pub fn end(&self, db: &DatabaseInstance) -> Option<Constant> {
        self.facts.last().map(|&id| db.fact(id).value)
    }

    /// True iff the path contains no two *distinct* key-equal facts.
    pub fn is_consistent(&self, db: &DatabaseInstance) -> bool {
        let facts: Vec<Fact> = self.facts(db);
        for i in 0..facts.len() {
            for j in i + 1..facts.len() {
                if facts[i] != facts[j] && facts[i].key_equal(&facts[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// The set of distinct facts used by the path.
    pub fn fact_set(&self) -> BTreeSet<FactId> {
        self.facts.iter().copied().collect()
    }
}

/// Enumerates every path of `db` with the given trace, starting at `start`.
///
/// The number of such paths is `O(|db|^|trace|)` in the worst case; a `limit`
/// bounds the enumeration and an error is returned when it is exceeded.
pub fn paths_with_trace_from(
    db: &DatabaseInstance,
    start: Constant,
    trace: &Word,
    limit: usize,
) -> Result<Vec<DbPath>, DbError> {
    let mut results = Vec::new();
    let mut current: Vec<FactId> = Vec::with_capacity(trace.len());
    search_paths(db, start, trace, 0, &mut current, &mut results, limit)?;
    Ok(results)
}

fn search_paths(
    db: &DatabaseInstance,
    at: Constant,
    trace: &Word,
    depth: usize,
    current: &mut Vec<FactId>,
    results: &mut Vec<DbPath>,
    limit: usize,
) -> Result<(), DbError> {
    if depth == trace.len() {
        if results.len() >= limit {
            return Err(DbError::PathLimitExceeded(limit));
        }
        results.push(DbPath {
            facts: current.clone(),
        });
        return Ok(());
    }
    let rel = trace[depth];
    for &fact_id in db.block(rel, at) {
        current.push(fact_id);
        search_paths(
            db,
            db.fact(fact_id).value,
            trace,
            depth + 1,
            current,
            results,
            limit,
        )?;
        current.pop();
    }
    Ok(())
}

/// Enumerates every path of `db` with the given trace, starting anywhere.
pub fn paths_with_trace(
    db: &DatabaseInstance,
    trace: &Word,
    limit: usize,
) -> Result<Vec<DbPath>, DbError> {
    let mut all = Vec::new();
    if trace.is_empty() {
        return Ok(all);
    }
    let first = trace[0];
    let starts: BTreeSet<Constant> = db
        .facts()
        .iter()
        .filter(|f| f.rel == first)
        .map(|f| f.key)
        .collect();
    for start in starts {
        let remaining = limit.saturating_sub(all.len());
        let mut found = paths_with_trace_from(db, start, trace, remaining)?;
        all.append(&mut found);
    }
    Ok(all)
}

/// The distinct fact sets of every *embedding* of the path query `trace` in
/// `db` — i.e. the images `θ(q)` of all homomorphisms from the query to `db`.
/// Each embedding is returned as the set of facts it uses.
///
/// These are exactly the witnesses that must be avoided by a repair falsifying
/// the query, and are the clauses of the SAT encoding used by the coNP solver.
pub fn embeddings(
    db: &DatabaseInstance,
    trace: &Word,
    limit: usize,
) -> Result<Vec<BTreeSet<FactId>>, DbError> {
    let paths = paths_with_trace(db, trace, limit)?;
    let mut seen: BTreeSet<BTreeSet<FactId>> = BTreeSet::new();
    for p in paths {
        seen.insert(p.fact_set());
    }
    Ok(seen.into_iter().collect())
}

/// `db |= a --trace--> b` (Definition 15): there is a path from `a` to `b`
/// with the given trace.
pub fn has_path(db: &DatabaseInstance, from: Constant, trace: &Word, to: Constant) -> bool {
    reachable_by_trace(db, from, trace).contains(&to)
}

/// All constants reachable from `from` by a path with the given trace.
pub fn reachable_by_trace(
    db: &DatabaseInstance,
    from: Constant,
    trace: &Word,
) -> BTreeSet<Constant> {
    let mut frontier: BTreeSet<Constant> = BTreeSet::from([from]);
    for rel in trace.iter() {
        let mut next = BTreeSet::new();
        for &c in &frontier {
            for v in db.out_values(rel, c) {
                next.insert(v);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// All endpoints `d` such that `db |= from --trace-->--> d`, i.e. reachable by
/// a **consistent** path with the given trace (Definition 15).
pub fn consistent_path_endpoints(
    db: &DatabaseInstance,
    from: Constant,
    trace: &Word,
) -> BTreeSet<Constant> {
    let mut endpoints = BTreeSet::new();
    let mut used: Vec<FactId> = Vec::new();
    consistent_dfs(db, from, trace, 0, &mut used, &mut endpoints);
    endpoints
}

fn consistent_dfs(
    db: &DatabaseInstance,
    at: Constant,
    trace: &Word,
    depth: usize,
    used: &mut Vec<FactId>,
    endpoints: &mut BTreeSet<Constant>,
) {
    if depth == trace.len() {
        endpoints.insert(at);
        return;
    }
    let rel = trace[depth];
    for &fact_id in db.block(rel, at) {
        let fact = db.fact(fact_id);
        // Consistency: no other fact of the same block may already be used.
        let conflicts = used.iter().any(|&u| {
            let uf = db.fact(u);
            uf.key_equal(&fact) && uf != fact
        });
        if conflicts {
            continue;
        }
        used.push(fact_id);
        consistent_dfs(db, fact.value, trace, depth + 1, used, endpoints);
        used.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_2() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        db
    }

    #[test]
    fn paths_and_traces() {
        let db = figure_2();
        let word = Word::from_letters("RRR");
        let paths = paths_with_trace(&db, &word, 100).unwrap();
        // 0->1->2->3 is the only RRR path.
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.trace(&db), word);
        assert_eq!(p.start(&db), Some(Constant::new("0")));
        assert_eq!(p.end(&db), Some(Constant::new("3")));
        assert!(p.is_consistent(&db));
    }

    #[test]
    fn rrx_paths_in_figure_2() {
        let db = figure_2();
        let paths = paths_with_trace(&db, &Word::from_letters("RRX"), 100).unwrap();
        // 0 -> 1 -> 3 -> 4 (via R(1,3)) and 1 -> 2 -> 3 -> 4 (via R(1,2)).
        assert_eq!(paths.len(), 2);
        let starts: BTreeSet<Constant> = paths.iter().filter_map(|p| p.start(&db)).collect();
        assert_eq!(
            starts,
            BTreeSet::from([Constant::new("0"), Constant::new("1")])
        );
    }

    #[test]
    fn inconsistent_path_detection() {
        // R(a,a) loop: the path R(a,a), R(a,a) repeats the same fact, which is
        // allowed; but R(a,b), (back to a via S), R(a,c) would not be.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("S", "b", "a");
        db.insert_parsed("R", "a", "c");
        let rsr = Word::from_letters("RSR");
        let paths = paths_with_trace_from(&db, Constant::new("a"), &rsr, 100).unwrap();
        // Two RSR paths from a: via R(a,b),S(b,a),R(a,b)... wait the final R
        // can be R(a,b) or R(a,c); the one reusing R(a,b) is consistent, the
        // one combining R(a,b) and R(a,c) is not.
        assert_eq!(paths.len(), 2);
        let consistent: Vec<bool> = paths.iter().map(|p| p.is_consistent(&db)).collect();
        assert!(consistent.contains(&true));
        assert!(consistent.contains(&false));
        // Consistent endpoints from a with trace RSR: only b (via reusing R(a,b)).
        let endpoints = consistent_path_endpoints(&db, Constant::new("a"), &rsr);
        assert_eq!(endpoints, BTreeSet::from([Constant::new("b")]));
    }

    #[test]
    fn example_7_terminal_paths() {
        // db = {R(c,d), S(d,c), R(c,e), T(e,f)}: db |= c -RS->-> c and
        // c -RT->-> f ... via consistent paths, but no consistent RSRT path.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "c", "d");
        db.insert_parsed("S", "d", "c");
        db.insert_parsed("R", "c", "e");
        db.insert_parsed("T", "e", "f");
        let c = Constant::new("c");
        assert!(consistent_path_endpoints(&db, c, &Word::from_letters("RS")).contains(&c));
        assert!(consistent_path_endpoints(&db, c, &Word::from_letters("RT"))
            .contains(&Constant::new("f")));
        assert!(consistent_path_endpoints(&db, c, &Word::from_letters("RSRT")).is_empty());
        // The unrestricted (possibly inconsistent) reachability does find it.
        assert!(has_path(
            &db,
            c,
            &Word::from_letters("RSRT"),
            Constant::new("f")
        ));
    }

    #[test]
    fn embeddings_deduplicate_fact_sets() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "a");
        // The query RR has a single embedding {R(a,a)} (the fact is reused).
        let embs = embeddings(&db, &Word::from_letters("RR"), 10).unwrap();
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0].len(), 1);
    }

    #[test]
    fn limit_is_enforced() {
        let mut db = DatabaseInstance::new();
        for i in 0..10 {
            db.insert_parsed("R", "a", &format!("b{i}"));
        }
        let err = paths_with_trace(&db, &Word::from_letters("R"), 5);
        assert!(err.is_err());
    }

    #[test]
    fn reachability_by_trace() {
        let db = figure_2();
        let reach = reachable_by_trace(&db, Constant::new("0"), &Word::from_letters("RR"));
        assert_eq!(
            reach,
            BTreeSet::from([Constant::new("2"), Constant::new("3")])
        );
        assert!(has_path(
            &db,
            Constant::new("0"),
            &Word::from_letters("RRRX"),
            Constant::new("4")
        ));
        assert!(!has_path(
            &db,
            Constant::new("0"),
            &Word::from_letters("RX"),
            Constant::new("4")
        ));
    }

    #[test]
    fn broken_paths_are_rejected() {
        let db = figure_2();
        let id_a = db.fact_id(&Fact::parse("R", "0", "1")).unwrap();
        let id_b = db.fact_id(&Fact::parse("R", "2", "3")).unwrap();
        assert!(DbPath::new(&db, vec![id_a, id_b]).is_err());
        let id_c = db.fact_id(&Fact::parse("R", "1", "2")).unwrap();
        assert!(DbPath::new(&db, vec![id_a, id_c, id_b]).is_ok());
    }
}
