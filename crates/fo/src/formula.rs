//! First-order formulas over binary relations.
//!
//! The fragment is what the consistent first-order rewritings of Lemmas 12,
//! 13 and 27 need: atoms, equality, Boolean connectives and quantifiers, with
//! active-domain semantics.

use std::collections::BTreeSet;
use std::fmt;

use cqa_core::query::{Term, Variable};
use cqa_core::symbol::RelName;

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atom `R(s, t)`.
    Atom {
        /// Relation name.
        rel: RelName,
        /// Key term.
        key: Term,
        /// Value term.
        value: Term,
    },
    /// Equality of two terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulas (empty conjunction is `true`).
    And(Vec<Formula>),
    /// Disjunction of zero or more formulas (empty disjunction is `false`).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over the active domain.
    Exists(Variable, Box<Formula>),
    /// Universal quantification over the active domain.
    Forall(Variable, Box<Formula>),
}

impl Formula {
    /// An atom `R(s, t)`.
    pub fn atom(rel: RelName, key: Term, value: Term) -> Formula {
        Formula::Atom { rel, key, value }
    }

    /// Conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), b) => {
                a.push(b);
                Formula::And(a)
            }
            (a, Formula::And(mut b)) => {
                b.insert(0, a);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), b) => {
                a.push(b);
                Formula::Or(a)
            }
            (a, Formula::Or(mut b)) => {
                b.insert(0, a);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Negation.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Existential quantification.
    pub fn exists(var: Variable, body: Formula) -> Formula {
        Formula::Exists(var, Box::new(body))
    }

    /// Universal quantification.
    pub fn forall(var: Variable, body: Formula) -> Formula {
        Formula::Forall(var, Box::new(body))
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Variable> {
        fn term_var(t: &Term, out: &mut BTreeSet<Variable>) {
            if let Term::Var(v) = t {
                out.insert(*v);
            }
        }
        fn go(f: &Formula, out: &mut BTreeSet<Variable>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom { key, value, .. } => {
                    term_var(key, out);
                    term_var(value, out);
                }
                Formula::Eq(a, b) => {
                    term_var(a, out);
                    term_var(b, out);
                }
                Formula::Not(inner) => go(inner, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for f in fs {
                        go(f, out);
                    }
                }
                Formula::Implies(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Formula::Exists(v, body) | Formula::Forall(v, body) => {
                    let mut inner = BTreeSet::new();
                    go(body, &mut inner);
                    inner.remove(v);
                    out.extend(inner);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// True iff the formula has no free variables.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Number of nodes in the formula tree (a rough size measure used in
    /// tests to check that rewritings stay polynomial in `|q|`).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 1,
            Formula::Not(inner) => 1 + inner.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) => 1 + a.size() + b.size(),
            Formula::Exists(_, body) | Formula::Forall(_, body) => 1 + body.size(),
        }
    }
}

fn write_term(t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "{v}"),
        Term::Const(c) => write!(f, "'{c}'"),
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("⊤"),
            Formula::False => f.write_str("⊥"),
            Formula::Atom { rel, key, value } => {
                write!(f, "{rel}(")?;
                write_term(key, f)?;
                f.write_str(", ")?;
                write_term(value, f)?;
                f.write_str(")")
            }
            Formula::Eq(a, b) => {
                write_term(a, f)?;
                f.write_str(" = ")?;
                write_term(b, f)
            }
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return f.write_str("⊤");
                }
                f.write_str("(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return f.write_str("⊥");
                }
                f.write_str("(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∨ ")?;
                    }
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Exists(v, body) => write!(f, "∃{v} ({body})"),
            Formula::Forall(v, body) => write!(f, "∀{v} ({body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    #[test]
    fn free_variables_respect_binders() {
        let r = RelName::new("R");
        let phi = Formula::exists(
            v("y"),
            Formula::atom(r, Term::Var(v("x")), Term::Var(v("y"))),
        );
        assert_eq!(phi.free_vars(), BTreeSet::from([v("x")]));
        let closed = Formula::exists(v("x"), phi.clone());
        assert!(closed.is_sentence());
        assert!(!phi.is_sentence());
    }

    #[test]
    fn display_is_readable() {
        let r = RelName::new("R");
        let phi = Formula::exists(
            v("x"),
            Formula::exists(
                v("y"),
                Formula::atom(r, Term::Var(v("x")), Term::Var(v("y"))),
            )
            .and(Formula::Eq(Term::Var(v("x")), Term::constant("c"))),
        );
        let text = phi.to_string();
        assert!(text.contains("∃x"));
        assert!(text.contains("R(x, y)"));
        assert!(text.contains("'c'"));
    }

    #[test]
    fn and_or_flatten() {
        let a = Formula::True;
        let b = Formula::False;
        let c = Formula::True;
        match a.clone().and(b.clone()).and(c.clone()) {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened conjunction, got {other:?}"),
        }
        match a.or(b).or(c) {
            Formula::Or(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened disjunction, got {other:?}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        let r = RelName::new("R");
        let atom = Formula::atom(r, Term::var("x"), Term::var("y"));
        assert_eq!(atom.size(), 1);
        assert_eq!(atom.clone().negate().size(), 2);
        assert_eq!(Formula::exists(v("x"), atom).size(), 2);
    }
}
