//! A straightforward active-domain evaluator for first-order sentences.
//!
//! The evaluator is intentionally simple — quantifiers range over the active
//! domain and are evaluated by enumeration — because it serves as the
//! *reference semantics* against which the efficient rewriting evaluator of
//! [`crate::rewriting`] is tested. Its running time is
//! `O(|adom|^depth · |φ|)` and it should only be used on small instances.

use std::collections::HashMap;

use cqa_core::query::{Term, Variable};
use cqa_db::fact::{Constant, Fact};
use cqa_db::instance::DatabaseInstance;

use crate::formula::Formula;

/// A variable assignment.
pub type Assignment = HashMap<Variable, Constant>;

/// Evaluates a sentence over a database instance with active-domain
/// semantics.
///
/// # Panics
/// Panics if the formula has free variables (use [`eval_with`] instead).
pub fn eval(db: &DatabaseInstance, formula: &Formula) -> bool {
    assert!(
        formula.is_sentence(),
        "eval requires a sentence; got free variables {:?}",
        formula.free_vars()
    );
    let mut env = Assignment::new();
    eval_with(db, formula, &mut env)
}

/// Evaluates a formula under a (partial) assignment of its free variables.
pub fn eval_with(db: &DatabaseInstance, formula: &Formula, env: &mut Assignment) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom { rel, key, value } => {
            let (Some(k), Some(v)) = (resolve(key, env), resolve(value, env)) else {
                panic!("unbound variable in atom {formula}");
            };
            db.contains(&Fact::new(*rel, k, v))
        }
        Formula::Eq(a, b) => {
            let (Some(a), Some(b)) = (resolve(a, env), resolve(b, env)) else {
                panic!("unbound variable in equality {formula}");
            };
            a == b
        }
        Formula::Not(inner) => !eval_with(db, inner, env),
        Formula::And(fs) => fs.iter().all(|f| eval_with(db, f, env)),
        Formula::Or(fs) => fs.iter().any(|f| eval_with(db, f, env)),
        Formula::Implies(a, b) => !eval_with(db, a, env) || eval_with(db, b, env),
        Formula::Exists(var, body) => {
            let domain: Vec<Constant> = db.adom().iter().copied().collect();
            let saved = env.get(var).copied();
            let result = domain.into_iter().any(|c| {
                env.insert(*var, c);
                eval_with(db, body, env)
            });
            restore(env, *var, saved);
            result
        }
        Formula::Forall(var, body) => {
            let domain: Vec<Constant> = db.adom().iter().copied().collect();
            let saved = env.get(var).copied();
            let result = domain.into_iter().all(|c| {
                env.insert(*var, c);
                eval_with(db, body, env)
            });
            restore(env, *var, saved);
            result
        }
    }
}

fn resolve(term: &Term, env: &Assignment) -> Option<Constant> {
    match term {
        Term::Const(c) => Some(Constant(*c)),
        Term::Var(v) => env.get(v).copied(),
    }
}

fn restore(env: &mut Assignment, var: Variable, saved: Option<Constant>) {
    match saved {
        Some(c) => {
            env.insert(var, c);
        }
        None => {
            env.remove(&var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::symbol::RelName;

    fn r() -> RelName {
        RelName::new("R")
    }

    fn sample_db() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "b", "c");
        db.insert_parsed("S", "c", "a");
        db
    }

    #[test]
    fn atoms_and_equality() {
        let db = sample_db();
        let x = Variable::new("x");
        let phi = Formula::exists(
            x,
            Formula::atom(r(), Term::Var(x), Term::constant("b"))
                .and(Formula::Eq(Term::Var(x), Term::constant("a"))),
        );
        assert!(eval(&db, &phi));
        let psi = Formula::exists(
            x,
            Formula::atom(r(), Term::Var(x), Term::constant("b"))
                .and(Formula::Eq(Term::Var(x), Term::constant("c"))),
        );
        assert!(!eval(&db, &psi));
    }

    #[test]
    fn quantifier_alternation() {
        // ∀x (∃y R(x,y) → ∃z S(x,z) ∨ ∃z R(x,z)): trivially true here.
        let db = sample_db();
        let x = Variable::new("x");
        let y = Variable::new("y");
        let z = Variable::new("z");
        let phi = Formula::forall(
            x,
            Formula::exists(y, Formula::atom(r(), Term::Var(x), Term::Var(y))).implies(
                Formula::exists(
                    z,
                    Formula::atom(RelName::new("S"), Term::Var(x), Term::Var(z)),
                )
                .or(Formula::exists(
                    z,
                    Formula::atom(r(), Term::Var(x), Term::Var(z)),
                )),
            ),
        );
        assert!(eval(&db, &phi));
    }

    #[test]
    fn intro_example_rewriting_of_rr() {
        // φ = ∃x (∃y R(x,y) ∧ ∀y (R(x,y) → ∃z R(y,z))) — the first-order
        // rewriting of CERTAINTY(RR) given in the introduction.
        let x = Variable::new("x");
        let y = Variable::new("y");
        let z = Variable::new("z");
        let phi = Formula::exists(
            x,
            Formula::exists(y, Formula::atom(r(), Term::Var(x), Term::Var(y))).and(
                Formula::forall(
                    y,
                    Formula::atom(r(), Term::Var(x), Term::Var(y)).implies(Formula::exists(
                        z,
                        Formula::atom(r(), Term::Var(y), Term::Var(z)),
                    )),
                ),
            ),
        );
        // On the instance of Figure 1 restricted to R, every repair satisfies
        // RR (Example 1), so φ must hold.
        let mut db = DatabaseInstance::new();
        for a in ["a", "b"] {
            for b in ["a", "b"] {
                db.insert_parsed("R", a, b);
            }
        }
        assert!(eval(&db, &phi));
        // On a two-fact chain R(a,b), R(a,c) with no continuation, φ fails.
        let mut db2 = DatabaseInstance::new();
        db2.insert_parsed("R", "a", "b");
        db2.insert_parsed("R", "a", "c");
        assert!(!eval(&db2, &phi));
    }

    #[test]
    fn negation_and_booleans() {
        let db = sample_db();
        assert!(eval(&db, &Formula::True));
        assert!(!eval(&db, &Formula::False));
        assert!(eval(&db, &Formula::False.negate()));
        assert!(!eval(
            &db,
            &Formula::And(vec![Formula::True, Formula::False])
        ));
        assert!(eval(&db, &Formula::Or(vec![Formula::True, Formula::False])));
    }

    #[test]
    #[should_panic]
    fn open_formulas_are_rejected_by_eval() {
        let db = sample_db();
        let phi = Formula::atom(r(), Term::var("x"), Term::var("y"));
        let _ = eval(&db, &phi);
    }
}
