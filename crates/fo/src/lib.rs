//! # cqa-fo
//!
//! First-order logic substrate: formula AST, active-domain evaluation, and
//! the consistent first-order rewritings of Lemmas 12, 13 and 27, together
//! with an `O(|q| · |db|)` memoized evaluator of the rooted rewriting
//! ([`rewriting::CertainRootedTable`]) used by the FO and NL solvers.
//!
//! ```
//! use cqa_core::prelude::*;
//! use cqa_db::prelude::*;
//! use cqa_fo::prelude::*;
//!
//! // The rewriting of CERTAINTY(RR) from the introduction of the paper.
//! let q = PathQuery::parse("RR").unwrap();
//! let phi = c1_rewriting(q.word());
//! assert!(phi.to_string().contains("∃"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod formula;
pub mod rewriting;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::eval::{eval, eval_with, Assignment};
    pub use crate::formula::Formula;
    pub use crate::rewriting::{
        c1_rewriting, is_terminal, lfp_formula_text, rooted_rewriting, rooted_sentence,
        terminal_vertices, CertainRootedTable, EndCap, TerminalCache,
    };
}
