//! Consistent first-order rewritings (Lemmas 12, 13, 26, 27) and their
//! efficient evaluation.
//!
//! For every path query `q = R1 … Rk` and constant `c`, `CERTAINTY(q[c])` is
//! in FO: the rewriting is built inductively as
//!
//! ```text
//! ψ_k+1(x) = ⊤                      (or x = c' when the query ends in c')
//! ψ_i(x)   = ∃y Ri(x, y) ∧ ∀y (Ri(x, y) → ψ_{i+1}(y))
//! ```
//!
//! and `∃x (ψ_1(x) ∧ x = c)` is a rewriting for `q[c]` (Lemma 12).
//! For path queries satisfying C1, `∃x ψ_1(x)` is a rewriting for `q`
//! (Lemma 13).
//!
//! Besides the explicit [`Formula`] construction, this module provides
//! [`CertainRootedTable`], a memoized bottom-up evaluator of the same
//! recursion that runs in `O(|q| · |db|)` and is what the solvers and the
//! terminal-vertex checks of the NL algorithm (Lemma 17) use.

use std::collections::{BTreeSet, HashMap};

use cqa_core::query::{Term, Variable};
use cqa_core::word::Word;
use cqa_db::fact::Constant;
use cqa_db::instance::DatabaseInstance;

use crate::formula::Formula;

/// How a rooted rewriting ends: in a free/existential variable or in a fixed
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndCap {
    /// The query ends in a variable (ordinary path query).
    Open,
    /// The query ends in the given constant.
    Const(Constant),
}

/// Builds the formula `ψ(x)` of Lemma 12 for the word `R1 … Rk`, with free
/// variable `x`, such that for every constant `c`, `∃x (ψ(x) ∧ x = c)` is a
/// consistent first-order rewriting of `CERTAINTY(q[c])`.
///
/// With `EndCap::Const(c')`, the constructed formula is the rewriting for the
/// generalized query whose last term is the constant `c'` (used by Lemma 26
/// without materializing the fresh `N`-relation).
pub fn rooted_rewriting(word: &Word, end: EndCap) -> Formula {
    build_rewriting(word, 0, end)
}

fn level_var(i: usize) -> Variable {
    Variable::new(&format!("y{i}"))
}

fn build_rewriting(word: &Word, level: usize, end: EndCap) -> Formula {
    let x = level_var(level);
    if level == word.len() {
        return match end {
            EndCap::Open => Formula::True,
            EndCap::Const(c) => Formula::Eq(Term::Var(x), Term::Const(c.symbol())),
        };
    }
    let rel = word[level];
    let y = level_var(level + 1);
    let inner = build_rewriting(word, level + 1, end);
    let some_edge = Formula::exists(y, Formula::atom(rel, Term::Var(x), Term::Var(y)));
    let all_edges_good = Formula::forall(
        y,
        Formula::atom(rel, Term::Var(x), Term::Var(y)).implies(inner),
    );
    some_edge.and(all_edges_good)
}

/// The consistent first-order rewriting of `CERTAINTY(q)` for a path query
/// satisfying C1 (Lemma 13): `∃x ψ(x)`.
///
/// The formula is only a correct rewriting when `q` satisfies C1; the
/// function itself does not check the condition.
pub fn c1_rewriting(word: &Word) -> Formula {
    let x = level_var(0);
    Formula::exists(x, rooted_rewriting(word, EndCap::Open))
}

/// The rewriting of `CERTAINTY(q[c])` as a closed sentence (Lemma 12).
pub fn rooted_sentence(word: &Word, start: Constant, end: EndCap) -> Formula {
    let x = level_var(0);
    Formula::exists(
        x,
        rooted_rewriting(word, end).and(Formula::Eq(Term::Var(x), Term::Const(start.symbol()))),
    )
}

/// Memoized bottom-up evaluation of the rooted rewriting over a database
/// instance: `certain(c)` is true iff every repair of `db` has a path that
/// starts in `c`, has trace `word`, and (if capped) ends in the given
/// constant. Runs in `O(|q| · |db|)`.
#[derive(Debug, Clone)]
pub struct CertainRootedTable {
    /// `levels[i]` = set of constants `c` such that every repair has a path
    /// with trace `word[i..]` starting at `c` (ending as capped).
    levels: Vec<BTreeSet<Constant>>,
    word_len: usize,
}

impl CertainRootedTable {
    /// Computes the table for a word over a database instance.
    pub fn compute(db: &DatabaseInstance, word: &Word, end: EndCap) -> CertainRootedTable {
        let k = word.len();
        let mut levels: Vec<BTreeSet<Constant>> = vec![BTreeSet::new(); k + 1];
        // Base level: which constants count as a successful endpoint.
        levels[k] = match end {
            EndCap::Open => db.adom().iter().copied().collect(),
            EndCap::Const(c) => BTreeSet::from([c]),
        };
        // Note: with EndCap::Open the base level is the full active domain;
        // reaching *any* constant ends the path successfully. For i from k-1
        // down to 0: c is certain iff the block word[i](c, ∗) is nonempty and
        // every value of that block is certain at level i+1.
        for i in (0..k).rev() {
            let rel = word[i];
            let mut level = BTreeSet::new();
            for &c in db.adom() {
                let values = db.out_values(rel, c);
                if values.is_empty() {
                    continue;
                }
                let next = &levels[i + 1];
                if values.iter().all(|v| next.contains(v)) {
                    level.insert(c);
                }
            }
            levels[i] = level;
        }
        CertainRootedTable {
            levels,
            word_len: k,
        }
    }

    /// True iff every repair has a suitable path starting at `c`.
    pub fn certain_from(&self, c: Constant) -> bool {
        self.levels[0].contains(&c)
    }

    /// All constants from which the query is certain.
    pub fn certain_starts(&self) -> &BTreeSet<Constant> {
        &self.levels[0]
    }

    /// The certain set at an intermediate level `i` (constants from which
    /// every repair has a path with trace `word[i..]`).
    pub fn certain_at_level(&self, i: usize) -> &BTreeSet<Constant> {
        &self.levels[i]
    }

    /// The word length the table was computed for.
    pub fn word_len(&self) -> usize {
        self.word_len
    }
}

/// Lemma 17 / Definition 15: `c` is **terminal** for the path query `word`
/// in `db` iff `db` is a "no"-instance of `CERTAINTY(word[c])`, i.e. iff
/// some repair has no consistent path with trace `word` starting at `c`.
pub fn is_terminal(db: &DatabaseInstance, table: &CertainRootedTable, c: Constant) -> bool {
    let _ = db;
    !table.certain_from(c)
}

/// Convenience: computes the set of terminal vertices for `word` in `db`.
pub fn terminal_vertices(db: &DatabaseInstance, word: &Word) -> BTreeSet<Constant> {
    let table = CertainRootedTable::compute(db, word, EndCap::Open);
    db.adom()
        .iter()
        .copied()
        .filter(|&c| !table.certain_from(c))
        .collect()
}

/// Renders the LFP formula of Figure 7 for a path query, as human-readable
/// text. The formula `ψ_q(s, t) = [lfp N,x,z φ_q(N, x, z)](s, t)` expresses
/// the fixpoint algorithm of Figure 5 in Least Fixpoint Logic (Lemma 11).
pub fn lfp_formula_text(word: &Word) -> String {
    let mut disjuncts: Vec<String> = Vec::new();
    disjuncts.push(format!("(α(x) ∧ z = '{word}')"));
    for i in 0..word.len() {
        let u = word.prefix(i);
        let r = word[i];
        let ur = word.prefix(i + 1);
        disjuncts.push(format!(
            "(z = '{u}' ∧ ∃y {r}(x, y) ∧ ∀y ({r}(x, y) → N(y, '{ur}')))"
        ));
    }
    for j in 1..=word.len() {
        for i in 1..j {
            if word[i - 1] == word[j - 1] {
                let u = word.prefix(i);
                let uv = word.prefix(j);
                disjuncts.push(format!("(N(x, '{u}') ∧ z = '{uv}')"));
            }
        }
    }
    format!(
        "ψ_q(s, t) := [lfp N,x,z  {}](s, t)",
        disjuncts.join("\n            ∨ ")
    )
}

/// A cache of [`CertainRootedTable`]s keyed by word, for callers (such as the
/// NL solver) that repeatedly test terminality for the same few words.
#[derive(Default)]
pub struct TerminalCache {
    tables: HashMap<(Word, Option<Constant>), CertainRootedTable>,
}

impl TerminalCache {
    /// Creates an empty cache.
    pub fn new() -> TerminalCache {
        TerminalCache::default()
    }

    /// The table for a word (computing it on first use).
    pub fn table(
        &mut self,
        db: &DatabaseInstance,
        word: &Word,
        end: EndCap,
    ) -> &CertainRootedTable {
        let key = (
            word.clone(),
            match end {
                EndCap::Open => None,
                EndCap::Const(c) => Some(c),
            },
        );
        self.tables
            .entry(key)
            .or_insert_with(|| CertainRootedTable::compute(db, word, end))
    }

    /// True iff `c` is terminal for `word` in `db`.
    pub fn is_terminal(&mut self, db: &DatabaseInstance, word: &Word, c: Constant) -> bool {
        !self.table(db, word, EndCap::Open).certain_from(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use cqa_core::query::PathQuery;

    fn w(s: &str) -> Word {
        Word::from_letters(s)
    }

    fn c(s: &str) -> Constant {
        Constant::new(s)
    }

    /// Brute-force ground truth: every repair has a path with the given trace
    /// starting at `start` (and ending at `end` if capped).
    fn oracle(db: &DatabaseInstance, word: &Word, start: Constant, end: EndCap) -> bool {
        db.repairs().all(|r| match end {
            EndCap::Open => r.satisfies_word_from(start, word),
            EndCap::Const(e) => r.walk(start, word) == Some(e),
        })
    }

    fn figure_2() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        db
    }

    #[test]
    fn table_matches_oracle_on_figure_2() {
        let db = figure_2();
        for word in ["R", "RR", "RRX", "RX", "RRRX", "XR"] {
            let word = w(word);
            let table = CertainRootedTable::compute(&db, &word, EndCap::Open);
            for &start in db.adom() {
                assert_eq!(
                    table.certain_from(start),
                    oracle(&db, &word, start, EndCap::Open),
                    "mismatch for word {word} at {start}"
                );
            }
        }
    }

    #[test]
    fn table_matches_oracle_with_end_constant() {
        let db = figure_2();
        for word in ["R", "RR", "RRX"] {
            let word = w(word);
            for &end in db.adom() {
                let cap = EndCap::Const(end);
                let table = CertainRootedTable::compute(&db, &word, cap);
                for &start in db.adom() {
                    assert_eq!(
                        table.certain_from(start),
                        oracle(&db, &word, start, cap),
                        "mismatch for word {word} from {start} to {end}"
                    );
                }
            }
        }
    }

    #[test]
    fn formula_agrees_with_table_on_small_instances() {
        let db = figure_2();
        for word in ["R", "RR", "RX"] {
            let word = w(word);
            let table = CertainRootedTable::compute(&db, &word, EndCap::Open);
            for &start in db.adom() {
                let sentence = rooted_sentence(&word, start, EndCap::Open);
                assert_eq!(
                    eval(&db, &sentence),
                    table.certain_from(start),
                    "formula/table disagreement for {word} at {start}"
                );
            }
        }
    }

    #[test]
    fn c1_rewriting_of_rr_matches_certain_answers() {
        // q = RR satisfies C1; its rewriting is the introduction's φ.
        let q = PathQuery::parse("RR").unwrap();
        let phi = c1_rewriting(q.word());
        assert!(phi.is_sentence());

        // Figure 1 restricted to R: certain (Example 1).
        let mut yes = DatabaseInstance::new();
        for a in ["a", "b"] {
            for b in ["a", "b"] {
                yes.insert_parsed("R", a, b);
            }
        }
        assert!(eval(&yes, &phi));
        assert!(yes.repairs().all(|r| r.satisfies_word(q.word())));

        // A dead-end instance: not certain.
        let mut no = DatabaseInstance::new();
        no.insert_parsed("R", "a", "b");
        assert!(!eval(&no, &phi));
        assert!(!no.repairs().all(|r| r.satisfies_word(q.word())));
    }

    #[test]
    fn example_7_terminal_vertices() {
        // db = {R(c,d), S(d,c), R(c,e), T(e,f)}: c is terminal for RSRT.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "c", "d");
        db.insert_parsed("S", "d", "c");
        db.insert_parsed("R", "c", "e");
        db.insert_parsed("T", "e", "f");
        let terminals = terminal_vertices(&db, &w("RSRT"));
        assert!(terminals.contains(&c("c")));
        // c is NOT terminal for RT: every repair that keeps R(c,e) has the
        // path; the repair keeping R(c,d) does not... so c IS terminal for RT.
        let terminals_rt = terminal_vertices(&db, &w("RT"));
        assert!(terminals_rt.contains(&c("c")));
        // d is not terminal for SR: S(d,c) then R(c, ·) exists in every repair.
        let terminals_sr = terminal_vertices(&db, &w("SR"));
        assert!(!terminals_sr.contains(&c("d")));
    }

    #[test]
    fn rewriting_size_is_linear_in_query_length() {
        for len in 1..=8 {
            let word: Word =
                std::iter::repeat_n(cqa_core::symbol::RelName::new("R"), len).collect();
            let phi = c1_rewriting(&word);
            assert!(
                phi.size() <= 6 * len + 2,
                "rewriting too large for length {len}"
            );
        }
    }

    #[test]
    fn lfp_text_mentions_all_prefixes() {
        let text = lfp_formula_text(&w("RRX"));
        assert!(text.contains("lfp"));
        assert!(text.contains("'RRX'"));
        assert!(text.contains("'RR'"));
        assert!(text.contains("α(x)"));
    }

    #[test]
    fn terminal_cache_reuses_tables() {
        let db = figure_2();
        let mut cache = TerminalCache::new();
        let t1 = cache.is_terminal(&db, &w("RRX"), c("4"));
        let t2 = cache.is_terminal(&db, &w("RRX"), c("4"));
        assert_eq!(t1, t2);
        assert!(t1, "4 has no outgoing R edge, hence is terminal for RRX");
        // 0 is terminal for RRX too (the repair keeping R(1,2) has no RRX
        // path from 0), but it is not terminal for the single-atom query R.
        assert!(cache.is_terminal(&db, &w("RRX"), c("0")));
        assert!(!cache.is_terminal(&db, &w("R"), c("0")));
    }
}
