//! # cqa-sat
//!
//! A compact conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the substrate for the coNP side of the classification: when
//! `CERTAINTY(q)` is coNP-complete, the certainty solver searches for a
//! counterexample repair by reducing "does some repair falsify `q`?" to
//! propositional satisfiability, and the SAT hardness gadget of Lemma 19 is
//! validated against it.
//!
//! ```
//! use cqa_sat::prelude::*;
//!
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(1), Lit::pos(2)]);
//! cnf.add_clause([Lit::neg(1)]);
//! assert!(solve(&cnf).is_sat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod solver;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cnf::{Cnf, Lit};
    pub use crate::solver::{solve, solve_brute_force, SatResult, Solver};
}
