//! A small conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The solver implements two-watched-literal unit propagation, first-UIP
//! conflict analysis with clause learning and backjumping, VSIDS-style
//! variable activities and phase saving. It is deliberately compact: the coNP
//! certainty solver produces instances with at most a few tens of thousands
//! of variables, far below the scale where a production solver would be
//! needed, but exhaustive enumeration would already be hopeless there.

use crate::cnf::{Cnf, Lit};

/// The result of solving a CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing assignment (`model[var]`, index 0 unused).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True iff satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// Encoding of a literal as a dense index for the watch lists.
fn lit_index(l: Lit) -> usize {
    2 * l.var() + usize::from(l.is_positive())
}

/// A CDCL SAT solver instance.
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// watches[lit_index(l)] = clauses currently watching literal `l`.
    watches: Vec<Vec<usize>>,
    /// Current assignment: None = unassigned.
    assign: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason clause of each propagated variable.
    reason: Vec<Option<usize>>,
    /// Assignment trail and decision-level boundaries.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Head of the propagation queue within the trail.
    propagate_head: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phases.
    phase: Vec<bool>,
    /// Empty clause seen during loading.
    trivially_unsat: bool,
    /// Statistics: number of conflicts encountered.
    conflicts: u64,
    /// Statistics: number of decisions taken.
    decisions: u64,
}

impl Solver {
    /// Creates a solver for the given formula.
    pub fn new(cnf: &Cnf) -> Solver {
        let num_vars = cnf.num_vars();
        let mut solver = Solver {
            num_vars,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * (num_vars + 1)],
            assign: vec![None; num_vars + 1],
            level: vec![0; num_vars + 1],
            reason: vec![None; num_vars + 1],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            propagate_head: 0,
            activity: vec![0.0; num_vars + 1],
            var_inc: 1.0,
            phase: vec![false; num_vars + 1],
            trivially_unsat: false,
            conflicts: 0,
            decisions: 0,
        };
        for clause in cnf.clauses() {
            solver.add_clause(clause.clone());
        }
        solver
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    fn add_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort_unstable();
        lits.dedup();
        // Tautologies are always satisfied: skip them.
        if lits
            .iter()
            .any(|&l| lits.binary_search(&l.negated()).is_ok())
        {
            return;
        }
        match lits.len() {
            0 => self.trivially_unsat = true,
            1 => {
                // Unit clause: enqueue at level 0 (may conflict with an
                // earlier unit, detected during the initial propagation).
                let idx = self.push_clause(lits);
                let lit = self.clauses[idx].lits[0];
                match self.value(lit) {
                    Some(false) => self.trivially_unsat = true,
                    Some(true) => {}
                    None => self.enqueue(lit, Some(idx)),
                }
            }
            _ => {
                self.push_clause(lits);
            }
        }
    }

    fn push_clause(&mut self, lits: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        // Watch the first two literals (for unit clauses, watch the single
        // literal twice-ish: only one watch entry is needed since it is
        // enqueued immediately).
        if lits.len() >= 2 {
            self.watches[lit_index(lits[0])].push(idx);
            self.watches[lit_index(lits[1])].push(idx);
        }
        self.clauses.push(Clause { lits });
        idx
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var()].map(|v| l.satisfied_by(v))
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        debug_assert!(self.value(l).is_none());
        self.assign[l.var()] = Some(l.is_positive());
        self.level[l.var()] = self.decision_level();
        self.reason[l.var()] = reason;
        self.phase[l.var()] = l.is_positive();
        self.trail.push(l);
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            let false_lit = lit.negated();
            let watch_idx = lit_index(false_lit);
            let mut i = 0;
            'clauses: while i < self.watches[watch_idx].len() {
                let clause_idx = self.watches[watch_idx][i];
                // Ensure the false literal is at position 1.
                let lits_len = self.clauses[clause_idx].lits.len();
                if self.clauses[clause_idx].lits[0] == false_lit {
                    self.clauses[clause_idx].lits.swap(0, 1);
                }
                let first = self.clauses[clause_idx].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..lits_len {
                    let candidate = self.clauses[clause_idx].lits[k];
                    if self.value(candidate) != Some(false) {
                        self.clauses[clause_idx].lits.swap(1, k);
                        self.watches[watch_idx].swap_remove(i);
                        self.watches[lit_index(candidate)].push(clause_idx);
                        continue 'clauses;
                    }
                }
                // No new watch: clause is unit or conflicting.
                match self.value(first) {
                    None => {
                        self.enqueue(first, Some(clause_idx));
                        i += 1;
                    }
                    Some(false) => return Some(clause_idx),
                    Some(true) => unreachable!("handled above"),
                }
            }
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the level to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars + 1];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();

        loop {
            let clause_lits = self.clauses[clause_idx].lits.clone();
            for q in clause_lits {
                if Some(q) == lit {
                    continue;
                }
                let var = q.var();
                if !seen[var] && self.level[var] > 0 {
                    seen[var] = true;
                    self.bump(var);
                    if self.level[var] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level on the trail.
            loop {
                trail_pos -= 1;
                if seen[self.trail[trail_pos].var()] {
                    break;
                }
            }
            let p = self.trail[trail_pos];
            seen[p.var()] = false;
            counter -= 1;
            if counter == 0 {
                lit = Some(p.negated());
                break;
            }
            clause_idx = self.reason[p.var()].expect("propagated literal must have a reason");
            lit = Some(p);
        }
        let asserting = lit.expect("conflict analysis produces an asserting literal");
        let mut clause = vec![asserting];
        clause.extend(learnt);
        // Backjump level: the maximum level among the non-asserting literals.
        let backjump = clause[1..]
            .iter()
            .map(|l| self.level[l.var()])
            .max()
            .unwrap_or(0);
        (clause, backjump)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.decision_level() > to_level {
            let boundary = self.trail_lim.pop().expect("level boundary");
            while self.trail.len() > boundary {
                let l = self.trail.pop().expect("trail entry");
                self.assign[l.var()] = None;
                self.reason[l.var()] = None;
            }
        }
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    fn learn(&mut self, clause: Vec<Lit>) {
        let asserting = clause[0];
        if clause.len() == 1 {
            self.enqueue(asserting, None);
            return;
        }
        // Place a literal of the backjump level at position 1 so that the
        // watch invariant holds after backjumping.
        let mut lits = clause;
        let mut best = 1;
        for (i, l) in lits.iter().enumerate().skip(1) {
            if self.level[l.var()] > self.level[lits[best].var()] {
                best = i;
            }
        }
        lits.swap(1, best);
        let idx = self.push_clause(lits);
        let assert_lit = self.clauses[idx].lits[0];
        self.enqueue(assert_lit, Some(idx));
    }

    fn pick_branch_var(&self) -> Option<usize> {
        (1..=self.num_vars)
            .filter(|&v| self.assign[v].is_none())
            .max_by(|&a, &b| {
                self.activity[a]
                    .partial_cmp(&self.activity[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        // Initial propagation of the unit clauses.
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts += 1;
                    if self.decision_level() == 0 {
                        return SatResult::Unsat;
                    }
                    let (clause, backjump_level) = self.analyze(conflict);
                    self.backtrack(backjump_level);
                    self.learn(clause);
                    self.decay();
                }
                None => {
                    match self.pick_branch_var() {
                        None => {
                            // All variables assigned: model found.
                            let model: Vec<bool> = (0..=self.num_vars)
                                .map(|v| self.assign[v].unwrap_or(false))
                                .collect();
                            return SatResult::Sat(model);
                        }
                        Some(var) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = if self.phase[var] {
                                Lit::pos(var)
                            } else {
                                Lit::neg(var)
                            };
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }
}

/// Convenience: solves a CNF formula.
pub fn solve(cnf: &Cnf) -> SatResult {
    Solver::new(cnf).solve()
}

/// Brute-force satisfiability check by enumeration, used as a test oracle.
/// Only feasible for formulas with at most ~20 variables.
pub fn solve_brute_force(cnf: &Cnf) -> SatResult {
    let n = cnf.num_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    for mask in 0u64..(1u64 << n) {
        let mut assignment = vec![false; n + 1];
        for (var, slot) in assignment.iter_mut().enumerate().skip(1) {
            *slot = mask & (1 << (var - 1)) != 0;
        }
        if cnf.evaluate(&assignment) {
            return SatResult::Sat(assignment);
        }
    }
    SatResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        // Variable p*holes + h + 1 ... encode pigeon p in hole h.
        let var = |p: usize, h: usize| p * holes + h + 1;
        let mut cnf = Cnf::new(pigeons * holes);
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        cnf
    }

    #[test]
    fn trivial_cases() {
        let mut cnf = Cnf::new(1);
        assert!(solve(&cnf).is_sat());
        cnf.add_clause([Lit::pos(1)]);
        assert!(solve(&cnf).is_sat());
        cnf.add_clause([Lit::neg(1)]);
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_models_satisfy_the_formula() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([Lit::pos(1), Lit::pos(2)]);
        cnf.add_clause([Lit::neg(1), Lit::pos(3)]);
        cnf.add_clause([Lit::neg(2), Lit::pos(4)]);
        cnf.add_clause([Lit::neg(3), Lit::neg(4)]);
        match solve(&cnf) {
            SatResult::Sat(model) => assert!(cnf.evaluate(&model)),
            SatResult::Unsat => panic!("formula is satisfiable"),
        }
    }

    #[test]
    fn pigeonhole_principle_is_unsatisfiable() {
        assert_eq!(solve(&pigeonhole(4, 3)), SatResult::Unsat);
        assert_eq!(solve(&pigeonhole(5, 4)), SatResult::Unsat);
        assert!(solve(&pigeonhole(3, 3)).is_sat());
    }

    #[test]
    fn agrees_with_brute_force_on_random_3cnf() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let num_vars = 5 + (round % 6);
            let num_clauses = 3 + (next() % 30) as usize;
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = (next() % num_vars as u64) as usize + 1;
                    let lit = if next() % 2 == 0 {
                        Lit::pos(var)
                    } else {
                        Lit::neg(var)
                    };
                    clause.push(lit);
                }
                cnf.add_clause(clause);
            }
            let expected = solve_brute_force(&cnf).is_sat();
            let got = solve(&cnf);
            assert_eq!(got.is_sat(), expected, "round {round}: {}", cnf.to_dimacs());
            if let SatResult::Sat(model) = got {
                assert!(cnf.evaluate(&model), "round {round}: bad model");
            }
        }
    }

    #[test]
    fn unit_conflicts_at_load_time() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(1)]);
        cnf.add_clause([Lit::neg(1)]);
        cnf.add_clause([Lit::pos(2)]);
        assert_eq!(solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(1), Lit::neg(1)]);
        cnf.add_clause([Lit::pos(2)]);
        match solve(&cnf) {
            SatResult::Sat(model) => assert!(model[2]),
            SatResult::Unsat => panic!("satisfiable"),
        }
    }

    #[test]
    fn statistics_are_reported() {
        let cnf = pigeonhole(4, 3);
        let mut solver = Solver::new(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(solver.conflicts() > 0);
        assert!(solver.decisions() > 0);
    }

    #[test]
    fn chain_of_implications_propagates() {
        // x1 and (x_i -> x_{i+1}) for a long chain, plus ¬x_n: UNSAT.
        let n = 200;
        let mut cnf = Cnf::new(n);
        cnf.add_clause([Lit::pos(1)]);
        for i in 1..n {
            cnf.add_clause([Lit::neg(i), Lit::pos(i + 1)]);
        }
        cnf.add_clause([Lit::neg(n)]);
        assert_eq!(solve(&cnf), SatResult::Unsat);
        // Dropping the last clause makes it satisfiable with all true.
        let mut cnf2 = Cnf::new(n);
        cnf2.add_clause([Lit::pos(1)]);
        for i in 1..n {
            cnf2.add_clause([Lit::neg(i), Lit::pos(i + 1)]);
        }
        match solve(&cnf2) {
            SatResult::Sat(model) => assert!(model[1..].iter().all(|&b| b)),
            SatResult::Unsat => panic!("satisfiable"),
        }
    }
}
