//! CNF formulas.

use std::fmt;

/// A propositional literal: a variable index (1-based) with a sign, in the
/// DIMACS convention (`3` is variable 3, `-3` is its negation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(i32);

impl Lit {
    /// A positive literal of variable `var` (1-based).
    pub fn pos(var: usize) -> Lit {
        assert!(var >= 1, "variables are 1-based");
        Lit(var as i32)
    }

    /// A negative literal of variable `var` (1-based).
    pub fn neg(var: usize) -> Lit {
        assert!(var >= 1, "variables are 1-based");
        Lit(-(var as i32))
    }

    /// Builds a literal from a DIMACS-style integer (nonzero).
    pub fn from_dimacs(value: i32) -> Lit {
        assert!(value != 0, "DIMACS literals are nonzero");
        Lit(value)
    }

    /// The variable index (1-based).
    pub fn var(self) -> usize {
        self.0.unsigned_abs() as usize
    }

    /// True iff the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(-self.0)
    }

    /// The DIMACS integer representation.
    pub fn to_dimacs(self) -> i32 {
        self.0
    }

    /// True iff the literal is satisfied by the assignment of its variable.
    pub fn satisfied_by(self, value: bool) -> bool {
        self.is_positive() == value
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A CNF formula: a conjunction of clauses, each a disjunction of literals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula with `num_vars` variables (1-based indices).
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Registers a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars
    }

    /// Adds a clause. Duplicate literals are removed; tautological clauses
    /// (containing `l` and `¬l`) are kept verbatim and are simply always
    /// satisfied.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        for l in &clause {
            assert!(l.var() <= self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(clause);
    }

    /// Evaluates the formula under a full assignment (index 0 unused).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| lit.satisfied_by(assignment[lit.var()]))
        })
    }

    /// Renders the formula in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                out.push_str(&lit.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let l = Lit::pos(3);
        assert_eq!(l.var(), 3);
        assert!(l.is_positive());
        assert_eq!(l.negated(), Lit::neg(3));
        assert_eq!(Lit::from_dimacs(-7), Lit::neg(7));
        assert_eq!(Lit::neg(7).to_dimacs(), -7);
    }

    #[test]
    fn evaluation_checks_all_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(1), Lit::pos(2)]);
        cnf.add_clause([Lit::neg(1)]);
        // assignment[0] is a dummy.
        assert!(cnf.evaluate(&[false, false, true]));
        assert!(!cnf.evaluate(&[false, true, true]));
        assert!(!cnf.evaluate(&[false, false, false]));
    }

    #[test]
    fn fresh_variables_extend_the_range() {
        let mut cnf = Cnf::new(1);
        let v = cnf.fresh_var();
        assert_eq!(v, 2);
        cnf.add_clause([Lit::pos(v)]);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn dimacs_output_has_header_and_terminators() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(1), Lit::neg(2)]);
        let text = cnf.to_dimacs();
        assert!(text.starts_with("p cnf 2 1"));
        assert!(text.trim_end().ends_with('0'));
    }

    #[test]
    #[should_panic]
    fn out_of_range_literals_are_rejected() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(5)]);
    }
}
