//! Lock-free observability primitives for the CQA workspace.
//!
//! Everything here is built for an always-on recorder on the serving hot
//! path: recording into a [`Counter`], [`Gauge`] or [`Histogram`] is a
//! handful of relaxed atomic adds — no locks, no allocation, no syscalls.
//! The only lock in the crate guards [`Registry`] registration and
//! rendering, which happen at startup and on `METRICS` scrapes, never per
//! request.
//!
//! Two layers of cost:
//!
//! * **Always-on** — counters, gauges and coarse phase histograms that the
//!   server records unconditionally. Budgeted at <2% of `server_throughput`
//!   (measured by `scripts/bench_datalog.sh`).
//! * **Trace spans** — fine-grained phase histograms ([`Span`]) behind the
//!   `PATH_CQA_TRACE` knob (`auto`/`on` = record, `off`/`0` = skip). The
//!   knob follows the workspace `Auto|Off|On` convention but resolves into
//!   an atomic rather than a `OnceLock`, so [`set_trace`] can flip it at
//!   runtime — the bench harness uses that to measure trace overhead from
//!   inside one process.
//!
//! Histograms use fixed log2 buckets over nanoseconds: bucket `i` counts
//! durations in `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 and 1 ns), and
//! the top bucket saturates — anything at or above `2^39` ns (~9 minutes)
//! lands there. Fixed buckets keep recording allocation-free and make the
//! Prometheus rendering a pure read of the atomics.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Number of log2 buckets per histogram. Bucket `BUCKETS - 1` is the
/// saturating top bucket (everything `>= 2^(BUCKETS-1)` ns).
pub const BUCKETS: usize = 40;

/// The bucket a duration of `ns` nanoseconds falls into: `floor(log2(ns))`
/// clamped to the table, with 0 and 1 ns sharing bucket 0.
pub fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i` in nanoseconds, or `None` for the
/// saturating top bucket (rendered as `le="+Inf"`).
pub fn bucket_upper(i: usize) -> Option<u64> {
    if i + 1 < BUCKETS {
        Some(1u64 << (i + 1))
    } else {
        None
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, resident count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2-nanosecond latency histogram. Recording is three
/// relaxed `fetch_add`s; readers see a consistent-enough snapshot for
/// monitoring (counts never decrease, `count` is bumped last so
/// `sum(buckets) >= count` can transiently be off by in-flight records —
/// quiescent readers always see `sum(buckets) == count`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a histogram's atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub sum: u64,
    pub count: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one duration in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A started wall-clock timer. `Instant` on Linux is a vDSO
/// `clock_gettime(CLOCK_MONOTONIC)` — cheap enough for per-request use.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds, saturated into `u64` (584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

// ---------------------------------------------------------------------------
// Registry: named metric families rendered in Prometheus text exposition.
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    /// Pre-rendered label pairs, e.g. `command="query"` — empty for an
    /// unlabelled series.
    labels: String,
    metric: Metric,
}

struct Family {
    name: &'static str,
    help: &'static str,
    series: Vec<Series>,
}

/// An instantiable collection of metric families. Each server instance owns
/// its own registry, so counters genuinely reset when a server is restarted
/// (including in-process restarts under test) rather than living for the
/// whole process.
///
/// Registration is idempotent: asking for an existing `(name, labels)`
/// series returns the same handle, so construction code can re-run safely.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T>(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        get: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name,
                    help,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == rendered) {
            return get(&series.metric)
                .unwrap_or_else(|| panic!("metric {name} re-registered with a different type"));
        }
        let metric = make();
        let handle = get(&metric).expect("constructor and accessor agree");
        family.series.push(Series {
            labels: rendered,
            metric,
        });
        handle
    }

    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Adopt an existing histogram handle into a family, so metrics owned by
    /// lower layers (e.g. a solver session's per-route timers) render
    /// through the same registry as everything else. Idempotent like the
    /// constructors: if the `(name, labels)` series already exists, the
    /// registered handle wins and is returned.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Metric::Histogram(histogram),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Pre-register a histogram series for every value of a label, returning
    /// the handles in value order — used for per-route / per-command tables
    /// indexed by a dense enum.
    pub fn histogram_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[&'static str],
    ) -> Vec<Arc<Histogram>> {
        values
            .iter()
            .map(|v| self.histogram(name, help, &[(label, v)]))
            .collect()
    }

    /// Same as [`Registry::histogram_vec`] for counters.
    pub fn counter_vec(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[&'static str],
    ) -> Vec<Arc<Counter>> {
        values
            .iter()
            .map(|v| self.counter(name, help, &[(label, v)]))
            .collect()
    }

    /// Render every family in Prometheus text exposition format. Holds only
    /// the registry's own lock — callers on the serving path must make sure
    /// this is never nested inside a hot lock (the server scrapes from
    /// reader threads, outside the work-queue mutex).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for family in families.iter() {
            let type_name = family
                .series
                .first()
                .map(|s| s.metric.type_name())
                .unwrap_or("untyped");
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, type_name));
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        render_scalar(&mut out, family.name, &series.labels, c.get())
                    }
                    Metric::Gauge(g) => {
                        render_scalar(&mut out, family.name, &series.labels, g.get())
                    }
                    Metric::Histogram(h) => {
                        render_histogram(&mut out, family.name, &series.labels, &h.snapshot())
                    }
                }
            }
        }
        out
    }
}

fn render_scalar<T: std::fmt::Display>(out: &mut String, name: &str, labels: &str, value: T) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

fn series_name(name: &str, suffix: &str, labels: &str) -> String {
    if labels.is_empty() {
        format!("{name}{suffix}")
    } else {
        format!("{name}{suffix}{{{labels}}}")
    }
}

/// Render one histogram series: cumulative `_bucket` lines up to the last
/// occupied bucket (trailing empty buckets are folded into `+Inf` — the
/// cumulative counts stay correct and the payload stays small), then
/// `_sum` and `_count`.
pub fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let le = |labels: &str, bound: &str| {
        if labels.is_empty() {
            format!("le=\"{bound}\"")
        } else {
            format!("{labels},le=\"{bound}\"")
        }
    };
    let mut cumulative = 0u64;
    let last_occupied = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| i.min(BUCKETS - 2));
    if let Some(last) = last_occupied {
        for (i, &c) in snap.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            let bound = bucket_upper(i)
                .expect("capped below top bucket")
                .to_string();
            out.push_str(&format!(
                "{} {}\n",
                series_name(name, "_bucket", &le(labels, &bound)),
                cumulative
            ));
        }
    }
    out.push_str(&format!(
        "{} {}\n",
        series_name(name, "_bucket", &le(labels, "+Inf")),
        snap.count
    ));
    out.push_str(&format!(
        "{} {}\n",
        series_name(name, "_sum", labels),
        snap.sum
    ));
    out.push_str(&format!(
        "{} {}\n",
        series_name(name, "_count", labels),
        snap.count
    ));
}

// ---------------------------------------------------------------------------
// Trace knob and spans.
// ---------------------------------------------------------------------------

/// The fine-grained span knob, following the workspace `Auto|Off|On`
/// convention (`PATH_CQA_THREADS`, `PATH_CQA_DEMAND`, ...). `Auto` defers to
/// the `PATH_CQA_TRACE` environment variable (`off`/`0` disables; anything
/// else, including unset, enables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trace {
    Auto,
    Off,
    On,
}

/// 0 = unresolved (consult the environment), 1 = off, 2 = on. An atomic
/// rather than a `OnceLock` on purpose: the bench harness flips tracing
/// off/on inside one process to measure its overhead.
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);

/// Override (or with [`Trace::Auto`], reset) the span knob at runtime.
pub fn set_trace(trace: Trace) {
    let state = match trace {
        Trace::Auto => 0,
        Trace::Off => 1,
        Trace::On => 2,
    };
    TRACE_STATE.store(state, Ordering::Relaxed);
}

/// Whether fine-grained spans are being recorded. First call in the
/// unresolved state reads `PATH_CQA_TRACE` and caches the verdict.
pub fn trace_enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = !matches!(
                std::env::var("PATH_CQA_TRACE").as_deref(),
                Ok("off") | Ok("0")
            );
            TRACE_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Slow-request threshold from `PATH_CQA_SLOW_MS`: `None` disables the slow
/// log, `Some(0)` logs every request. Read once per process.
pub fn slow_millis() -> Option<u64> {
    static SLOW: OnceLock<Option<u64>> = OnceLock::new();
    *SLOW.get_or_init(|| {
        std::env::var("PATH_CQA_SLOW_MS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
    })
}

/// Fine-grained phases timed under the trace knob. Process-global (a span
/// histogram outlives any one server instance): spans answer "where does
/// time go inside a request", not "what has this server served".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// One semi-naive stratum evaluation inside the Datalog engine.
    StratumEval,
    /// Building or extending a committed base index / CSR.
    IndexBuild,
    /// Compiling a CQA program on a plan-cache miss.
    PlanCompile,
    /// Classifying a query word and building route artifacts.
    Classify,
    /// A from-scratch overlay fixpoint (no checkpoint, no maintained IDB).
    ScratchDerive,
    /// An overlay fixpoint resumed from a base checkpoint.
    CheckpointResume,
    /// A differential repair of the maintained IDB.
    MaintainRepair,
    /// Scanning derived falsification witnesses to produce answers.
    AnswerScan,
}

pub const SPAN_COUNT: usize = 8;

pub const ALL_SPANS: [Span; SPAN_COUNT] = [
    Span::StratumEval,
    Span::IndexBuild,
    Span::PlanCompile,
    Span::Classify,
    Span::ScratchDerive,
    Span::CheckpointResume,
    Span::MaintainRepair,
    Span::AnswerScan,
];

impl Span {
    pub fn as_str(self) -> &'static str {
        match self {
            Span::StratumEval => "stratum_eval",
            Span::IndexBuild => "index_build",
            Span::PlanCompile => "plan_compile",
            Span::Classify => "classify",
            Span::ScratchDerive => "scratch_derive",
            Span::CheckpointResume => "checkpoint_resume",
            Span::MaintainRepair => "maintain_repair",
            Span::AnswerScan => "answer_scan",
        }
    }
}

fn span_table() -> &'static [Histogram; SPAN_COUNT] {
    static SPANS: OnceLock<[Histogram; SPAN_COUNT]> = OnceLock::new();
    SPANS.get_or_init(|| std::array::from_fn(|_| Histogram::new()))
}

/// Record a span duration — a no-op (one atomic load) when tracing is off.
pub fn record_span(span: Span, ns: u64) {
    if trace_enabled() {
        span_table()[span as usize].record(ns);
    }
}

pub fn span_snapshot(span: Span) -> HistogramSnapshot {
    span_table()[span as usize].snapshot()
}

/// Append the `cqa_trace_span_ns` family (one series per [`Span`]) to a
/// Prometheus exposition — all-zero when tracing has been off for the whole
/// process.
pub fn render_spans(out: &mut String) {
    out.push_str("# HELP cqa_trace_span_ns Fine-grained phase durations (PATH_CQA_TRACE spans).\n");
    out.push_str("# TYPE cqa_trace_span_ns histogram\n");
    for span in ALL_SPANS {
        let labels = format!("span=\"{}\"", span.as_str());
        render_histogram(out, "cqa_trace_span_ns", &labels, &span_snapshot(span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 10);
        // Every bucket's exclusive upper bound is the next bucket's floor.
        for i in 0..BUCKETS - 1 {
            let upper = bucket_upper(i).expect("non-top bucket has a bound");
            assert_eq!(bucket_index(upper - 1), i, "upper-1 stays in bucket {i}");
            assert_eq!(
                bucket_index(upper),
                i + 1,
                "upper moves to bucket {}",
                i + 1
            );
        }
        assert_eq!(bucket_upper(BUCKETS - 1), None);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(1u64 << (BUCKETS - 1)); // exactly at the top bucket's floor
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], 2);
        assert_eq!(snap.count, 2);
        assert!(snap.buckets[..BUCKETS - 1].iter().all(|&c| c == 0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        // Spread records across many buckets.
                        h.record((i * 7 + t) % 100_000);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        let snap = h.snapshot();
        let expected = threads * per_thread;
        assert_eq!(snap.count, expected);
        assert_eq!(snap.buckets.iter().sum::<u64>(), expected);
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("cqa_test_total", "help", &[("kind", "x")]);
        let b = reg.counter("cqa_test_total", "help", &[("kind", "x")]);
        assert!(Arc::ptr_eq(&a, &b), "same (name, labels) → same handle");
        let c = reg.counter("cqa_test_total", "help", &[("kind", "y")]);
        assert!(!Arc::ptr_eq(&a, &c), "different labels → different series");
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = Registry::new();
        let c = reg.counter("cqa_test_events_total", "Total events.", &[]);
        c.add(3);
        let g = reg.gauge("cqa_test_depth", "Current depth.", &[("q", "main")]);
        g.set(7);
        let h = reg.histogram("cqa_test_latency_ns", "Latency.", &[("op", "get")]);
        h.record(5); // bucket 2, le="8"
        let text = reg.render();
        assert!(text.contains("# HELP cqa_test_events_total Total events.\n"));
        assert!(text.contains("# TYPE cqa_test_events_total counter\n"));
        assert!(text.contains("cqa_test_events_total 3\n"));
        assert!(text.contains("cqa_test_depth{q=\"main\"} 7\n"));
        assert!(text.contains("# TYPE cqa_test_latency_ns histogram\n"));
        assert!(text.contains("cqa_test_latency_ns_bucket{op=\"get\",le=\"8\"} 1\n"));
        assert!(text.contains("cqa_test_latency_ns_bucket{op=\"get\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("cqa_test_latency_ns_sum{op=\"get\"} 5\n"));
        assert!(text.contains("cqa_test_latency_ns_count{op=\"get\"} 1\n"));
        // Cumulative buckets: the le="8" line must include the earlier
        // (empty) buckets' counts, i.e. the first bucket lines exist too.
        assert!(text.contains("cqa_test_latency_ns_bucket{op=\"get\",le=\"2\"} 0\n"));
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let mut out = String::new();
        render_histogram(&mut out, "cqa_empty_ns", "", &Histogram::new().snapshot());
        assert_eq!(
            out,
            "cqa_empty_ns_bucket{le=\"+Inf\"} 0\ncqa_empty_ns_sum 0\ncqa_empty_ns_count 0\n"
        );
    }

    #[test]
    fn trace_knob_gates_span_recording() {
        set_trace(Trace::Off);
        let before = span_snapshot(Span::PlanCompile).count;
        record_span(Span::PlanCompile, 100);
        assert_eq!(
            span_snapshot(Span::PlanCompile).count,
            before,
            "off = no-op"
        );
        set_trace(Trace::On);
        record_span(Span::PlanCompile, 100);
        assert_eq!(span_snapshot(Span::PlanCompile).count, before + 1);
        let mut rendered = String::new();
        render_spans(&mut rendered);
        assert!(rendered.contains("# TYPE cqa_trace_span_ns histogram"));
        assert!(rendered.contains("cqa_trace_span_ns_count{span=\"plan_compile\"}"));
        set_trace(Trace::Auto);
    }
}
