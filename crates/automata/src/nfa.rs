//! Generic nondeterministic finite automata with ε-moves over the alphabet of
//! relation names, plus subset construction to a DFA.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cqa_core::symbol::RelName;
use cqa_core::word::Word;

/// A nondeterministic finite automaton with ε-moves. States are dense
/// indices `0..num_states`.
#[derive(Debug, Clone)]
pub struct Nfa {
    num_states: usize,
    start: usize,
    accepting: BTreeSet<usize>,
    /// Labelled transitions per state.
    transitions: Vec<Vec<(RelName, usize)>>,
    /// ε-transitions per state.
    epsilon: Vec<Vec<usize>>,
}

impl Nfa {
    /// Creates an NFA with the given number of states and start state, no
    /// transitions and no accepting states.
    pub fn new(num_states: usize, start: usize) -> Nfa {
        assert!(start < num_states, "start state out of range");
        Nfa {
            num_states,
            start,
            accepting: BTreeSet::new(),
            transitions: vec![Vec::new(); num_states],
            epsilon: vec![Vec::new(); num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Returns a copy of this automaton with a different start state
    /// (used for `S-NFA(q, u)`).
    pub fn with_start(&self, start: usize) -> Nfa {
        assert!(start < self.num_states, "start state out of range");
        let mut nfa = self.clone();
        nfa.start = start;
        nfa
    }

    /// Marks a state as accepting.
    pub fn set_accepting(&mut self, state: usize) {
        assert!(state < self.num_states);
        self.accepting.insert(state);
    }

    /// The set of accepting states.
    pub fn accepting(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// True iff the state is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.contains(&state)
    }

    /// Adds a labelled transition.
    pub fn add_transition(&mut self, from: usize, label: RelName, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        self.transitions[from].push((label, to));
    }

    /// Adds an ε-transition.
    pub fn add_epsilon(&mut self, from: usize, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        self.epsilon[from].push(to);
    }

    /// The labelled transitions out of a state.
    pub fn transitions_from(&self, state: usize) -> &[(RelName, usize)] {
        &self.transitions[state]
    }

    /// The ε-transitions out of a state.
    pub fn epsilon_from(&self, state: usize) -> &[usize] {
        &self.epsilon[state]
    }

    /// All labelled transitions `(from, label, to)`.
    pub fn all_transitions(&self) -> Vec<(usize, RelName, usize)> {
        let mut out = Vec::new();
        for (from, ts) in self.transitions.iter().enumerate() {
            for &(label, to) in ts {
                out.push((from, label, to));
            }
        }
        out
    }

    /// All ε-transitions `(from, to)`.
    pub fn all_epsilon_transitions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (from, ts) in self.epsilon.iter().enumerate() {
            for &to in ts {
                out.push((from, to));
            }
        }
        out
    }

    /// The ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut queue: VecDeque<usize> = states.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &t in &self.epsilon[s] {
                if closure.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        closure
    }

    /// One step of the subset construction: from a set of states, read `label`.
    pub fn step(&self, states: &BTreeSet<usize>, label: RelName) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &s in states {
            for &(l, t) in &self.transitions[s] {
                if l == label {
                    next.insert(t);
                }
            }
        }
        self.epsilon_closure(&next)
    }

    /// True iff the automaton accepts the word from its start state.
    pub fn accepts(&self, word: &Word) -> bool {
        self.accepts_from(self.start, word)
    }

    /// True iff the automaton accepts the word when started in `state`.
    pub fn accepts_from(&self, state: usize, word: &Word) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([state]));
        for label in word.iter() {
            current = self.step(&current, label);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.accepting.contains(s))
    }

    /// The alphabet actually used by the transitions.
    pub fn alphabet(&self) -> BTreeSet<RelName> {
        self.transitions
            .iter()
            .flat_map(|ts| ts.iter().map(|&(l, _)| l))
            .collect()
    }

    /// Determinizes the automaton by subset construction.
    pub fn to_dfa(&self) -> Dfa {
        let alphabet: Vec<RelName> = self.alphabet().into_iter().collect();
        let start_set = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut state_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut transitions: Vec<BTreeMap<RelName, usize>> = Vec::new();
        state_index.insert(start_set.clone(), 0);
        subsets.push(start_set);
        transitions.push(BTreeMap::new());
        let mut queue = VecDeque::from([0usize]);
        while let Some(i) = queue.pop_front() {
            for &label in &alphabet {
                let next = self.step(&subsets[i].clone(), label);
                if next.is_empty() {
                    continue;
                }
                let j = match state_index.get(&next) {
                    Some(&j) => j,
                    None => {
                        let j = subsets.len();
                        state_index.insert(next.clone(), j);
                        subsets.push(next);
                        transitions.push(BTreeMap::new());
                        queue.push_back(j);
                        j
                    }
                };
                transitions[i].insert(label, j);
            }
        }
        let accepting = subsets
            .iter()
            .enumerate()
            .filter(|(_, set)| set.iter().any(|s| self.accepting.contains(s)))
            .map(|(i, _)| i)
            .collect();
        Dfa {
            subsets,
            transitions,
            accepting,
            start: 0,
        }
    }
}

/// A deterministic finite automaton obtained by subset construction.
/// Missing transitions are implicit rejections.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The NFA state sets that each DFA state represents.
    subsets: Vec<BTreeSet<usize>>,
    transitions: Vec<BTreeMap<RelName, usize>>,
    accepting: BTreeSet<usize>,
    start: usize,
}

impl Dfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.subsets.len()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The NFA states a DFA state stands for.
    pub fn subset(&self, state: usize) -> &BTreeSet<usize> {
        &self.subsets[state]
    }

    /// True iff the state is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.contains(&state)
    }

    /// The successor of a state on a label, if defined.
    pub fn step(&self, state: usize, label: RelName) -> Option<usize> {
        self.transitions[state].get(&label).copied()
    }

    /// True iff the DFA accepts the word.
    pub fn accepts(&self, word: &Word) -> bool {
        let mut state = self.start;
        for label in word.iter() {
            match self.step(state, label) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.is_accepting(state)
    }

    /// Restricts the automaton to *minimal* accepted words: the result accepts
    /// `w` iff this DFA accepts `w` and no proper prefix of `w` is accepted.
    ///
    /// This is the construction behind `NFAmin(q)` (Definition 13): once an
    /// accepting state is reached, all outgoing transitions are removed.
    pub fn minimal_words(&self) -> Dfa {
        let mut result = self.clone();
        for state in 0..result.num_states() {
            if result.is_accepting(state) {
                result.transitions[state].clear();
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> RelName {
        RelName::new(name)
    }

    fn w(word: &str) -> Word {
        Word::from_letters(word)
    }

    /// A small automaton accepting R(R)*X.
    fn rrstar_x() -> Nfa {
        let mut nfa = Nfa::new(3, 0);
        nfa.add_transition(0, r("R"), 1);
        nfa.add_transition(1, r("R"), 1);
        nfa.add_transition(1, r("X"), 2);
        nfa.set_accepting(2);
        nfa
    }

    #[test]
    fn accepts_simple_language() {
        let nfa = rrstar_x();
        assert!(nfa.accepts(&w("RX")));
        assert!(nfa.accepts(&w("RRX")));
        assert!(nfa.accepts(&w("RRRRX")));
        assert!(!nfa.accepts(&w("X")));
        assert!(!nfa.accepts(&w("RXX")));
        assert!(!nfa.accepts(&w("RR")));
    }

    #[test]
    fn epsilon_closure_follows_chains() {
        let mut nfa = Nfa::new(4, 0);
        nfa.add_epsilon(0, 1);
        nfa.add_epsilon(1, 2);
        nfa.set_accepting(2);
        let closure = nfa.epsilon_closure(&BTreeSet::from([0]));
        assert_eq!(closure, BTreeSet::from([0, 1, 2]));
        // A word of length zero is accepted because the closure of the start
        // contains an accepting state.
        assert!(nfa.accepts(&Word::empty()));
    }

    #[test]
    fn with_start_changes_only_the_start() {
        let nfa = rrstar_x();
        let from_1 = nfa.with_start(1);
        assert!(from_1.accepts(&w("X")));
        assert!(from_1.accepts(&w("RX")));
        assert!(!from_1.accepts(&w("R")));
        // The original is unchanged.
        assert!(!nfa.accepts(&w("X")));
    }

    #[test]
    fn dfa_agrees_with_nfa() {
        let nfa = rrstar_x();
        let dfa = nfa.to_dfa();
        for word in ["RX", "RRX", "RRRX", "R", "X", "RXR", "RXX", ""] {
            assert_eq!(nfa.accepts(&w(word)), dfa.accepts(&w(word)), "{word}");
        }
    }

    #[test]
    fn minimal_words_cuts_continuations() {
        // Language R(R)*: minimal words = {R}.
        let mut nfa = Nfa::new(2, 0);
        nfa.add_transition(0, r("R"), 1);
        nfa.add_transition(1, r("R"), 1);
        nfa.set_accepting(1);
        let min = nfa.to_dfa().minimal_words();
        assert!(min.accepts(&w("R")));
        assert!(!min.accepts(&w("RR")));
        assert!(!min.accepts(&w("RRR")));
    }

    #[test]
    fn alphabet_and_transition_listing() {
        let nfa = rrstar_x();
        assert_eq!(nfa.alphabet(), BTreeSet::from([r("R"), r("X")]));
        assert_eq!(nfa.all_transitions().len(), 3);
        assert!(nfa.all_epsilon_transitions().is_empty());
    }

    #[test]
    fn nondeterminism_is_resolved_by_subset_step() {
        let mut nfa = Nfa::new(3, 0);
        nfa.add_transition(0, r("R"), 1);
        nfa.add_transition(0, r("R"), 2);
        nfa.set_accepting(2);
        assert!(nfa.accepts(&w("R")));
        let dfa = nfa.to_dfa();
        assert!(dfa.accepts(&w("R")));
        assert!(!dfa.accepts(&w("RR")));
    }
}
