//! # cqa-automata
//!
//! The automaton-based machinery of Section 5 of the paper: the
//! nondeterministic automaton `NFA(q)` whose backward ε-transitions capture
//! the *rewinding* operator, the shifted automata `S-NFA(q, u)`, the minimal
//! acceptor `NFAmin(q)`, and the evaluation of these automata over
//! (consistent) database instances, including `start(q, r)` and the states
//! sets `ST_q(f, r)`.
//!
//! ```
//! use cqa_automata::prelude::*;
//! use cqa_core::prelude::*;
//!
//! let q = PathQuery::parse("RRX").unwrap();
//! let a = QueryNfa::new(&q);
//! // NFA(RRX) accepts the regular language R R (R)* X.
//! assert!(a.accepts(&Word::from_letters("RRRRX")));
//! assert!(!a.accepts(&Word::from_letters("RX")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nfa;
pub mod query_nfa;
pub mod run;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::nfa::{Dfa, Nfa};
    pub use crate::query_nfa::QueryNfa;
    pub use crate::run::{all_states_sets, start_set, states_set, ProductReachability};
}
