//! The automaton `NFA(q)` of Definition 3 and the language `L↬(q)`.
//!
//! The states of `NFA(q)` are the prefixes of `q` (identified with their
//! lengths `0..=|q|`); forward transitions spell out `q`, and *backward*
//! ε-transitions go from a longer prefix `wR` to a shorter prefix `uR`
//! ending with the same relation name, capturing the rewinding operator.
//! `NFA(q)` accepts exactly `L↬(q)`, the smallest language containing `q`
//! and closed under rewinding (Lemma 4).

use std::collections::BTreeSet;

use cqa_core::query::PathQuery;
use cqa_core::word::Word;

use crate::nfa::{Dfa, Nfa};

/// The automaton `NFA(q)` together with its query.
#[derive(Debug, Clone)]
pub struct QueryNfa {
    word: Word,
    nfa: Nfa,
}

impl QueryNfa {
    /// Builds `NFA(q)` for a path query.
    pub fn new(q: &PathQuery) -> QueryNfa {
        QueryNfa::from_word(q.word().clone())
    }

    /// Builds `NFA(q)` from the word representation of `q`.
    pub fn from_word(word: Word) -> QueryNfa {
        let n = word.len();
        // State i represents the prefix of length i.
        let mut nfa = Nfa::new(n + 1, 0);
        for i in 0..n {
            nfa.add_transition(i, word[i], i + 1);
        }
        // Backward transitions: from state j to state i (both >= 1, i < j)
        // when the prefixes of length i and j end with the same relation name.
        for j in 1..=n {
            for i in 1..j {
                if word[i - 1] == word[j - 1] {
                    nfa.add_epsilon(j, i);
                }
            }
        }
        nfa.set_accepting(n);
        QueryNfa { word, nfa }
    }

    /// The query word.
    pub fn word(&self) -> &Word {
        &self.word
    }

    /// The underlying automaton (start state `ε`).
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Number of states (`|q| + 1`).
    pub fn num_states(&self) -> usize {
        self.nfa.num_states()
    }

    /// The accepting state (the full word `q`).
    pub fn accepting_state(&self) -> usize {
        self.word.len()
    }

    /// The prefix of `q` represented by a state.
    pub fn state_prefix(&self, state: usize) -> Word {
        self.word.prefix(state)
    }

    /// The automaton `S-NFA(q, u)` where `u` is the prefix of length
    /// `prefix_len` (Definition 5): the same automaton started at `u`.
    pub fn s_nfa(&self, prefix_len: usize) -> Nfa {
        self.nfa.with_start(prefix_len)
    }

    /// True iff `p ∈ L↬(q)`, via acceptance by `NFA(q)` (Lemma 4).
    pub fn accepts(&self, p: &Word) -> bool {
        self.nfa.accepts(p)
    }

    /// True iff `S-NFA(q, u)` accepts `p`, where `u` has length `prefix_len`.
    pub fn accepts_from(&self, prefix_len: usize, p: &Word) -> bool {
        self.nfa.accepts_from(prefix_len, p)
    }

    /// The backward (ε) transitions as `(from, to)` pairs of prefix lengths.
    pub fn backward_transitions(&self) -> Vec<(usize, usize)> {
        self.nfa.all_epsilon_transitions()
    }

    /// All states `w` (prefix lengths) that have a backward transition to
    /// `to`, i.e. longer prefixes ending with the same relation name.
    /// Used by the fixpoint algorithm of Figure 5.
    pub fn backward_predecessors(&self, to: usize) -> Vec<usize> {
        self.backward_transitions()
            .into_iter()
            .filter(|&(_, t)| t == to)
            .map(|(f, _)| f)
            .collect()
    }

    /// The DFA accepting `L↬(q)`.
    pub fn to_dfa(&self) -> Dfa {
        self.nfa.to_dfa()
    }

    /// The automaton `NFAmin(q)` of Definition 13, as a DFA: it accepts `p`
    /// iff `NFA(q)` accepts `p` and no proper prefix of `p` is accepted.
    pub fn minimal_dfa(&self) -> Dfa {
        self.to_dfa().minimal_words()
    }

    /// A bounded enumeration of `L↬(q)`: every word obtainable from `q` with
    /// at most `depth` rewinds. Useful for tests and for inspecting the
    /// language; `L↬(q)` itself is infinite whenever `q` has a self-join.
    pub fn bounded_language(&self, depth: usize) -> BTreeSet<Word> {
        self.word.rewind_closure(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::conditions::{satisfies_c1, satisfies_c3};
    use cqa_core::symbol::RelName;

    fn qnfa(word: &str) -> QueryNfa {
        QueryNfa::new(&PathQuery::parse(word).unwrap())
    }

    fn w(word: &str) -> Word {
        Word::from_letters(word)
    }

    #[test]
    fn figure_4_structure_of_nfa_rxrrr() {
        // NFA(RXRRR) has 6 states and the backward transitions drawn in
        // Figure 4: from every longer prefix ending in R to every shorter one.
        let a = qnfa("RXRRR");
        assert_eq!(a.num_states(), 6);
        assert_eq!(a.accepting_state(), 5);
        // Prefixes ending in R: lengths 1, 3, 4, 5. Backward transitions are
        // all (longer, shorter) pairs: (3,1), (4,1), (5,1), (4,3), (5,3), (5,4).
        let mut backward = a.backward_transitions();
        backward.sort_unstable();
        assert_eq!(
            backward,
            vec![(3, 1), (4, 1), (4, 3), (5, 1), (5, 3), (5, 4)]
        );
        // Forward transitions spell out the word.
        assert_eq!(a.nfa().all_transitions().len(), 5);
    }

    #[test]
    fn nfa_accepts_the_query_itself() {
        for word in ["R", "RR", "RRX", "RXRY", "RXRRR", "ARRX"] {
            assert!(qnfa(word).accepts(&w(word)), "{word}");
        }
    }

    #[test]
    fn nfa_of_rrx_accepts_rr_star_x() {
        // Example 5: NFA(RRX) accepts the regular language RR(R)*X.
        let a = qnfa("RRX");
        assert!(a.accepts(&w("RRX")));
        assert!(a.accepts(&w("RRRX")));
        assert!(a.accepts(&w("RRRRRX")));
        assert!(!a.accepts(&w("RX")));
        assert!(!a.accepts(&w("RRXX")));
        assert!(!a.accepts(&w("RR")));
    }

    #[test]
    fn lemma_4_nfa_accepts_every_bounded_rewind() {
        for word in ["RRX", "RXRY", "RXRRR", "RXRXRYRY", "TWITTER"] {
            let a = qnfa(word);
            for p in a.bounded_language(3) {
                assert!(a.accepts(&p), "NFA({word}) must accept {p}");
            }
        }
    }

    #[test]
    fn nfa_rejects_words_outside_the_language() {
        let a = qnfa("RRX");
        for bad in ["XRR", "RXR", "RRXR", "RRRR"] {
            assert!(!a.accepts(&w(bad)), "{bad}");
        }
    }

    #[test]
    fn lemma_5_prefix_and_factor_characterisations() {
        // For words satisfying C1 (resp. C3), q is a prefix (resp. factor) of
        // every word in the bounded language.
        for word in ["RXRX", "RR", "RRX", "RXRY", "RXRYRY", "ARRX", "RXRXRYRY"] {
            let q = w(word);
            let a = QueryNfa::from_word(q.clone());
            let language = a.bounded_language(3);
            if satisfies_c1(&q) {
                assert!(language.iter().all(|p| q.is_prefix_of(p)), "{word}");
            }
            if satisfies_c3(&q) {
                assert!(language.iter().all(|p| q.is_factor_of(p)), "{word}");
            } else {
                assert!(language.iter().any(|p| !q.is_factor_of(p)), "{word}");
            }
        }
    }

    #[test]
    fn s_nfa_starts_midway() {
        // Example 5: S-NFA(RRX, R) accepts the path R R X read from state R.
        let a = qnfa("RRX");
        assert!(a.accepts_from(1, &w("RX")));
        assert!(a.accepts_from(1, &w("RRX"))); // uses the backward transition
        assert!(a.accepts_from(2, &w("X")));
        // From state RR, the automaton may rewind to R and then read RX.
        assert!(a.accepts_from(2, &w("RX")));
        assert!(!a.accepts_from(2, &w("R")));
        assert!(a.accepts_from(0, &w("RRX")));
    }

    #[test]
    fn nfamin_accepts_only_minimal_words() {
        // Example 6: q = RXRYR; RXRYRYR is accepted by NFA(q) but not by
        // NFAmin(q) because its proper prefix RXRYR is also accepted.
        let a = qnfa("RXRYR");
        let min = a.minimal_dfa();
        assert!(a.accepts(&w("RXRYRYR")));
        assert!(min.accepts(&w("RXRYR")));
        assert!(!min.accepts(&w("RXRYRYR")));
    }

    #[test]
    fn lemma_16_minimal_language_shape() {
        // q = RRX = s (uv)^(k-1) w v with uv = R, wv = X, s = ε or R:
        // NFAmin(q) accepts RR(R)*X (every accepted word is already minimal).
        let a = qnfa("RRX");
        let min = a.minimal_dfa();
        for good in ["RRX", "RRRX", "RRRRX"] {
            assert!(min.accepts(&w(good)), "{good}");
        }
        for bad in ["RX", "RRXX", "RRXRX"] {
            assert!(!min.accepts(&w(bad)), "{bad}");
        }
    }

    #[test]
    fn backward_predecessors_list_longer_prefixes() {
        let a = qnfa("RXRRR");
        assert_eq!(a.backward_predecessors(1), vec![3, 4, 5]);
        assert_eq!(a.backward_predecessors(3), vec![4, 5]);
        assert!(a.backward_predecessors(2).is_empty());
    }

    #[test]
    fn state_prefixes_round_trip() {
        let a = qnfa("RXR");
        assert_eq!(a.state_prefix(0), Word::empty());
        assert_eq!(a.state_prefix(2), w("RX"));
        assert_eq!(a.state_prefix(3), w("RXR"));
        let _ = RelName::new("R");
    }
}
