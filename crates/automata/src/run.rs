//! Running `NFA(q)` and `S-NFA(q, u)` over database instances.
//!
//! This module implements the semantics of Definition 6 (paths accepted by an
//! automaton), the set `start(q, r)` of constants from which an accepted path
//! starts in a consistent instance `r`, and the *states sets* `ST_q(f, r)` of
//! Definition 7, which drive the minimal-repair construction of Lemma 9 and
//! the correctness of the fixpoint algorithm.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use cqa_core::symbol::RelName;
use cqa_db::fact::{Constant, Fact};
use cqa_db::repair::ConsistentInstance;

use crate::query_nfa::QueryNfa;

/// The set of pairs `(c, s)` such that some path of `r` starting in `c` is
/// accepted by the automaton started in state `s`.
///
/// Computed as a backward fixpoint over the product of the automaton and the
/// instance: `(c, s)` is accepting-reachable if `s` is accepting, or there is
/// an ε-move `s → s'` with `(c, s')` accepting-reachable, or a fact
/// `R(c, d) ∈ r` and a transition `s --R--> s'` with `(d, s')`
/// accepting-reachable.
#[derive(Debug, Clone)]
pub struct ProductReachability {
    accepted: BTreeSet<(Constant, usize)>,
}

impl ProductReachability {
    /// Computes the accepting-reachable pairs for an automaton over a
    /// consistent instance.
    pub fn compute(automaton: &QueryNfa, r: &ConsistentInstance) -> ProductReachability {
        let nfa = automaton.nfa();
        let adom: Vec<Constant> = r.adom().iter().copied().collect();

        // Reverse indices over the automaton.
        let mut eps_preds: Vec<Vec<usize>> = vec![Vec::new(); nfa.num_states()];
        for (from, to) in nfa.all_epsilon_transitions() {
            eps_preds[to].push(from);
        }
        // label -> list of (from_state, to_state)
        let mut labelled_preds: BTreeMap<RelName, Vec<(usize, usize)>> = BTreeMap::new();
        for (from, label, to) in nfa.all_transitions() {
            labelled_preds.entry(label).or_default().push((from, to));
        }
        // Reverse index over the instance: (rel, value) -> keys.
        let mut in_edges: BTreeMap<(RelName, Constant), Vec<Constant>> = BTreeMap::new();
        for f in r.facts() {
            in_edges.entry((f.rel, f.value)).or_default().push(f.key);
        }

        let mut accepted: BTreeSet<(Constant, usize)> = BTreeSet::new();
        let mut queue: VecDeque<(Constant, usize)> = VecDeque::new();
        for &c in &adom {
            for &s in nfa.accepting() {
                if accepted.insert((c, s)) {
                    queue.push_back((c, s));
                }
            }
        }
        while let Some((d, s_prime)) = queue.pop_front() {
            // ε-predecessors: (d, s) for s --ε--> s'.
            for &s in &eps_preds[s_prime] {
                if accepted.insert((d, s)) {
                    queue.push_back((d, s));
                }
            }
            // Labelled predecessors: fact R(c, d) in r and s --R--> s'.
            for (&(rel, value), keys) in &in_edges {
                if value != d {
                    continue;
                }
                if let Some(pairs) = labelled_preds.get(&rel) {
                    for &(from, to) in pairs {
                        if to != s_prime {
                            continue;
                        }
                        for &c in keys {
                            if accepted.insert((c, from)) {
                                queue.push_back((c, from));
                            }
                        }
                    }
                }
            }
        }
        ProductReachability { accepted }
    }

    /// True iff some path of the instance starting in `c` is accepted by the
    /// automaton started in state `state`.
    pub fn accepts_from(&self, c: Constant, state: usize) -> bool {
        self.accepted.contains(&(c, state))
    }

    /// All constants `c` with `(c, state)` accepting-reachable.
    pub fn constants_for_state(&self, state: usize) -> BTreeSet<Constant> {
        self.accepted
            .iter()
            .filter(|&&(_, s)| s == state)
            .map(|&(c, _)| c)
            .collect()
    }
}

/// `start(q, r)` (Definition 6): all constants `c ∈ adom(r)` such that some
/// path of `r` starting in `c` is accepted by `NFA(q)`.
pub fn start_set(automaton: &QueryNfa, r: &ConsistentInstance) -> BTreeSet<Constant> {
    let reach = ProductReachability::compute(automaton, r);
    reach.constants_for_state(automaton.nfa().start())
}

/// The *states set* `ST_q(f, r)` of Definition 7 for a fact `f ∈ r`: the set
/// of states `uR` (identified by prefix length) such that `S-NFA(q, u)`
/// accepts a path of `r` that starts with `f`.
pub fn states_set(automaton: &QueryNfa, f: &Fact, r: &ConsistentInstance) -> BTreeSet<usize> {
    debug_assert!(r.contains(f), "ST_q(f, r) requires f ∈ r");
    let reach = ProductReachability::compute(automaton, r);
    states_set_with(automaton, f, &reach)
}

/// As [`states_set`], but reusing a precomputed [`ProductReachability`] so
/// that the states sets of many facts of the same instance can be obtained
/// without recomputing the product fixpoint.
pub fn states_set_with(
    automaton: &QueryNfa,
    f: &Fact,
    reach: &ProductReachability,
) -> BTreeSet<usize> {
    let nfa = automaton.nfa();
    let word = automaton.word();
    let mut result = BTreeSet::new();
    // Candidate states uR are the nonempty prefixes whose last letter is the
    // relation name of f.
    for state in 1..=word.len() {
        if word[state - 1] != f.rel {
            continue;
        }
        let u = state - 1;
        // S-NFA(q, u) accepts a path starting with f iff from the ε-closure
        // of {u} there is a transition labelled f.rel into a state s'' such
        // that (f.value, s'') is accepting-reachable.
        let closure = nfa.epsilon_closure(&BTreeSet::from([u]));
        let mut witnessed = false;
        'outer: for &s in &closure {
            for &(label, to) in nfa.transitions_from(s) {
                if label == f.rel && reach.accepts_from(f.value, to) {
                    witnessed = true;
                    break 'outer;
                }
            }
        }
        if witnessed {
            result.insert(state);
        }
    }
    result
}

/// All states sets of an instance at once: maps each fact of `r` to
/// `ST_q(f, r)`.
pub fn all_states_sets(
    automaton: &QueryNfa,
    r: &ConsistentInstance,
) -> BTreeMap<Fact, BTreeSet<usize>> {
    let reach = ProductReachability::compute(automaton, r);
    r.facts()
        .iter()
        .map(|f| (*f, states_set_with(automaton, f, &reach)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_core::query::PathQuery;
    use cqa_db::instance::DatabaseInstance;

    fn qnfa(word: &str) -> QueryNfa {
        QueryNfa::new(&PathQuery::parse(word).unwrap())
    }

    fn c(s: &str) -> Constant {
        Constant::new(s)
    }

    /// The instance of Figure 2 / Example 4.
    fn figure_2() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        db
    }

    #[test]
    fn example_4_start_sets() {
        // start(RRX, r1) = {0, 1} and start(RRX, r2) = {0} where r1 contains
        // R(1,2) and r2 contains R(1,3).
        let db = figure_2();
        let a = qnfa("RRX");
        let r1 = db.repair_containing(&[Fact::parse("R", "1", "2")]).unwrap();
        let r2 = db.repair_containing(&[Fact::parse("R", "1", "3")]).unwrap();
        assert_eq!(start_set(&a, &r1), BTreeSet::from([c("0"), c("1")]));
        assert_eq!(start_set(&a, &r2), BTreeSet::from([c("0")]));
    }

    #[test]
    fn example_5_states_sets() {
        // q = RRX, r = {R(a,b), R(b,c), R(c,d), X(d,e), R(d,e)}.
        let r = ConsistentInstance::from_facts([
            Fact::parse("R", "a", "b"),
            Fact::parse("R", "b", "c"),
            Fact::parse("R", "c", "d"),
            Fact::parse("X", "d", "e"),
            Fact::parse("R", "d", "e"),
        ]);
        let a = qnfa("RRX");
        // ST(R(b,c)) contains states R (1) and RR (2).
        let st_bc = states_set(&a, &Fact::parse("R", "b", "c"), &r);
        assert_eq!(st_bc, BTreeSet::from([1, 2]));
        // ST(R(d,e)) is empty: no accepted path uses R(d,e).
        let st_de = states_set(&a, &Fact::parse("R", "d", "e"), &r);
        assert!(st_de.is_empty());
        // ST(R(a,b)) contains R (start of the RRRX path) and RR.
        let st_ab = states_set(&a, &Fact::parse("R", "a", "b"), &r);
        assert_eq!(st_ab, BTreeSet::from([1, 2]));
        // ST(X(d,e)) contains RRX (3).
        let st_x = states_set(&a, &Fact::parse("X", "d", "e"), &r);
        assert_eq!(st_x, BTreeSet::from([3]));
    }

    #[test]
    fn lemma_8_states_sets_are_upward_closed() {
        // If uR is in ST(f, r) then every longer prefix ending in R is too.
        let r = ConsistentInstance::from_facts([
            Fact::parse("R", "a", "b"),
            Fact::parse("R", "b", "c"),
            Fact::parse("R", "c", "d"),
            Fact::parse("X", "d", "e"),
        ]);
        let a = qnfa("RRX");
        let word = a.word().clone();
        for (fact, st) in all_states_sets(&a, &r) {
            for &state in &st {
                for longer in state + 1..=word.len() {
                    if word[longer - 1] == word[state - 1] {
                        assert!(
                            st.contains(&longer),
                            "ST({fact}) = {st:?} is not upward closed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cyclic_instances_terminate_and_accept() {
        // A consistent cycle a -R-> b -R-> a satisfies RR...R for any length.
        let r = ConsistentInstance::from_facts([
            Fact::parse("R", "a", "b"),
            Fact::parse("R", "b", "a"),
        ]);
        let a = qnfa("RRRRR");
        let starts = start_set(&a, &r);
        assert_eq!(starts, BTreeSet::from([c("a"), c("b")]));
    }

    #[test]
    fn start_set_empty_when_no_accepted_path() {
        let r = ConsistentInstance::from_facts([Fact::parse("R", "a", "b")]);
        let a = qnfa("RRX");
        assert!(start_set(&a, &r).is_empty());
    }

    #[test]
    fn product_reachability_respects_states() {
        let r = ConsistentInstance::from_facts([
            Fact::parse("R", "a", "b"),
            Fact::parse("X", "b", "z"),
        ]);
        let a = qnfa("RRX");
        let reach = ProductReachability::compute(&a, &r);
        // From state RR (2), the remaining word RX... wait, from state 2 the
        // automaton needs X; starting at b there is an X-fact, so (b, 2) holds
        // after reading X; from state 1 at a: needs R then X -> holds via
        // rewinding? From 1, reading R(a,b) goes to 2, then X(b,z) to accept.
        assert!(reach.accepts_from(c("b"), 2));
        assert!(reach.accepts_from(c("a"), 1));
        // But the full query RRX from state 0 needs two R-steps before X.
        assert!(!reach.accepts_from(c("a"), 0));
    }
}
