//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace ships the small subset of the `rand` 0.9 API it actually uses:
//! [`Rng`], the [`RngExt`] extension trait (`random_range` / `random_bool`),
//! [`SeedableRng`], [`rngs::StdRng`] and the process-entropy constructor
//! [`rng()`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for workload generation and benchmarks,
//! deterministic per seed, and obviously **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values.
///
/// Object-safe so generators can be passed as `&mut dyn Rng` or through
/// `R: Rng + ?Sized` bounds, mirroring the upstream trait.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Rejection-free multiply-shift would need 128-bit widening on
                // u128 spans; ranges in this workspace are tiny, so simple
                // modulo reduction with a 64-bit draw is fine (bias < 2^-32
                // for spans < 2^32).
                let draw = rng.next_u64() as u128 % span;
                (low as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as u128) - (low as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                ((low as u128) + draw) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// Convenience draws on top of [`Rng`], mirroring `rand`'s method names.
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seeding support for deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = StdRng::splitmix(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// A generator seeded from process-local entropy (time and a per-process
/// counter), analogous to `rand::rng()`. Streams differ between calls and
/// between processes; use [`SeedableRng::seed_from_u64`] for reproducibility.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEADBEEF);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ count.rotate_left(32) ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn all_values_of_a_small_range_occur() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn Rng = &mut rng;
        assert!(draw(dynrng) < 10);
    }
}
