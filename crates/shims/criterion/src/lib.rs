//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace ships the subset of the Criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is calibrated with a single timed call,
//! then run for `sample_size` samples of `iters` calls each; the reported
//! statistic is the **median ns per iteration** across samples (median is
//! robust to scheduler noise, matching Criterion's reporting spirit).
//!
//! Environment knobs:
//!
//! * `CQA_BENCH_JSON` — append one JSON line per benchmark
//!   (`{"group":…,"id":…,"median_ns":…}`) to the given file; used by
//!   `scripts/bench_datalog.sh` to assemble `BENCH_datalog.json`.
//! * `CQA_BENCH_TARGET_MS` — per-benchmark time budget in milliseconds
//!   (default 300).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_benchmark("", id, 20, f);
    }
}

/// Throughput annotation; accepted for API compatibility, not reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A `function-name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the throughput annotation (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&self.name, id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn target_budget() -> Duration {
    let ms = std::env::var("CQA_BENCH_TARGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    // Calibration: one iteration, also serves as warm-up.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let est = bencher.elapsed.max(Duration::from_nanos(1));

    let budget = target_budget();
    let mut samples = sample_size.clamp(3, 200);
    let per_sample = budget / samples as u32;
    let iters = if est >= per_sample {
        // Slow routine: one call per sample, shrink the sample count so the
        // total stays within ~3x the budget.
        let max_samples = (budget.as_nanos().saturating_mul(3) / est.as_nanos()).max(3) as usize;
        samples = samples.min(max_samples);
        1
    } else {
        (per_sample.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64
    };

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    eprintln!("bench {full:<60} median {median:>14.1} ns/iter ({samples} samples x {iters} iters)");

    if let Ok(path) = std::env::var("CQA_BENCH_JSON") {
        // Fail loudly at the cause: a silently missing JSONL line would only
        // surface later as a confusing error in scripts/bench_datalog.sh.
        let result = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| {
                writeln!(
                    file,
                    "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1},\"samples\":{},\"iters\":{}}}",
                    escape(group),
                    escape(id),
                    median,
                    samples,
                    iters
                )
            });
        if let Err(e) = result {
            panic!("CQA_BENCH_JSON: cannot write {path}: {e}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Declares a benchmark entry point running each function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &41u64, |b, &x| {
            ran = true;
            b.iter(|| x + 1)
        });
        group.finish();
        assert!(ran);
    }
}
