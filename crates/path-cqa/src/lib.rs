//! # path-cqa
//!
//! A reproduction of *"Consistent Query Answering for Primary Keys on Path
//! Queries"* (Koutris, Ouyang, Wijsen; PODS 2021): the tetrachotomy
//! FO / NL-complete / PTIME-complete / coNP-complete for `CERTAINTY(q)` on
//! path queries with self-joins, together with executable algorithms for
//! every class, the hardness gadgets, and the substrates they need.
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! * [`core`](cqa_core) — words, rewinding, path queries, the C/B/D
//!   conditions and the classification;
//! * [`db`](cqa_db) — inconsistent database instances, blocks, repairs;
//! * [`automata`](cqa_automata) — `NFA(q)`, `S-NFA(q,u)`, `NFAmin(q)` and
//!   runs over instances;
//! * [`fo`](cqa_fo) — first-order rewritings and their evaluation;
//! * [`datalog`](cqa_datalog) — stratified Datalog and the linear program of
//!   Lemma 14;
//! * [`sat`](cqa_sat) — a CDCL SAT solver;
//! * [`solver`](cqa_solver) — the certainty solvers and the dispatcher;
//! * [`reductions`](cqa_reductions) — the REACHABILITY/SAT/MCVP gadgets;
//! * [`workloads`](cqa_workloads) — figure instances and synthetic
//!   generators.
//!
//! ## Quickstart
//!
//! ```
//! use path_cqa::prelude::*;
//!
//! // An inconsistent database: key 1 has two conflicting R-facts.
//! let mut db = DatabaseInstance::new();
//! db.insert_parsed("R", "0", "1");
//! db.insert_parsed("R", "1", "2");
//! db.insert_parsed("R", "1", "3");
//! db.insert_parsed("R", "2", "3");
//! db.insert_parsed("X", "3", "4");
//!
//! // The path query R R X (self-join on R).
//! let q = PathQuery::parse("RRX").unwrap();
//!
//! // Classify: CERTAINTY(RRX) is NL-complete ...
//! assert_eq!(classify(&q).class, ComplexityClass::NlComplete);
//! // ... and this instance is a "yes"-instance: every repair satisfies q.
//! assert!(solve_certainty(&q, &db).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cqa_automata as automata;
pub use cqa_core as core;
pub use cqa_datalog as datalog;
pub use cqa_db as db;
pub use cqa_fo as fo;
pub use cqa_reductions as reductions;
pub use cqa_sat as sat;
pub use cqa_solver as solver;
pub use cqa_workloads as workloads;

/// One-stop prelude combining the preludes of every workspace crate.
pub mod prelude {
    pub use cqa_automata::prelude::*;
    pub use cqa_core::prelude::*;
    pub use cqa_datalog::prelude::*;
    pub use cqa_db::prelude::*;
    pub use cqa_fo::prelude::*;
    pub use cqa_reductions::prelude::*;
    pub use cqa_sat::prelude::*;
    pub use cqa_solver::prelude::*;
    pub use cqa_workloads::prelude::*;
}
