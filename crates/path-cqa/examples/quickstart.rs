//! Quickstart: build an inconsistent database, classify a path query, and
//! compute its certain answer with the classification-driven dispatcher.
//!
//! Run with `cargo run --example quickstart`.

use path_cqa::prelude::*;

fn main() {
    // A small data-integration scenario: two sources disagree on the manager
    // of employee `eve`, so the block ReportsTo(eve, ∗) has two facts.
    let mut db = DatabaseInstance::new();
    db.insert_parsed("ReportsTo", "eve", "bob");
    db.insert_parsed("ReportsTo", "eve", "carol");
    db.insert_parsed("ReportsTo", "bob", "alice");
    db.insert_parsed("ReportsTo", "carol", "alice");
    db.insert_parsed("ReportsTo", "alice", "dana");

    println!("database instance ({} facts):", db.len());
    for fact in db.facts() {
        println!("  {fact}");
    }
    println!("consistent? {}", db.is_consistent());
    println!("number of repairs: {}", db.repair_count());

    // The Boolean path query: is there a chain of three ReportsTo edges?
    // As a word this is the self-join ReportsTo·ReportsTo·ReportsTo.
    let q = PathQuery::parse_names("ReportsTo ReportsTo ReportsTo").expect("valid query");
    let classification = classify(&q);
    println!("\nquery q = {q}");
    println!(
        "CERTAINTY(q) is {} (C1={}, C2={}, C3={})",
        classification.class, classification.c1, classification.c2, classification.c3
    );

    // Decide certainty with the dispatcher (here: the FO rewriting).
    let dispatcher = DispatchSolver::new();
    println!("routed to solver: {}", dispatcher.route(&q));
    let certain = dispatcher.certain(&q, &db).expect("solvable");
    println!("certain answer (every repair satisfies q): {certain}");

    // Compare against the exhaustive oracle.
    let oracle = NaiveSolver::default()
        .certain(&q, &db)
        .expect("small instance");
    println!("naive oracle agrees: {}", certain == oracle);

    // A query that is *not* certain: a chain of four ReportsTo edges exists
    // in some repairs (via bob? no — alice has a single manager) but not all.
    let q4 = PathQuery::parse_names("ReportsTo ReportsTo ReportsTo ReportsTo").expect("valid");
    let certain4 = dispatcher.certain(&q4, &db).expect("solvable");
    println!("\nquery q4 = {q4}");
    println!("certain answer: {certain4}");
    if !certain4 {
        let witness = NaiveSolver::default()
            .find_falsifying_repair(&q4, &db)
            .expect("small instance");
        if let Some(repair) = witness {
            println!("a repair falsifying q4: {repair:?}");
        }
    }
}
