//! Walks through the figures and worked examples of the paper: Figure 1
//! (Examples 1–2), Figure 2 (Example 4), Figure 3, Figure 4's automaton, and
//! the Figure 5/6 fixpoint run.
//!
//! Run with `cargo run --example figure_instances`.

use path_cqa::prelude::*;

fn main() {
    figure_1_examples();
    figure_2_example_4();
    figure_3_bifurcation();
    figure_4_automaton();
    figure_6_fixpoint_run();
}

fn figure_1_examples() {
    println!("=== Figure 1 / Examples 1 and 2 ===");
    let db = figure_1();
    println!("instance: {db}");
    // q2 = R(x,y), S(y,x) — self-join-free; some repair falsifies it.
    // Its path-query analogue here: every repair satisfies RR (Example 1's
    // argument specialised to paths), but RS is not certain.
    let naive = NaiveSolver::default();
    let rr = PathQuery::parse("RR").unwrap();
    let rs = PathQuery::parse("RS").unwrap();
    println!(
        "CERTAINTY(RR) on Figure 1: {}",
        naive.certain(&rr, &db).unwrap()
    );
    println!(
        "CERTAINTY(RS) on Figure 1: {}",
        naive.certain(&rs, &db).unwrap()
    );
    println!();
}

fn figure_2_example_4() {
    println!("=== Figure 2 / Example 4 (q = RRX) ===");
    let db = figure_2();
    let q = figure_2_query();
    println!("instance: {db}");
    println!("repairs: {}", db.repair_count());
    let automaton = QueryNfa::new(&q);
    for repair in db.repairs() {
        let starts = start_set(&automaton, &repair);
        println!("  repair {repair:?}");
        println!("    start(q, r) = {starts:?}");
    }
    println!(
        "certain (dispatcher): {}",
        solve_certainty(&q, &db).unwrap()
    );
    println!();
}

fn figure_3_bifurcation() {
    println!("=== Figure 3 (q = ARRX, coNP-complete) ===");
    let db = figure_3();
    let q = figure_3_query();
    println!("instance: {db}");
    let sat_solver = SatCertaintySolver::default();
    let certain = sat_solver.certain(&q, &db).unwrap();
    println!("certain: {certain}");
    if let Some(repair) = sat_solver.find_falsifying_repair(&q, &db).unwrap() {
        println!("falsifying repair found by the SAT encoding: {repair:?}");
    }
    println!();
}

fn figure_4_automaton() {
    println!("=== Figure 4: NFA(RXRRR) ===");
    let q = figure_4_query();
    let a = QueryNfa::new(&q);
    println!("query: {q}");
    println!("states (prefixes): ");
    for s in 0..a.num_states() {
        println!("  {s}: {}", a.state_prefix(s));
    }
    println!("forward transitions: {:?}", a.nfa().all_transitions());
    println!(
        "backward (rewinding) transitions: {:?}",
        a.backward_transitions()
    );
    for word in ["RXRRR", "RXRXRRR", "RXRRRRR", "RXRR"] {
        println!(
            "  accepts {word:<9} = {}",
            a.accepts(&Word::from_letters(word))
        );
    }
    println!();
}

fn figure_6_fixpoint_run() {
    println!("=== Figures 5 and 6: the PTIME fixpoint algorithm on RRX ===");
    let db = figure_6();
    let q = figure_2_query();
    println!("instance: {db}");
    let run = compute_fixpoint(&q, &db);
    println!("derived pairs (in derivation order):");
    for (c, prefix_len) in &run.derivation_order {
        println!("  <{c}, {}>", q.word().prefix(*prefix_len));
    }
    println!(
        "certain start vertices (Corollary 1): {:?}",
        run.certain_start_vertices()
    );
    println!("yes-instance: {}", !run.certain_start_vertices().is_empty());
    // The LFP formula of Figure 7 for the same query.
    println!("\nLFP formula (Figure 7):\n{}", lfp_formula_text(q.word()));
}
