//! Builds the hardness gadgets of Section 7 (Figures 8, 9 and 10) from small
//! source instances and verifies the reductions against the solvers:
//!
//! * REACHABILITY → co-CERTAINTY(q) for a query violating C1 (Lemma 18),
//! * SAT → co-CERTAINTY(q) for a query violating C3 (Lemma 19),
//! * MCVP → CERTAINTY(q) for a query violating C2 (Lemma 20).
//!
//! Run with `cargo run --example hardness_gadgets`.

use path_cqa::prelude::*;

fn main() {
    reachability_gadget();
    sat_gadget();
    mcvp_gadget();
}

fn reachability_gadget() {
    println!("=== Lemma 18 / Figure 8: REACHABILITY -> co-CERTAINTY(RRX) ===");
    // The graph of Figure 8: V = {s, a, t}, E = {(s,a), (a,t)}.
    let mut graph = Digraph::new(3);
    graph.add_edge(0, 1);
    graph.add_edge(1, 2);
    let q = PathQuery::parse("RRX").unwrap();
    let db = reachability_reduction(&graph, 0, 2, &q).unwrap();
    println!(
        "gadget instance has {} facts over {} blocks",
        db.len(),
        db.block_count()
    );
    let certain = solve_certainty(&q, &db).unwrap();
    println!(
        "t reachable from s: {}   |   instance certain: {}   (expected: reachable ⇔ not certain)",
        graph.reachable(0, 2),
        certain
    );

    // Remove the second edge: t becomes unreachable, the instance certain.
    let mut graph2 = Digraph::new(3);
    graph2.add_edge(0, 1);
    let db2 = reachability_reduction(&graph2, 0, 2, &q).unwrap();
    println!(
        "after removing (a, t): reachable = {}, certain = {}",
        graph2.reachable(0, 2),
        solve_certainty(&q, &db2).unwrap()
    );
    println!();
}

fn sat_gadget() {
    println!("=== Lemma 19 / Figure 9: SAT -> co-CERTAINTY(ARRX) ===");
    // ψ = (x1 ∨ x2) ∧ (¬x2 ∨ x3)  — the formula of Figure 9 (with signs).
    let mut formula = CnfFormula::new(3);
    formula.add_clause(vec![1, 2]);
    formula.add_clause(vec![-2, 3]);
    let q = PathQuery::parse("ARRX").unwrap();
    let db = sat_reduction(&formula, &q).unwrap();
    println!(
        "gadget instance has {} facts over {} blocks",
        db.len(),
        db.block_count()
    );
    let certain = SatCertaintySolver::default().certain(&q, &db).unwrap();
    println!(
        "formula satisfiable: {}   |   instance certain: {}   (expected: satisfiable ⇔ not certain)",
        formula.satisfiable(),
        certain
    );

    // An unsatisfiable formula flips the answer.
    let mut unsat = CnfFormula::new(1);
    unsat.add_clause(vec![1]);
    unsat.add_clause(vec![-1]);
    let db2 = sat_reduction(&unsat, &q).unwrap();
    println!(
        "unsatisfiable formula: certain = {}",
        SatCertaintySolver::default().certain(&q, &db2).unwrap()
    );
    println!();
}

fn mcvp_gadget() {
    println!("=== Lemma 20 / Figure 10: MCVP -> CERTAINTY(RXRYRY) ===");
    // Circuit: output = (x0 ∨ x1) ∧ x2.
    let mut circuit = MonotoneCircuit::new(3);
    let or = circuit.add_gate(Gate::Or(0, 1));
    circuit.add_gate(Gate::And(or, 2));
    let q = PathQuery::parse("RXRYRY").unwrap();
    for inputs in [
        [true, false, true],
        [false, false, true],
        [true, true, false],
    ] {
        let db = mcvp_reduction(&circuit, &inputs, &q).unwrap();
        let value = circuit.evaluate(&inputs);
        let certain = solve_certainty(&q, &db).unwrap();
        println!(
            "inputs {inputs:?}: circuit value = {value}, certain = {certain}   (expected: equal)"
        );
    }
}
