//! A domain-flavoured scenario from the paper's motivation: data integration
//! produces primary-key violations, and consistent query answering extracts
//! the answers that hold no matter how the conflicts are resolved.
//!
//! Two ticketing systems are merged. Each flight has (at most) one `Next`
//! leg and one `OperatedBy` carrier per key, but the two sources disagree on
//! some of them. We ask Boolean path queries of the form
//! `Next Next OperatedBy` ("is there certainly a two-leg connection operated
//! by some carrier?") and generalized queries with constants.
//!
//! Run with `cargo run --example data_integration`.

use path_cqa::prelude::*;

fn main() {
    let mut db = DatabaseInstance::new();
    // Source A.
    db.insert_parsed("Next", "BRU", "CDG");
    db.insert_parsed("Next", "CDG", "JFK");
    db.insert_parsed("Next", "JFK", "SFO");
    db.insert_parsed("OperatedBy", "JFK", "AcmeAir");
    db.insert_parsed("OperatedBy", "SFO", "AcmeAir");
    // Source B disagrees on the leg after CDG and on SFO's carrier.
    db.insert_parsed("Next", "CDG", "ORD");
    db.insert_parsed("OperatedBy", "SFO", "SkyHop");
    db.insert_parsed("Next", "ORD", "SFO");
    db.insert_parsed("OperatedBy", "ORD", "AcmeAir");

    println!(
        "merged instance ({} facts, {} conflicting blocks):",
        db.len(),
        db.conflicting_blocks().len()
    );
    for fact in db.facts() {
        println!("  {fact}");
    }

    // q1: a two-leg connection followed by a carrier assignment.
    let q1 = PathQuery::parse_names("Next Next OperatedBy").expect("valid query");
    let class1 = classify(&q1);
    println!("\nq1 = {q1}  ({})", class1.class);
    println!(
        "certain answer: {}",
        solve_certainty(&q1, &db).expect("solvable")
    );

    // q2: the same, but rooted at BRU (a generalized query with a constant).
    let q2 = q1.rooted_at(Symbol::new("BRU"));
    let solver = GeneralizedSolver::new();
    println!(
        "q2 = q1 rooted at BRU ({}): certain = {}",
        solver.classify(&q2).class,
        solver.certain(&q2, &db).expect("solvable")
    );

    // q3: does BRU certainly reach a flight operated by AcmeAir in exactly
    // three legs? (ends in a constant)
    let q3 = parse_query("Next('BRU', x), Next(x, y), Next(y, z), OperatedBy(z, 'AcmeAir')")
        .expect("valid query");
    println!(
        "q3 = {q3} ({}): certain = {}",
        solver.classify(&q3).class,
        solver.certain(&q3, &db).expect("solvable")
    );

    // Cross-check everything against exhaustive repair enumeration.
    let naive = NaiveSolver::default();
    println!("\ncross-check against the naive oracle:");
    println!(
        "  q1: {}",
        naive.certain(&q1, &db).unwrap() == solve_certainty(&q1, &db).unwrap()
    );
    println!(
        "  q2: {}",
        naive.certain_generalized(&q2, &db).unwrap() == solver.certain(&q2, &db).unwrap()
    );
    println!(
        "  q3: {}",
        naive.certain_generalized(&q3, &db).unwrap() == solver.certain(&q3, &db).unwrap()
    );
}
