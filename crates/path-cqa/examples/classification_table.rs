//! Reproduces the tetrachotomy of Theorem 2 / Example 3 as a table: for a
//! catalogue of path queries, print the syntactic conditions C1/C2/C3, the
//! complexity class of CERTAINTY(q), and the solver the dispatcher routes to.
//!
//! Run with `cargo run --example classification_table`.

use path_cqa::prelude::*;

fn main() {
    let catalogue = [
        // Section 1 examples.
        "RR", "RRX", "ARRX", // Example 3.
        "RXRX", "RXRY", "RXRYRY", "RXRXRYRY",
        // Figure 4 and the Lemma 3 boundary words.
        "RXRRR", "RRSRS", "RSRRR", // Self-join-free queries are always FO.
        "R", "RST", "ABCDE", // A few longer mixed queries.
        "RXRXRX", "RXRYRXRY", "UVUVWV", "ABAB", "ABABB",
    ];

    println!(
        "{:<12} {:^4} {:^4} {:^4}  {:<16} {:<18}",
        "query", "C1", "C2", "C3", "complexity", "dispatched solver"
    );
    println!("{}", "-".repeat(64));
    let dispatcher = DispatchSolver::new();
    for word in catalogue {
        let q = PathQuery::parse(word).expect("valid query");
        let c = classify(&q);
        println!(
            "{:<12} {:^4} {:^4} {:^4}  {:<16} {:<18}",
            word,
            tick(c.c1),
            tick(c.c2),
            tick(c.c3),
            c.class.to_string(),
            dispatcher.route(&q),
        );
    }

    println!();
    println!("Example 3 sanity check against the paper:");
    for (q, expected) in example_3_queries() {
        let got = classify(&q).class.name();
        println!(
            "  {:<10} expected {:<16} got {:<16} {}",
            q.to_string(),
            expected,
            got,
            if got == expected { "✓" } else { "✗" }
        );
    }

    // Classification with constants (Theorem 4 / Theorem 5): capping a query
    // with a constant can only make it easier, and PTIME-complete disappears.
    println!();
    println!("generalized queries (capped with the constant 'c'):");
    for word in ["RR", "RXRY", "RXRYRY", "RXRXRYRY"] {
        let q = PathQuery::parse(word).expect("valid");
        let capped = q.ending_at(Symbol::new("c"));
        let class = classify_generalized(&capped).class;
        println!("  [[{word}, c]]  ->  {class}");
    }
}

fn tick(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "·"
    }
}
