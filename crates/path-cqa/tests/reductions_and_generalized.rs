//! Integration tests for the lower-bound gadgets (Section 7) and the
//! treatment of constants (Section 8), cross-checked end-to-end against the
//! dispatching solver.

use path_cqa::prelude::*;

#[test]
fn reachability_reduction_round_trip_with_the_dispatcher() {
    // Lemma 18: reachable ⇔ the gadget instance is a no-instance.
    let q = PathQuery::parse("RXRY").unwrap(); // NL-complete, violates C1
    let mut rng = rand::rng();
    for _ in 0..8 {
        let graph = Digraph::random_dag(6, 0.3, &mut rng);
        let db = reachability_reduction(&graph, 0, 5, &q).unwrap();
        let certain = solve_certainty(&q, &db).unwrap();
        assert_eq!(graph.reachable(0, 5), !certain, "graph {graph:?}");
    }
}

#[test]
fn sat_reduction_round_trip_with_the_sat_solver() {
    // Lemma 19: satisfiable ⇔ the gadget instance is a no-instance.
    let q = PathQuery::parse("RXRXRYRY").unwrap(); // coNP-complete
    let mut rng = rand::rng();
    for _ in 0..6 {
        let formula = CnfFormula::random(4, 5, 3, &mut rng);
        let db = sat_reduction(&formula, &q).unwrap();
        let certain = SatCertaintySolver::default().certain(&q, &db).unwrap();
        assert_eq!(formula.satisfiable(), !certain, "formula {formula:?}");
    }
}

#[test]
fn mcvp_reduction_round_trip_with_the_fixpoint_solver() {
    // Lemma 20: circuit value ⇔ the gadget instance is a yes-instance.
    let q = PathQuery::parse("RXRYRY").unwrap(); // PTIME-complete
    let mut circuit = MonotoneCircuit::new(3);
    let or = circuit.add_gate(Gate::Or(0, 1));
    let and = circuit.add_gate(Gate::And(or, 2));
    circuit.add_gate(Gate::Or(and, 1));
    for mask in 0..8u32 {
        let inputs = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
        let db = mcvp_reduction(&circuit, &inputs, &q).unwrap();
        let certain = FixpointSolver::new().certain(&q, &db).unwrap();
        assert_eq!(circuit.evaluate(&inputs), certain, "inputs {inputs:?}");
    }
}

#[test]
fn the_gadget_instances_are_large_but_polynomial() {
    // The reductions are first-order constructions: instance size is linear
    // in the source size for a fixed query.
    let q = PathQuery::parse("RXRY").unwrap();
    let mut sizes = Vec::new();
    for n in [4, 8, 16] {
        let mut graph = Digraph::new(n);
        for i in 0..n - 1 {
            graph.add_edge(i, i + 1);
        }
        let db = reachability_reduction(&graph, 0, n - 1, &q).unwrap();
        sizes.push(db.len());
    }
    assert!(sizes[1] > sizes[0] && sizes[2] > sizes[1]);
    // Roughly linear growth: doubling n should not much more than double size.
    assert!(sizes[2] < sizes[0] * 8);
}

#[test]
fn example_9_and_10_generalized_machinery() {
    // char(q), ext(q), homomorphisms and prefix homomorphisms on Example 9/10.
    let q = parse_query("R(x,y), S(y,'0'), T('0','1'), R('1',w)").unwrap();
    let (char_word, cap) = q.characteristic_prefix().unwrap();
    assert_eq!(char_word, Word::from_letters("RS"));
    assert_eq!(cap, Cap::Const(Symbol::new("0")));
    let (ext, fresh) = q.extended_query(RelName::new("N"));
    assert_eq!(ext, Word::from_letters("RSN"));
    assert!(fresh.is_some());

    let source = PathQuery::parse("RR").unwrap().ending_at(Symbol::new("1"));
    let target = PathQuery::parse("RRR").unwrap().ending_at(Symbol::new("1"));
    assert!(has_homomorphism(&source, &target));
    assert!(!has_prefix_homomorphism(&source, &target));
}

#[test]
fn generalized_solver_handles_queries_with_multiple_constants() {
    let solver = GeneralizedSolver::new();
    let naive = NaiveSolver::default();
    let q = parse_query("R(x,y), S(y,'0'), T('0','1'), R('1',w)").unwrap();
    // Deterministic pseudo-random instances over R, S, T.
    let mut state = 0x5eed5eedu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut checked = 0;
    for _ in 0..60 {
        let mut db = DatabaseInstance::new();
        for _ in 0..(5 + next() % 8) {
            let rel = match next() % 3 {
                0 => "R",
                1 => "S",
                _ => "T",
            };
            let a = next() % 4;
            let b = next() % 4;
            db.insert_parsed(rel, &format!("{a}"), &format!("{b}"));
        }
        if db.repair_count() > 1 << 12 {
            continue;
        }
        assert_eq!(
            solver.certain(&q, &db).unwrap(),
            naive.certain_generalized(&q, &db).unwrap(),
            "disagreement on {db:?}"
        );
        checked += 1;
    }
    assert!(checked > 20, "enough instances must have been checked");
}

#[test]
fn theorem_5_trichotomy_for_capped_queries() {
    // With at least one constant, CERTAINTY is FO, NL-complete or
    // coNP-complete — never PTIME-complete.
    let alphabet = [RelName::new("R"), RelName::new("S"), RelName::new("T")];
    for word in cqa_core::word::all_words(&alphabet, 4) {
        let Ok(q) = PathQuery::new(word.clone()) else {
            continue;
        };
        let capped = q.ending_at(Symbol::new("c"));
        let class = classify_generalized(&capped).class;
        assert_ne!(class, ComplexityClass::PtimeComplete, "[[{word}, c]]");
    }
}

#[test]
fn generated_nl_datalog_program_is_linear_and_stratified_for_nl_queries() {
    for word in ["RRX", "RXRY", "RXRX", "UVUVWV", "RR"] {
        let q = PathQuery::parse(word).unwrap();
        if !satisfies_c2(q.word()) {
            continue;
        }
        if let Some(dec) = b2b_strict_decomposition(q.word()) {
            if dec.uv().is_empty() {
                continue;
            }
            // Lemma 14 claims linearity of the *generated* program, so check
            // it with the demand transformation off — the magic rewrite
            // deliberately trades linearity for a smaller derivation cone.
            let plain =
                generate_program_with_options(&dec, q.word(), PlanCache::global(), Demand::Off)
                    .unwrap();
            assert!(plain.program.is_safe(), "{word}");
            assert!(stratify(&plain.program).is_ok(), "{word}");
            assert!(is_linear(&plain.program), "{word}");
            // The default (demand-transformed) program keeps safety and
            // stratification, linear or not.
            let cqa = generate_program(&dec, q.word()).unwrap();
            assert!(cqa.program.is_safe(), "{word}");
            assert!(stratify(&cqa.program).is_ok(), "{word}");
        }
    }
}
