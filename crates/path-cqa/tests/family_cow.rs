//! The differential harness for copy-on-write store layering and
//! family-batched certainty sessions.
//!
//! Three layers of oracle pin the shared-prefix path to the fresh-load one:
//!
//! * **Store agreement** — on ≥ 200 random stratified program × prefix/delta
//!   splits, evaluating on an overlay store (frozen base + O(delta) overlay)
//!   derives exactly the fact sets of a fresh load of the full instance, at
//!   1, 2 and 8 engine threads.
//! * **Bitmap agreement** — on 200 random family workloads spanning the
//!   FO / NL / PTIME routes, `certain_batch_family` answers byte-identically
//!   to `certain_batch` over the materialized full instances, at 1, 2 and 8
//!   session threads.
//! * **Amortization** — `EvalStats::base_index_builds` proves the base's
//!   committed indexes are built exactly once per family: the first run over
//!   a shared base builds them, every sibling overlay run reports zero.

mod common;

use common::ProgramGen;
use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::{shared_prefix_families, RandomInstanceConfig};

/// Splits an instance into a (prefix, delta) pair: fact `i` goes to the
/// prefix unless `i % modulus == 0`, and every fourth delta fact is *also*
/// kept in the prefix so the overlap-deduplication path is exercised.
fn split_instance(db: &DatabaseInstance, modulus: usize) -> (DatabaseInstance, DatabaseInstance) {
    let mut prefix = DatabaseInstance::new();
    let mut delta = DatabaseInstance::new();
    for (i, &fact) in db.facts().iter().enumerate() {
        if i % modulus == 0 {
            delta.insert(fact);
            if i % (4 * modulus) == 0 {
                prefix.insert(fact); // shared fact: present in both layers
            }
        } else {
            prefix.insert(fact);
        }
    }
    (prefix, delta)
}

#[test]
fn layered_stores_match_fresh_load_on_random_splits() {
    let mut checked = 0;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xC0F_FEE + program_seed);
        let program = gen.program();
        let compiled = CompiledProgram::compile(&program)
            .unwrap_or_else(|e| panic!("compilation failed: {e}\n{program}"));
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                8 + (instance_seed as usize) * 6,
                0xBA5E + program_seed * 37 + instance_seed,
            )
            .generate();
            let (prefix, delta) = split_instance(&db, 2 + (instance_seed as usize % 3));
            assert_eq!(
                prefix.union(&delta),
                db,
                "split must partition the instance"
            );

            let fresh =
                compiled.run_on_store_with(edb_from_instance(&db), &EvalOptions::sequential());
            let base = edb_base_from_instance(&prefix);
            let layered = compiled
                .run_on_store_with(edb_overlay_on(&base, &delta), &EvalOptions::sequential());
            assert_eq!(
                layered, fresh,
                "layered/fresh disagreement (program seed {program_seed}, instance seed \
                 {instance_seed})\nprogram:\n{program}"
            );
            for threads in [2usize, 8] {
                let parallel = compiled.run_on_store_with(
                    edb_overlay_on(&base, &delta),
                    &EvalOptions::with_threads(threads),
                );
                assert_eq!(
                    parallel, fresh,
                    "layered({threads} threads) disagrees with fresh load (program seed \
                     {program_seed}, instance seed {instance_seed})\nprogram:\n{program}"
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 split-agreement pairs, got {checked}"
    );
}

#[test]
fn family_bitmaps_are_byte_identical_to_fresh_load() {
    // 200 random family workloads (50 seeds × 4 query routes: FO, two NL
    // words through the Datalog back-end, PTIME fixpoint). For each, the
    // shared-prefix bitmap must equal the materialized fresh-load bitmap at
    // 1, 2 and 8 threads.
    let words = ["RXRX", "RRX", "RXRY", "RXRYRY"];
    let mut workloads = 0;
    for seed in 0..50u64 {
        for (w, word) in words.iter().enumerate() {
            let query = PathQuery::parse(word).unwrap();
            let width = 3 + (seed as usize + w) % 4;
            let instances = 3 + (seed as usize) % 4;
            let ratio = [0.1, 0.25, 0.5][(seed as usize + w) % 3];
            let family = shared_prefix_families(
                query.word(),
                width,
                instances,
                ratio,
                0xFA4174 ^ (seed << 8) ^ w as u64,
            );
            let requests: Vec<(PathQuery, DatabaseInstance)> = (0..family.len())
                .map(|i| (query.clone(), family.materialize(i)))
                .collect();

            let bitmap = |answers: &[Result<bool, SolverError>]| -> Vec<u8> {
                let mut bytes = vec![0u8; answers.len().div_ceil(8)];
                for (i, answer) in answers.iter().enumerate() {
                    let certain = *answer
                        .as_ref()
                        .unwrap_or_else(|e| panic!("request {i} of {word} failed: {e}"));
                    bytes[i / 8] |= (certain as u8) << (i % 8);
                }
                bytes
            };

            let fresh_session =
                CertaintySession::with_options(NlBackend::Datalog, EvalOptions::sequential());
            let reference = bitmap(&fresh_session.certain_batch(&requests));
            for threads in [1usize, 2, 8] {
                let session = CertaintySession::with_options(
                    NlBackend::Datalog,
                    EvalOptions::with_threads(threads),
                );
                let shared = bitmap(&session.certain_batch_family(&query, &family));
                assert_eq!(
                    shared, reference,
                    "family bitmap differs from fresh-load ({word}, seed {seed}, \
                     {threads} threads, ratio {ratio})"
                );
            }
            workloads += 1;
        }
    }
    assert_eq!(workloads, 200, "the acceptance bar is 200 family workloads");
}

#[test]
fn base_indexes_are_built_exactly_once_per_family() {
    // The amortization the layering buys, pinned via EvalStats: the first
    // run over a family's shared base builds its committed (pred, mask)
    // indexes; every subsequent overlay run attaches them with zero builds.
    let query = PathQuery::parse("RRX").unwrap();
    let dec = b2b_strict_decomposition(query.word()).expect("RRX decomposes");
    let cqa = generate_program(&dec, query.word()).expect("RRX generates a program");
    let family = shared_prefix_families(query.word(), 30, 6, 0.2, 0x0001_DEA5);

    let base = edb_base_from_instance(family.prefix());
    assert_eq!(base.index_builds(), 0);
    let mut first_builds = 0;
    for (i, delta) in family.deltas().iter().enumerate() {
        let (_, stats) = cqa
            .compiled
            .run_on_store_with_stats(edb_overlay_on(&base, delta), &EvalOptions::sequential());
        if i == 0 {
            first_builds = stats.base_index_builds;
            assert!(
                first_builds > 0,
                "the CQA program probes EDB relations, so the first family \
                 run must build base indexes"
            );
        } else {
            assert_eq!(
                stats.base_index_builds, 0,
                "run {i} re-built base indexes instead of sharing the family's"
            );
        }
    }
    assert_eq!(
        base.index_builds(),
        first_builds,
        "the base's build counter must not grow after the first run"
    );

    // Fresh-load runs, by contrast, pay index construction per run: the
    // layered runs' per-run extension passes stay below the flat ones.
    let (_, flat_stats) = cqa.compiled.run_on_store_with_stats(
        edb_from_instance(&family.materialize(1)),
        &EvalOptions::sequential(),
    );
    let (_, layered_stats) = cqa.compiled.run_on_store_with_stats(
        edb_overlay_on(&base, &family.deltas()[1]),
        &EvalOptions::sequential(),
    );
    assert_eq!(layered_stats.base_index_builds, 0);
    assert!(flat_stats.index_extensions >= layered_stats.index_extensions);
}

#[test]
fn family_answers_agree_with_the_naive_oracle_on_small_families() {
    // End-to-end ground truth: tiny families where repair enumeration is
    // feasible.
    let naive = NaiveSolver::with_limit(1 << 14);
    let query = PathQuery::parse("RRX").unwrap();
    for seed in 0..8u64 {
        let family = shared_prefix_families(query.word(), 3, 4, 0.34, 0x0AC1E ^ (seed << 4));
        let session = CertaintySession::with_datalog_nl();
        let answers = session.certain_batch_family(&query, &family);
        for (i, answer) in answers.iter().enumerate() {
            let full = family.materialize(i);
            if full.repair_count() > 1 << 14 {
                continue;
            }
            assert_eq!(
                *answer.as_ref().unwrap(),
                naive.certain(&query, &full).unwrap(),
                "oracle mismatch at seed {seed}, request {i}"
            );
        }
    }
}

#[test]
fn family_codec_round_trips_through_the_session() {
    // A family serialized to the sectioned text format and parsed back
    // answers identically — the codec is how family fixtures are shipped.
    let query = PathQuery::parse("RXRY").unwrap();
    let family = shared_prefix_families(query.word(), 4, 3, 0.25, 0xC0DEC);
    let text = cqa_db::codec::family_to_text(&family);
    let parsed = cqa_db::codec::family_from_text(&text).unwrap();
    assert_eq!(family, parsed);
    let session = CertaintySession::with_datalog_nl();
    let a: Vec<bool> = session
        .certain_batch_family(&query, &family)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let b: Vec<bool> = session
        .certain_batch_family(&query, &parsed)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(a, b);
}
