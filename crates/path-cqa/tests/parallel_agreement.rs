//! The differential harness for parallel evaluation.
//!
//! Three layers of oracle pin the parallel engine to the trusted ones:
//!
//! * **Agreement** — on ≥ 200 random stratified program/instance pairs, the
//!   parallel engine at 2 and 8 threads derives exactly the fact sets of the
//!   sequential indexed engine *and* of the scan-based reference engine
//!   (`engine::reference`, the executable specification).
//! * **Batch bitmaps** — `CertaintySession::certain_batch` answers a mixed
//!   workload with byte-identical certain-answer bitmaps at 1, 2 and 8
//!   threads.
//! * **Determinism** — repeated runs at 8 threads produce identical *ordered*
//!   output (relation iteration order and tuple insertion order), which
//!   catches merge-order bugs that set-equality would hide; and `threads = 1`
//!   is bit-identical (same orders) to the plain sequential entry point.

mod common;

use common::ProgramGen;
use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::{repeated_query_requests, RandomInstanceConfig};

/// The store's full contents in iteration order — relation order and tuple
/// order both matter, unlike `RelationStore`'s set-based `PartialEq`.
fn ordered_dump(store: &RelationStore) -> Vec<(String, Vec<Vec<String>>)> {
    store
        .iter_relations()
        .map(|(pred, tuples)| {
            (
                format!("{pred}"),
                tuples
                    .iter()
                    .map(|t| t.iter().map(|s| s.to_string()).collect())
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn parallel_engine_agrees_with_sequential_and_reference_on_random_programs() {
    let mut checked = 0;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xA6BEE + program_seed);
        let program = gen.program();
        let compiled = CompiledProgram::compile(&program)
            .unwrap_or_else(|e| panic!("compilation failed: {e}\n{program}"));
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                6 + (instance_seed as usize) * 5,
                0xDB + program_seed * 31 + instance_seed,
            )
            .generate();
            let sequential = compiled.run_with(&db, &EvalOptions::sequential());
            let scanned = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            assert_eq!(
                sequential, scanned,
                "sequential/reference disagreement (program seed {program_seed}, instance seed \
                 {instance_seed})\nprogram:\n{program}"
            );
            for threads in [2usize, 8] {
                let parallel = compiled.run_with(&db, &EvalOptions::with_threads(threads));
                assert_eq!(
                    parallel, sequential,
                    "parallel({threads}) disagrees with sequential (program seed \
                     {program_seed}, instance seed {instance_seed})\nprogram:\n{program}\n\
                     instance: {db:?}"
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
}

#[test]
fn certain_batch_bitmaps_are_byte_identical_across_thread_counts() {
    // A mixed workload covering every route of the tetrachotomy: FO (RXRX),
    // NL via the Datalog back-end (RRX, RXRY) and PTIME fixpoint (RXRYRY).
    let requests = repeated_query_requests(&["RXRX", "RRX", "RXRY", "RXRYRY"], 6, 3, 0xB17);
    let bitmap = |threads: usize| -> Vec<u8> {
        let session =
            CertaintySession::with_options(NlBackend::Datalog, EvalOptions::with_threads(threads));
        let answers = session.certain_batch(&requests);
        assert_eq!(
            session.stats().queries_prepared,
            4,
            "each distinct query prepared exactly once at {threads} threads"
        );
        let mut bytes = vec![0u8; requests.len().div_ceil(8)];
        for (i, answer) in answers.iter().enumerate() {
            let certain = *answer.as_ref().unwrap_or_else(|e| {
                panic!("request {i} failed at {threads} threads: {e}");
            });
            bytes[i / 8] |= (certain as u8) << (i % 8);
        }
        bytes
    };
    let reference = bitmap(1);
    // Not all-certain / not all-uncertain, or the comparison proves little.
    assert!(reference.iter().any(|&b| b != 0), "degenerate workload");
    for threads in [2usize, 8] {
        assert_eq!(
            bitmap(threads),
            reference,
            "bitmap at {threads} threads differs from sequential"
        );
    }
}

#[test]
fn parallel_runs_are_deterministic_across_repetitions() {
    // Same seed, 10 runs at 8 threads: the ordered output (relations in
    // interning order, tuples in insertion order) must be identical every
    // time. Scheduling may vary; the deterministic merge must hide it.
    for program_seed in [3u64, 17, 29] {
        let mut gen = ProgramGen::new(0xDE7E12 + program_seed);
        let program = gen.program();
        let compiled = CompiledProgram::compile(&program).unwrap();
        let db = RandomInstanceConfig::new("RS", 5, 24, 0x5EED + program_seed).generate();
        let options = EvalOptions::with_threads(8);
        let first = ordered_dump(&compiled.run_with(&db, &options));
        for run in 1..10 {
            let again = ordered_dump(&compiled.run_with(&db, &options));
            assert_eq!(
                first, again,
                "run {run} at 8 threads differs from run 0 (program seed {program_seed})\n\
                 program:\n{program}"
            );
        }
    }
}

#[test]
fn default_entry_point_matches_the_pinned_sequential_path() {
    // `run_on_store` resolves `Threads::Auto` (PATH_CQA_THREADS, else the
    // host's available parallelism), so the *ordered* comparison against the
    // pinned sequential path is only valid when Auto resolves to one thread;
    // when the environment opts the default entry points into parallelism,
    // ordered output may legitimately differ and the set-level guarantee is
    // what remains.
    let auto_threads = Threads::Auto.resolve();
    for program_seed in [1u64, 11, 23] {
        let mut gen = ProgramGen::new(0xB17B17 + program_seed);
        let program = gen.program();
        let compiled = CompiledProgram::compile(&program).unwrap();
        let db = RandomInstanceConfig::new("RS", 5, 20, 0x1DE + program_seed).generate();
        let plain = compiled.run_on_store(edb_from_instance(&db));
        let pinned = compiled.run_with(&db, &EvalOptions::sequential());
        if auto_threads == 1 {
            assert_eq!(
                ordered_dump(&plain),
                ordered_dump(&pinned),
                "Auto resolved to 1 thread: run_on_store must be bit-identical to the \
                 sequential path (seed {program_seed})"
            );
        } else {
            assert_eq!(
                plain, pinned,
                "Auto resolved to {auto_threads} threads: run_on_store must still derive \
                 the same fact sets (seed {program_seed})"
            );
        }
    }
}

#[test]
fn threaded_rounds_fire_and_agree_on_large_deltas() {
    // The random-program suites above use tiny instances whose rounds fall
    // below the inline-work threshold, so this is the test that pushes real
    // work through the scoped-thread derive/merge path: transitive closure
    // over a layered graph with multi-thousand-tuple deltas. EvalStats
    // proves the threaded branch actually ran — if a future threshold change
    // quietly routes everything inline again, this assertion fails rather
    // than letting the harness go hollow.
    use cqa_workloads::random::LayeredConfig;
    let mut program = Program::new();
    program.declare_edb(Predicate::new("R", 2));
    let atom = |n: &str, vs: [&str; 2]| {
        DlAtom::new(
            Predicate::new(n, 2),
            vs.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    program.add_rule(Rule::new(
        atom("path", ["X", "Y"]),
        vec![BodyLiteral::Positive(atom("R", ["X", "Y"]))],
    ));
    program.add_rule(Rule::new(
        atom("path", ["X", "Z"]),
        vec![
            BodyLiteral::Positive(atom("path", ["X", "Y"])),
            BodyLiteral::Positive(atom("R", ["Y", "Z"])),
        ],
    ));
    let compiled = CompiledProgram::compile(&program).unwrap();
    let db = LayeredConfig {
        relations: vec![cqa_core::symbol::RelName::new("R")],
        layers: 8,
        width: 250,
        conflict_probability: 0.3,
        dead_end_probability: 0.05,
        seed: 0x7A6E,
    }
    .generate();

    let (sequential, seq_stats) =
        compiled.run_on_store_with_stats(edb_from_instance(&db), &EvalOptions::sequential());
    assert_eq!(seq_stats.threaded_rounds, 0);
    let (parallel, par_stats) =
        compiled.run_on_store_with_stats(edb_from_instance(&db), &EvalOptions::with_threads(8));
    assert!(
        par_stats.threaded_rounds > 0,
        "workload must cross the inline threshold into the threaded branch \
         (rounds: {}, threaded: {})",
        par_stats.rounds,
        par_stats.threaded_rounds
    );
    assert_eq!(
        sequential, parallel,
        "threaded rounds must derive the sequential fact sets"
    );
    // Determinism through the threaded branch as well: repeated 8-thread
    // runs produce identical ordered output.
    let first = ordered_dump(&parallel);
    for run in 0..2 {
        let (again, stats) =
            compiled.run_on_store_with_stats(edb_from_instance(&db), &EvalOptions::with_threads(8));
        assert!(stats.threaded_rounds > 0);
        assert_eq!(first, ordered_dump(&again), "run {run} differs");
    }
}

#[test]
fn parallel_batch_results_agree_with_fresh_sequential_sessions() {
    // End-to-end: a parallel-batch session against per-request fresh
    // sequential sessions (and, where feasible, the naive repair-enumeration
    // oracle).
    let requests = repeated_query_requests(&["RRX", "RXRY"], 8, 4, 0x0DDB17);
    let session = CertaintySession::with_options(NlBackend::Datalog, EvalOptions::with_threads(8));
    let batch = session.certain_batch(&requests);
    let naive = NaiveSolver::with_limit(1 << 16);
    for (i, (query, db)) in requests.iter().enumerate() {
        let got = *batch[i].as_ref().unwrap();
        let fresh = CertaintySession::with_options(NlBackend::Datalog, EvalOptions::sequential())
            .certain(query, db)
            .unwrap();
        assert_eq!(got, fresh, "batch/per-call mismatch at {i} ({query})");
        if db.repair_count() <= 1 << 16 {
            assert_eq!(
                got,
                naive.certain(query, db).unwrap(),
                "oracle mismatch at {i} ({query})"
            );
        }
    }
}

#[test]
fn parallel_engine_handles_the_generated_cqa_programs() {
    // The production workload: Lemma 14's linear programs, parallel vs scan.
    for word in ["RRX", "RXRY", "UVUVWV"] {
        let q = PathQuery::parse(word).unwrap();
        let Some(dec) = b2b_strict_decomposition(q.word()) else {
            continue;
        };
        let Some(cqa) = generate_program(&dec, q.word()) else {
            continue;
        };
        for seed in 0..10u64 {
            let db: DatabaseInstance = RandomInstanceConfig::new(
                if word == "UVUVWV" { "UVW" } else { "RXY" },
                5,
                12,
                0xCAA + seed,
            )
            .generate();
            let parallel = cqa.compiled.run_with(&db, &EvalOptions::with_threads(4));
            let scanned = evaluate_scan(&cqa.program, &db).unwrap();
            assert_eq!(parallel, scanned, "disagreement on {word}, seed {seed}");
        }
    }
}
