//! Shared test infrastructure: a seeded generator of random stratified
//! Datalog programs, used by the engine-agreement and parallel-agreement
//! differential suites.
//!
//! Programs are generated level by level so stratification holds by
//! construction: a rule's positive literals draw from its own level or below
//! (same-level atoms make the rule recursive), negative literals only from
//! strictly lower levels, and built-ins only over variables bound by the
//! positive part — which also makes every rule safe.

#![allow(dead_code)] // Each tests/*.rs crate uses a different subset.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

use cqa_datalog::prelude::*;

const VARS: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

/// A seeded generator of random stratified programs over the binary EDB
/// relations `R`, `S` (plus the unary `adom`).
pub struct ProgramGen {
    rng: StdRng,
}

impl ProgramGen {
    pub fn new(seed: u64) -> ProgramGen {
        ProgramGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.random_range(0..xs.len())]
    }

    fn pick_str<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[self.rng.random_range(0..xs.len())]
    }

    /// A random term: usually a variable, occasionally a constant drawn from
    /// the instance generator's domain (`c0..c4`, matching
    /// `RandomInstanceConfig`'s `Constant::numbered` names).
    fn term(&mut self, vars_in_scope: &[&str]) -> DlTerm {
        if self.rng.random_bool(0.15) {
            DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize)))
        } else {
            DlTerm::var(self.pick_str(vars_in_scope))
        }
    }

    fn atom(&mut self, pred: Predicate, vars_in_scope: &[&str]) -> DlAtom {
        let args = (0..pred.arity).map(|_| self.term(vars_in_scope)).collect();
        DlAtom::new(pred, args)
    }

    /// A random safe rule for `head_pred` whose positive literals use
    /// `positive_preds` and whose negative literals use `negative_preds`.
    fn rule(
        &mut self,
        head_pred: Predicate,
        positive_preds: &[Predicate],
        negative_preds: &[Predicate],
    ) -> Rule {
        let num_positives = self.rng.random_range(1..=3usize);
        let mut body: Vec<BodyLiteral> = Vec::new();
        for _ in 0..num_positives {
            let pred = *self.pick(positive_preds);
            body.push(BodyLiteral::Positive(self.atom(pred, &VARS)));
        }
        // Variables bound by the positive part; everything else must draw
        // from these (or constants) to keep the rule safe.
        let bound: Vec<&str> = body
            .iter()
            .flat_map(|l| l.vars())
            .map(|v| v.as_str())
            .collect();
        if bound.is_empty() {
            // All-constant body: head must be all-constant too.
            let args = (0..head_pred.arity)
                .map(|_| DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize))))
                .collect();
            return Rule::new(DlAtom::new(head_pred, args), body);
        }
        if !negative_preds.is_empty() && self.rng.random_bool(0.4) {
            let pred = *self.pick(negative_preds);
            body.push(BodyLiteral::Negative(self.atom(pred, &bound)));
        }
        if self.rng.random_bool(0.4) {
            let a = DlTerm::var(self.pick_str(&bound));
            let b = DlTerm::var(self.pick_str(&bound));
            body.push(BodyLiteral::Builtin(if self.rng.random_bool(0.5) {
                Builtin::Neq(a, b)
            } else {
                Builtin::Eq(a, b)
            }));
        }
        let head_args = (0..head_pred.arity)
            .map(|_| {
                if self.rng.random_bool(0.1) {
                    DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize)))
                } else {
                    DlTerm::var(self.pick_str(&bound))
                }
            })
            .collect();
        Rule::new(DlAtom::new(head_pred, head_args), body)
    }

    /// A random stratified program over the binary EDB relations `R`, `S`.
    pub fn program(&mut self) -> Program {
        let edb = vec![
            Predicate::new("R", 2),
            Predicate::new("S", 2),
            Predicate::new("adom", 1),
        ];
        let mut program = Program::new();
        for &p in &edb {
            program.declare_edb(p);
        }
        let levels = self.rng.random_range(1..=3usize);
        let mut lower: Vec<Predicate> = edb.clone();
        for level in 0..levels {
            let preds_here: Vec<Predicate> = (0..self.rng.random_range(1..=2usize))
                .map(|j| {
                    Predicate::new(
                        &format!("idb_{level}_{j}"),
                        self.rng.random_range(1..=2usize),
                    )
                })
                .collect();
            for &head in &preds_here {
                // Positive literals may use this level's predicates
                // (recursion) or anything below; negation only strictly
                // below.
                let mut positive_pool = lower.clone();
                positive_pool.extend(&preds_here);
                for _ in 0..self.rng.random_range(1..=3usize) {
                    program.add_rule(self.rule(head, &positive_pool, &lower));
                }
            }
            lower.extend(preds_here);
        }
        program
    }
}
