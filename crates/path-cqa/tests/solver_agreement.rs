//! Workspace-level integration test: every solver agrees with the exhaustive
//! repair-enumeration oracle on randomized instances, across all four
//! complexity classes of the tetrachotomy, and the figure instances behave as
//! the paper describes.

use path_cqa::prelude::*;

fn applicable(solver: &dyn CertaintySolver, q: &PathQuery, db: &DatabaseInstance) -> Option<bool> {
    match solver.certain(q, db) {
        Ok(answer) => Some(answer),
        Err(SolverError::NotApplicable { .. }) => None,
        Err(other) => panic!("{}: unexpected error {other}", solver.name()),
    }
}

#[test]
fn all_solvers_agree_with_the_oracle_on_random_instances() {
    let naive = NaiveSolver::default();
    let solvers: Vec<Box<dyn CertaintySolver>> = vec![
        Box::new(BacktrackSolver::new()),
        Box::new(FoSolver::new()),
        Box::new(NlSolver::direct()),
        Box::new(NlSolver::datalog()),
        Box::new(FixpointSolver::new()),
        Box::new(SatCertaintySolver::default()),
        Box::new(DispatchSolver::new()),
        Box::new(DispatchSolver::with_datalog_nl()),
    ];
    let queries = [
        ("RR", "RX"),
        ("RXRX", "RX"),
        ("RRX", "RX"),
        ("RXRY", "RXY"),
        ("RXRYRY", "RXY"),
        ("RSRRR", "RS"),
        ("ARRX", "ARX"),
        ("RXRXRYRY", "RXY"),
    ];
    for (word, letters) in queries {
        let q = PathQuery::parse(word).unwrap();
        for (i, db) in oracle_batch(letters, 12, 0xC0FFEE ^ word.len() as u64, 1 << 12)
            .into_iter()
            .enumerate()
        {
            let expected = naive.certain(&q, &db).unwrap();
            for solver in &solvers {
                if let Some(answer) = applicable(solver.as_ref(), &q, &db) {
                    assert_eq!(
                        answer,
                        expected,
                        "{} disagrees with the oracle on {} (instance {})",
                        solver.name(),
                        word,
                        i
                    );
                }
            }
        }
    }
}

#[test]
fn figure_instances_behave_as_in_the_paper() {
    // Figure 2 is a yes-instance for RRX.
    assert!(solve_certainty(&figure_2_query(), &figure_2()).unwrap());
    // Figure 3 is a no-instance for ARRX.
    assert!(!solve_certainty(&figure_3_query(), &figure_3()).unwrap());
    // Figure 1: both RR and RS are certain on the full bipartite-like
    // instance (Example 1's q1/q2 distinction needs the non-path query
    // R(x,y) ∧ S(y,x), which is outside the path-query fragment); removing
    // S(b, ∗) breaks certainty of RS but not of RR.
    let db = figure_1();
    assert!(solve_certainty(&PathQuery::parse("RR").unwrap(), &db).unwrap());
    assert!(solve_certainty(&PathQuery::parse("RS").unwrap(), &db).unwrap());
    let pruned = DatabaseInstance::from_facts(
        db.facts()
            .iter()
            .copied()
            .filter(|f| !(f.rel == RelName::new("S") && f.key == Constant::new("b"))),
    );
    assert!(solve_certainty(&PathQuery::parse("RR").unwrap(), &pruned).unwrap());
    assert!(!solve_certainty(&PathQuery::parse("RS").unwrap(), &pruned).unwrap());
}

#[test]
fn dispatcher_routes_by_classification_and_matches_oracle_on_layered_workloads() {
    let naive = NaiveSolver::with_limit(1 << 20);
    let dispatcher = DispatchSolver::new();
    for (word, expected_route) in [
        ("RXRX", Route::FoRewriting),
        ("RXRY", Route::Nl(NlBackend::Direct)),
        ("RXRYRY", Route::PtimeFixpoint),
        ("RXRXRYRY", Route::ConpSat),
    ] {
        let q = PathQuery::parse(word).unwrap();
        assert_eq!(dispatcher.route(&q), expected_route);
        for seed in 0..4u64 {
            let db = LayeredConfig::for_word(q.word(), 4, seed).generate();
            if db.repair_count() > 1 << 20 {
                continue;
            }
            assert_eq!(
                dispatcher.certain(&q, &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "layered workload mismatch for {word}, seed {seed}"
            );
        }
    }
}

#[test]
fn minimizing_repair_witnesses_lemma_6_on_random_instances() {
    // start(q, r*) ⊆ start(q, r) for every repair r, for C3 queries.
    for word in ["RRX", "RXRY", "RXRYRY"] {
        let q = PathQuery::parse(word).unwrap();
        let automaton = QueryNfa::new(&q);
        for db in oracle_batch("RXY", 6, 0xBEEF ^ word.len() as u64, 1 << 10) {
            let r_star = minimizing_repair(&q, &db);
            let minimal = start_set(&automaton, &r_star);
            for r in db.repairs() {
                let starts = start_set(&automaton, &r);
                assert!(
                    minimal.is_subset(&starts),
                    "Lemma 6 violated for {word} on {db:?}"
                );
            }
        }
    }
}

#[test]
fn certain_start_vertices_match_the_intersection_of_start_sets() {
    // Corollary 1: ⟨c, ε⟩ ∈ N iff c ∈ start(q, r) for every repair r.
    for word in ["RRX", "RXRY"] {
        let q = PathQuery::parse(word).unwrap();
        let automaton = QueryNfa::new(&q);
        for db in oracle_batch("RXY", 6, 0x1234 ^ word.len() as u64, 1 << 10) {
            let run = compute_fixpoint(&q, &db);
            let mut intersection: Option<std::collections::BTreeSet<Constant>> = None;
            for r in db.repairs() {
                let starts = start_set(&automaton, &r);
                intersection = Some(match intersection {
                    None => starts,
                    Some(acc) => acc.intersection(&starts).copied().collect(),
                });
            }
            let intersection = intersection.unwrap_or_default();
            assert_eq!(
                run.certain_start_vertices(),
                intersection,
                "Corollary 1 violated for {word} on {db:?}"
            );
        }
    }
}
