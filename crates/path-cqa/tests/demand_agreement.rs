//! The differential harness for demand-driven derivation.
//!
//! Three layers of oracle pin the demand transformation
//! (`cqa_datalog::demand`) to the trusted engines:
//!
//! * **Goal agreement** — on ≥ 200 random stratified program/instance pairs,
//!   the goal predicate's extension under `Off`, `Prune` and `Magic` is
//!   identical to the scan-based reference engine's extension of the
//!   *untransformed* program, at 1, 2 and 8 engine threads. (Only the goal is
//!   contractual: non-goal predicates may legitimately shrink.)
//! * **Work regression** — on goal-sparse programs (a seeded walk over a long
//!   chain), `EvalStats::tuples_derived` strictly drops from `Off` to
//!   `Magic`; the transformation must actually save derivations, not just
//!   preserve answers.
//! * **End-to-end oracle** — the paper's Figure 2/6 instances for `RRX`,
//!   decided through `CertaintySession`s pinned to each demand mode, agree
//!   with the naive repair-enumeration oracle; and a mixed batched workload
//!   produces byte-identical certain-answer bitmaps at every (mode, threads)
//!   combination.

mod common;

use std::collections::BTreeSet;

use common::ProgramGen;
use cqa_datalog::prelude::*;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::figures::{figure_2, figure_2_query, figure_6};
use cqa_workloads::random::{repeated_query_requests, RandomInstanceConfig};

/// One relation's extension as a canonical set of string tuples.
fn relation_set(store: &RelationStore, pred: Predicate) -> BTreeSet<Vec<String>> {
    store
        .iter_relations()
        .filter(|(p, _)| *p == pred)
        .flat_map(|(_, tuples)| {
            tuples
                .iter()
                .map(|t| t.iter().map(|s| s.to_string()).collect())
        })
        .collect()
}

#[test]
fn demand_modes_preserve_the_goal_on_random_programs() {
    let mut checked = 0;
    let mut restricted_somewhere = 0u64;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xD316 + program_seed);
        let program = gen.program();
        // The highest-sorting IDB predicate is deterministic and, by the
        // generator's leveled naming, tends to sit in the top stratum — the
        // most interesting goal for reachability pruning.
        let goal = *program
            .idb_predicates()
            .last()
            .expect("generated programs have IDB rules");
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                6 + (instance_seed as usize) * 5,
                0xDB + program_seed * 31 + instance_seed,
            )
            .generate();
            let reference = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            let expected = relation_set(&reference, goal);
            for mode in [DemandMode::Off, DemandMode::Prune, DemandMode::Magic] {
                let (transformed, report) = demand_transform(&program, goal, mode);
                restricted_somewhere += report.restricted_predicates;
                let compiled = CompiledProgram::compile(&transformed).unwrap_or_else(|e| {
                    panic!("{mode}-transformed program failed to compile: {e}\n{transformed}")
                });
                for threads in [1usize, 2, 8] {
                    let options = EvalOptions::with_threads(threads);
                    let store = compiled.run_with(&db, &options);
                    assert_eq!(
                        relation_set(&store, goal),
                        expected,
                        "goal {goal} under {mode} at {threads} threads disagrees with the \
                         reference (program seed {program_seed}, instance seed {instance_seed})\n\
                         original:\n{program}\ntransformed:\n{transformed}"
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
    assert!(
        restricted_somewhere > 0,
        "the magic stage never restricted anything across the whole suite — \
         the harness is not exercising stage 2"
    );
}

/// A seeded walk over a long chain: `goal` needs only the suffix reachable
/// from the seed, while the unrestricted program closes the full quadratic
/// transitive closure. The sparse/full derivation gap is what demand
/// transformation exists to exploit.
fn goal_sparse_program() -> (Program, Predicate) {
    let atom = |name: &str, vars: &[&str]| {
        DlAtom::new(
            Predicate::new(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    };
    let pos = |name: &str, vars: &[&str]| BodyLiteral::Positive(atom(name, vars));
    let mut p = Program::new();
    p.declare_edb(Predicate::new("E", 2));
    p.declare_edb(Predicate::new("seed", 2));
    p.add_rule(Rule::new(
        atom("path", &["X", "Y"]),
        vec![pos("E", &["X", "Y"])],
    ));
    p.add_rule(Rule::new(
        atom("path", &["X", "Z"]),
        vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
    ));
    p.add_rule(Rule::new(
        atom("goal", &["Y"]),
        vec![pos("seed", &["X", "X2"]), pos("path", &["X", "Y"])],
    ));
    (p, Predicate::new("goal", 1))
}

#[test]
fn tuples_derived_strictly_drops_on_goal_sparse_programs() {
    let (program, goal) = goal_sparse_program();
    let mut db = DatabaseInstance::new();
    let n = 60;
    for i in 0..n {
        db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
    }
    // Seed near the end of the chain: the demanded cone is a short suffix.
    db.insert_parsed("seed", &format!("n{}", n - 5), &format!("n{}", n - 5));

    let derived = |mode: DemandMode| -> (u64, BTreeSet<Vec<String>>) {
        let (transformed, _) = demand_transform(&program, goal, mode);
        let compiled = CompiledProgram::compile(&transformed).unwrap();
        let (store, stats) =
            compiled.run_on_store_with_stats(edb_from_instance(&db), &EvalOptions::sequential());
        assert!(stats.tuples_derived > 0, "{mode}: nothing derived");
        (stats.tuples_derived, relation_set(&store, goal))
    };
    let (off, off_goal) = derived(DemandMode::Off);
    let (prune, prune_goal) = derived(DemandMode::Prune);
    let (magic, magic_goal) = derived(DemandMode::Magic);
    assert_eq!(off_goal, prune_goal);
    assert_eq!(off_goal, magic_goal);
    // Nothing is unreachable here, so pruning alone saves nothing…
    assert_eq!(prune, off);
    // …but the magic rewrite must strictly cut the derivation count: the
    // full closure is Θ(n²) while the demanded cone is the seed's suffix.
    assert!(
        magic < off,
        "magic derived {magic} tuples, no fewer than demand-off's {off}"
    );
    assert!(
        magic * 4 < off,
        "magic derived {magic} of {off} tuples — the cut should be drastic \
         on a length-{n} chain seeded 5 from the end"
    );
}

#[test]
fn figure_instances_agree_with_the_naive_oracle_across_modes() {
    // End-to-end spot check on the paper's own instances: RRX through the
    // Datalog NL route under each demand mode, against the naive
    // repair-enumeration oracle.
    let query = figure_2_query();
    let naive = NaiveSolver::with_limit(1 << 16);
    for (name, db) in [("figure_2", figure_2()), ("figure_6", figure_6())] {
        let expected = naive.certain(&query, &db).unwrap();
        for demand in [Demand::Off, Demand::Prune, Demand::Magic] {
            let session = CertaintySession::with_options(
                NlBackend::Datalog,
                EvalOptions::sequential().with_demand(demand),
            );
            assert_eq!(
                session.certain(&query, &db).unwrap(),
                expected,
                "{name} under {:?} disagrees with the naive oracle",
                demand
            );
        }
    }
}

#[test]
fn certain_batch_bitmaps_are_identical_across_demand_modes_and_threads() {
    // A mixed workload covering FO, NL-Datalog and PTIME routes: the answer
    // bitmap must be byte-identical at every (demand, threads) combination.
    let requests = repeated_query_requests(&["RXRX", "RRX", "RXRY", "RXRYRY"], 6, 3, 0xDE3A);
    let bitmap = |demand: Demand, threads: usize| -> Vec<u8> {
        let session = CertaintySession::with_options(
            NlBackend::Datalog,
            EvalOptions::with_threads(threads).with_demand(demand),
        );
        let answers = session.certain_batch(&requests);
        let mut bytes = vec![0u8; requests.len().div_ceil(8)];
        for (i, answer) in answers.iter().enumerate() {
            let certain = *answer.as_ref().unwrap_or_else(|e| {
                panic!("request {i} failed under {demand:?} at {threads} threads: {e}");
            });
            bytes[i / 8] |= (certain as u8) << (i % 8);
        }
        bytes
    };
    let reference = bitmap(Demand::Off, 1);
    assert!(reference.iter().any(|&b| b != 0), "degenerate workload");
    for demand in [Demand::Off, Demand::Prune, Demand::Magic] {
        for threads in [1usize, 2, 8] {
            assert_eq!(
                bitmap(demand, threads),
                reference,
                "bitmap under {demand:?} at {threads} threads differs from demand-off sequential"
            );
        }
    }
}
