//! The differential harness for checkpointed base derivation.
//!
//! A checkpoint pre-evaluates the monotone, EDB-only-dependent strata of a
//! compiled program into a frozen base exactly once; per-request evaluation
//! then resumes semi-naive with the overlay as the initial delta. That is a
//! pure execution-strategy change — it must never alter what is derived.
//! Three layers of oracle pin it:
//!
//! * **Full-store agreement** — on ≥ 200 random stratified program/instance
//!   pairs split into a frozen prefix plus an overlay delta, the
//!   checkpoint-resumed store equals the from-scratch compiled store equals
//!   the scan-based reference engine, with kernels on and off, at 1, 2 and
//!   8 engine threads.
//! * **Resume accounting** — on generated CQA programs the resumed run
//!   reports `checkpoint_hits > 0` and derives strictly fewer tuples than
//!   from scratch, while `Checkpoint::Off` routes around the checkpoint
//!   entirely.
//! * **End-to-end bitmaps** — batched certain answers over shared-prefix
//!   families are byte-identical at every (checkpoint, demand, kernels,
//!   threads) combination, including after interleaved live APPEND/RETRACT
//!   mutations of the family's deltas over the *same* resident base.

mod common;

use std::collections::BTreeSet;
use std::sync::Arc;

use common::ProgramGen;
use cqa_core::query::PathQuery;
use cqa_datalog::prelude::*;
use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;
use cqa_solver::prelude::*;
use cqa_workloads::random::{shared_prefix_families, RandomInstanceConfig};

/// The complete store as a canonical set of (predicate, tuple) strings.
fn store_set(store: &RelationStore) -> BTreeSet<(String, Vec<String>)> {
    store
        .iter_relations()
        .flat_map(|(p, tuples)| {
            let name = format!("{}/{}", p.name, p.arity);
            tuples
                .iter()
                .map(move |t| (name.clone(), t.iter().map(|s| s.to_string()).collect()))
        })
        .collect()
}

/// Splits an instance into a prefix holding roughly `keep_percent` of the
/// facts (the part frozen and checkpointed) and a delta with the rest (the
/// per-request overlay).
fn split(db: &DatabaseInstance, keep_percent: usize) -> (DatabaseInstance, DatabaseInstance) {
    let facts = db.facts();
    let cut = facts.len() * keep_percent / 100;
    let prefix = DatabaseInstance::from_facts(facts[..cut].iter().copied());
    let delta = DatabaseInstance::from_facts(facts[cut..].iter().copied());
    (prefix, delta)
}

#[test]
fn checkpoint_resumed_runs_agree_with_scratch_and_reference_on_random_programs() {
    let mut checked = 0;
    let mut resumed_strata = 0u64;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xC4EC4 + program_seed);
        let program = gen.program();
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                8 + (instance_seed as usize) * 5,
                0x0DB + program_seed * 37 + instance_seed,
            )
            .generate();
            let reference = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            let expected = store_set(&reference);
            let compiled = CompiledProgram::compile(&program)
                .unwrap_or_else(|e| panic!("compile failed: {e}\n{program}"));
            // Vary the split so both delta-heavy and prefix-heavy overlays
            // are exercised (0% prefix degenerates to "everything is
            // delta", 100% to "the checkpoint already holds the fixpoint").
            let keep = [0usize, 50, 80, 100][(instance_seed % 4) as usize];
            let (prefix, delta) = split(&db, keep);
            let base = edb_base_from_instance(&prefix);
            let checkpointed = compiled.checkpoint_base(&base);
            for kernels in [Kernels::Off, Kernels::On] {
                for threads in [1usize, 2, 8] {
                    let options = EvalOptions::with_threads(threads).with_kernels(kernels);
                    let (resumed, stats) = compiled.resume_on_store_with_stats(
                        edb_overlay_on(&checkpointed, &delta),
                        &options,
                    );
                    assert_eq!(
                        store_set(&resumed),
                        expected,
                        "checkpoint-resumed store under {kernels:?} at {threads} threads \
                         disagrees with the scan reference (program seed {program_seed}, \
                         instance seed {instance_seed}, prefix {keep}%)\n{program}"
                    );
                    resumed_strata += stats.checkpoint_hits;
                    // From-scratch compiled evaluation on the raw base must
                    // agree too (same options; exercises the overlay path
                    // the solver uses with Checkpoint::Off).
                    let (scratch, _) =
                        compiled.run_on_store_with_stats(edb_overlay_on(&base, &delta), &options);
                    assert_eq!(
                        store_set(&scratch),
                        expected,
                        "from-scratch store disagrees (program seed {program_seed}, \
                         instance seed {instance_seed})\n{program}"
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
    assert!(
        resumed_strata > 0,
        "no stratum was ever resumed from a checkpoint across the whole suite — \
         the harness is not exercising the resume path"
    );
}

#[test]
fn generated_cqa_programs_resume_and_save_derivation_work() {
    // A generated CQA program's monotone strata (the key_R closure and the
    // magic-seeded demand predicates' monotone parts) are checkpointable;
    // the negation-dependent strata (terminal/uvpath/p/o) re-run per
    // request. Resuming must report hits, skip the prefix-determined
    // derivations, and produce the identical store.
    let query = PathQuery::parse("RRX").expect("query");
    let dec = b2b_strict_decomposition(query.word()).expect("RRX decomposes");
    let cqa = generate_program(&dec, query.word()).expect("program generation");
    assert!(
        cqa.compiled.has_checkpointable_strata(),
        "generated CQA programs must have checkpointable strata"
    );

    let family = shared_prefix_families(query.word(), 40, 4, 0.1, 0xFEED);
    let base = edb_base_from_instance(family.prefix());
    let checkpointed = cqa.compiled.checkpoint_base(&base);
    let options = EvalOptions::sequential();
    for delta in family.deltas() {
        let (scratch, scratch_stats) = cqa
            .compiled
            .run_on_store_with_stats(edb_overlay_on(&base, delta), &options);
        let (resumed, resumed_stats) = cqa
            .compiled
            .resume_on_store_with_stats(edb_overlay_on(&checkpointed, delta), &options);
        assert_eq!(store_set(&resumed), store_set(&scratch));
        assert!(
            resumed_stats.checkpoint_hits > 0,
            "no stratum resumed: {resumed_stats:?}"
        );
        assert_eq!(
            scratch_stats.checkpoint_hits, 0,
            "plain runs must not resume"
        );
        assert!(
            resumed_stats.tuples_derived < scratch_stats.tuples_derived,
            "resuming from the checkpoint must skip prefix-determined derivations \
             ({} resumed vs {} scratch)",
            resumed_stats.tuples_derived,
            scratch_stats.tuples_derived
        );
    }
}

#[test]
fn certain_family_bitmaps_are_identical_across_checkpoint_modes() {
    // Shared-prefix family traffic across the tetrachotomy's routes; the
    // answer bitmap must be byte-identical at every (checkpoint, demand,
    // kernels, threads) combination. Between batches the deltas are mutated
    // as live APPEND/RETRACT would (same resident base, rebuilt family), so
    // the bitmaps also pin the mutate-then-resume path.
    let words = ["RRX", "RXRY", "RXRX", "RXRYRY"];
    let word = cqa_core::word::Word::from_letters("RXRYRY");
    let family = shared_prefix_families(&word, 30, 5, 0.2, 0xB17);

    // The mutated generation: append two fresh R-facts to delta 0, retract
    // the first fact of delta 1 — exactly what the server's APPEND/RETRACT
    // do to a resident tenant.
    let mut deltas = family.deltas().to_vec();
    let mut additions = DatabaseInstance::new();
    additions.insert_parsed("R", "mut1", "mut2");
    additions.insert_parsed("R", "mut2", "mut3");
    deltas[0] = deltas[0].union(&additions);
    let removed = deltas[1].facts()[0];
    deltas[1] =
        DatabaseInstance::from_facts(deltas[1].facts().iter().copied().filter(|f| *f != removed));
    let mutated = InstanceFamily::with_deltas(family.prefix().clone(), deltas);

    let bitmap = |maintain: Maintain,
                  checkpoint: Checkpoint,
                  demand: Demand,
                  kernels: Kernels,
                  threads: usize|
     -> Vec<u8> {
        let session = CertaintySession::with_options(
            NlBackend::Datalog,
            EvalOptions::with_threads(threads)
                .with_demand(demand)
                .with_kernels(kernels)
                .with_checkpoint(checkpoint)
                .with_maintain(maintain),
        );
        // One resident base serves both generations, as on the server.
        let base = edb_base_from_instance(family.prefix());
        let all: Vec<usize> = (0..family.len()).collect();
        let mut bits = Vec::new();
        for generation in [&family, &mutated] {
            for w in words {
                let q = PathQuery::parse(w).unwrap();
                for answer in session.certain_batch_family_resident(&q, generation, &base, &all) {
                    bits.push(answer.unwrap_or_else(|e| {
                        panic!("{w} failed under {checkpoint:?}/{demand:?}/{kernels:?}: {e}")
                    }));
                }
            }
        }
        let mut bytes = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            bytes[i / 8] |= (b as u8) << (i % 8);
        }
        bytes
    };

    let reference = bitmap(Maintain::Off, Checkpoint::Off, Demand::Off, Kernels::Off, 1);
    assert!(reference.iter().any(|&b| b != 0), "degenerate workload");
    // The fresh-solver oracle on materialized instances, for both
    // generations: the resident/checkpointed path must match it bit for bit.
    let mut oracle = Vec::new();
    for generation in [&family, &mutated] {
        for w in words {
            let q = PathQuery::parse(w).unwrap();
            for answer in DispatchSolver::with_datalog_nl().certain_batch_family(&q, generation) {
                oracle.push(answer.expect("oracle"));
            }
        }
    }
    let mut oracle_bytes = vec![0u8; oracle.len().div_ceil(8)];
    for (i, &b) in oracle.iter().enumerate() {
        oracle_bytes[i / 8] |= (b as u8) << (i % 8);
    }
    assert_eq!(
        reference, oracle_bytes,
        "reference drifted from a fresh solver"
    );

    for maintain in [Maintain::Off, Maintain::On] {
        for checkpoint in [Checkpoint::Off, Checkpoint::On] {
            for demand in [Demand::Off, Demand::Magic] {
                for kernels in [Kernels::Off, Kernels::On] {
                    for threads in [1usize, 2, 8] {
                        assert_eq!(
                            bitmap(maintain, checkpoint, demand, kernels, threads),
                            reference,
                            "bitmap under {maintain:?}/{checkpoint:?}/{demand:?}/{kernels:?} at \
                             {threads} threads differs from maintain-off checkpoint-off sequential"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn long_retract_heavy_generation_sequences_agree_with_fresh_oracle() {
    // The differential harness for *maintained* residents: a long,
    // retract-heavy interleaved APPEND/RETRACT generation sequence over one
    // resident base, served by maintain-on and maintain-off sessions that
    // live across all generations (so the maintained IDB state is mutated
    // generation over generation, exactly like the server's registry), with
    // a fresh-load solver as the oracle at every step. The sequence
    // includes retract-then-re-append of the very same fact, the classic
    // DRed round-trip hazard.
    let word = cqa_core::word::Word::from_letters("RXRYRY");
    let words = ["RRX", "RXRYRY"];
    let family = shared_prefix_families(&word, 30, 5, 0.2, 0xD0D0);
    let prefix = family.prefix().clone();
    let mut deltas = family.deltas().to_vec();
    let base = edb_base_from_instance(&prefix);
    let all: Vec<usize> = (0..deltas.len()).collect();

    let session_on = CertaintySession::with_options(
        NlBackend::Datalog,
        EvalOptions::sequential().with_maintain(Maintain::On),
    );
    let session_off = CertaintySession::with_options(
        NlBackend::Datalog,
        EvalOptions::sequential().with_maintain(Maintain::Off),
    );

    let mut s = 0xD00Du64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    // Facts retracted in a previous generation, re-appended later.
    let mut retracted: Vec<(usize, cqa_db::fact::Fact)> = Vec::new();
    for generation in 0..10 {
        // Retract-heavy mutation: two retracts, then one append which every
        // other generation re-appends a previously retracted fact verbatim.
        for _ in 0..2 {
            let i = (next() % deltas.len() as u64) as usize;
            if deltas[i].facts().is_empty() {
                continue;
            }
            let victim = deltas[i].facts()[(next() % deltas[i].facts().len() as u64) as usize];
            deltas[i] = DatabaseInstance::from_facts(
                deltas[i].facts().iter().copied().filter(|f| *f != victim),
            );
            retracted.push((i, victim));
        }
        if generation % 2 == 0 && !retracted.is_empty() {
            let (i, fact) = retracted.remove(0);
            deltas[i] = deltas[i].union(&DatabaseInstance::from_facts(std::iter::once(fact)));
        } else {
            let i = (next() % deltas.len() as u64) as usize;
            let mut fresh = DatabaseInstance::new();
            fresh.insert_parsed("R", &format!("g{generation}a"), &format!("g{generation}b"));
            deltas[i] = deltas[i].union(&fresh);
        }

        let generation_family = InstanceFamily::with_deltas(prefix.clone(), deltas.clone());
        for w in words {
            let q = PathQuery::parse(w).unwrap();
            let on = session_on.certain_batch_family_resident(&q, &generation_family, &base, &all);
            let off =
                session_off.certain_batch_family_resident(&q, &generation_family, &base, &all);
            let oracle =
                DispatchSolver::with_datalog_nl().certain_batch_family(&q, &generation_family);
            for (request, ((a, b), c)) in on.into_iter().zip(off).zip(oracle).enumerate() {
                let expected = c.expect("oracle");
                assert_eq!(
                    a.expect("maintained answer"),
                    expected,
                    "maintained answer diverged ({w}, generation {generation}, request {request})"
                );
                assert_eq!(
                    b.expect("unmaintained answer"),
                    expected,
                    "unmaintained answer diverged ({w}, generation {generation}, \
                     request {request})"
                );
            }
        }
    }
    assert!(
        session_on.stats().demand.maintained_hits > 0,
        "the maintain-on session never served from the maintained IDB"
    );
    assert_eq!(
        session_off.stats().demand.maintained_hits,
        0,
        "the maintain-off session must never maintain"
    );
}

#[test]
fn checkpoints_are_cached_per_program_on_the_base() {
    // BaseStore::checkpoint builds each program's checkpointed variant once
    // and returns the cached Arc afterwards; index_builds folds the
    // variants' builds so the server's builds-once pins keep holding.
    let query = PathQuery::parse("RRX").expect("query");
    let dec = b2b_strict_decomposition(query.word()).expect("decomposes");
    let cqa = generate_program(&dec, query.word()).expect("program generation");
    let family = shared_prefix_families(query.word(), 20, 2, 0.2, 0xCAC4E);
    let base = edb_base_from_instance(family.prefix());

    let key = Arc::as_ptr(&cqa.compiled) as usize;
    let first = base.checkpoint(key, |raw| cqa.compiled.checkpoint_base(raw));
    let second = base.checkpoint(key, |raw| {
        panic!("cached checkpoint must not rebuild: {}", raw.index_builds())
    });
    assert!(Arc::ptr_eq(&first, &second), "checkpoint cache must hit");

    // Probing the checkpointed variant counts toward the original base's
    // cumulative index builds (the registry reads only the original).
    let before = base.index_builds();
    let options = EvalOptions::sequential();
    let (_, stats) = cqa
        .compiled
        .resume_on_store_with_stats(edb_overlay_on(&first, &family.deltas()[0]), &options);
    assert!(stats.checkpoint_hits > 0);
    assert!(
        base.index_builds() >= before,
        "variant builds must fold into the base's total"
    );
}
