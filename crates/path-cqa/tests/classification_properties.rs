//! Property-based tests of the classification machinery and the solvers: the
//! combinatorial lemmas of Section 4, the monotonicity of the complexity
//! classes, and end-to-end agreement between the dispatcher and the oracle on
//! randomly generated queries and instances.
//!
//! Cases are generated with a seeded [`rand::rngs::StdRng`], so every run
//! explores the same space deterministically; failures print the offending
//! query/instance for direct reproduction.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

use path_cqa::prelude::*;

const CASES: usize = 64;

/// A random word over the given alphabet, as a `String` of single letters.
fn random_word(rng: &mut StdRng, alphabet: &str, max_len: usize) -> String {
    let letters: Vec<char> = alphabet.chars().collect();
    let len = rng.random_range(1..=max_len);
    (0..len)
        .map(|_| letters[rng.random_range(0..letters.len())])
        .collect()
}

/// A random small database instance over the given letters.
fn random_facts(rng: &mut StdRng, letters: &str) -> Vec<(char, u8, u8)> {
    let alphabet: Vec<char> = letters.chars().collect();
    let n = rng.random_range(1..12usize);
    (0..n)
        .map(|_| {
            (
                alphabet[rng.random_range(0..alphabet.len())],
                rng.random_range(0..5u8),
                rng.random_range(0..5u8),
            )
        })
        .collect()
}

fn build_db(facts: &[(char, u8, u8)]) -> DatabaseInstance {
    let mut db = DatabaseInstance::new();
    for &(rel, a, b) in facts {
        db.insert_parsed(&rel.to_string(), &format!("v{a}"), &format!("v{b}"));
    }
    db
}

/// A random instance whose repair count respects the given cap (rejection
/// sampling, mirroring `prop_assume!`).
fn capped_db(rng: &mut StdRng, letters: &str, max_repairs: u128) -> DatabaseInstance {
    loop {
        let db = build_db(&random_facts(rng, letters));
        if db.repair_count() <= max_repairs {
            return db;
        }
    }
}

/// Proposition 1: C1 ⇒ C2 ⇒ C3, and the B-forms match (Lemmas 1–3).
#[test]
fn conditions_form_a_chain_and_match_the_regex_forms() {
    let mut rng = StdRng::seed_from_u64(0xC1C2C3);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 6);
        let w = Word::from_letters(&word);
        let c1 = satisfies_c1(&w);
        let c2 = satisfies_c2(&w);
        let c3 = satisfies_c3(&w);
        assert!(!c1 || c2, "C1 must imply C2 for {word}");
        assert!(!c2 || c3, "C2 must imply C3 for {word}");
        assert_eq!(c1, satisfies_b1(&w), "Lemma 1 fails for {word}");
        assert_eq!(
            c2,
            satisfies_b2a(&w) || satisfies_b2b(&w),
            "Lemma 3 fails for {word}"
        );
        assert_eq!(
            c3,
            satisfies_b2a(&w) || satisfies_b2b(&w) || satisfies_b3(&w),
            "Lemma 2 fails for {word}"
        );
    }
}

/// Rewinding never makes a condition easier to satisfy in the wrong
/// direction: if `q` satisfies C1 then `q` is a prefix of each single rewind;
/// if it satisfies C3 then a factor (Lemma 5, bounded form).
#[test]
fn rewinds_respect_prefix_and_factor_containment() {
    let mut rng = StdRng::seed_from_u64(0x5E11);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 6);
        let w = Word::from_letters(&word);
        for (_, _, rewound) in w.rewinds() {
            if satisfies_c1(&w) {
                assert!(
                    w.is_prefix_of(&rewound),
                    "{word}: not a prefix of {rewound}"
                );
            }
            if satisfies_c3(&w) {
                assert!(
                    w.is_factor_of(&rewound),
                    "{word}: not a factor of {rewound}"
                );
            }
        }
    }
}

/// The strict B2b decomposition, when it exists, reassembles the query and
/// has a self-join-free core.
#[test]
fn strict_decompositions_reassemble() {
    let mut rng = StdRng::seed_from_u64(0xB2B);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 6);
        let w = Word::from_letters(&word);
        if let Some(dec) = b2b_strict_decomposition(&w) {
            assert_eq!(dec.reassemble(), w, "{word}: reassembly mismatch");
            assert!(
                dec.u.concat(&dec.v).concat(&dec.w).is_self_join_free(),
                "{word}: core has a self-join"
            );
            assert!(dec.k >= 1, "{word}: k must be positive");
        }
    }
}

/// NFA(q) accepts the query itself and every single-step rewind of it.
///
/// Note: the full closure `L↬(q)` of Definition 4 is *not* always accepted —
/// rewinding an already-rewound word at a position that is not aligned with a
/// prefix of `q` can leave the automaton's language (e.g. `q = TSST` and the
/// twice-rewound word `TSSTSTSST`). The paper's algorithms only use the
/// automaton itself, which is what the solvers here are built on and
/// validated against.
#[test]
fn query_nfa_accepts_single_rewinds() {
    let mut rng = StdRng::seed_from_u64(0xFA);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 5);
        let w = Word::from_letters(&word);
        let q = PathQuery::new(w.clone()).unwrap();
        let a = QueryNfa::new(&q);
        assert!(a.accepts(&w), "NFA({w}) must accept {w}");
        for (_, _, p) in w.rewinds() {
            assert!(a.accepts(&p), "NFA({w}) must accept {p}");
        }
    }
}

/// End-to-end: the dispatcher agrees with the exhaustive oracle on random
/// queries and random instances (capped repair count).
#[test]
fn dispatcher_agrees_with_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD15);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 4);
        let q = PathQuery::parse(&word).unwrap();
        let db = capped_db(&mut rng, "RST", 1 << 10);
        let expected = NaiveSolver::default().certain(&q, &db).unwrap();
        let got = solve_certainty(&q, &db).unwrap();
        assert_eq!(got, expected, "query {word} on {db:?}");
    }
}

/// The SAT-based solver agrees with the oracle on arbitrary queries.
#[test]
fn sat_solver_agrees_with_oracle() {
    let mut rng = StdRng::seed_from_u64(0x5A7);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 4);
        let q = PathQuery::parse(&word).unwrap();
        let db = capped_db(&mut rng, "RST", 1 << 10);
        let expected = NaiveSolver::default().certain(&q, &db).unwrap();
        let got = SatCertaintySolver::default().certain(&q, &db).unwrap();
        assert_eq!(got, expected, "query {word} on {db:?}");
    }
}

/// Adding a constant cap never turns a tractable query intractable
/// (Theorem 5: with constants there is no PTIME-complete case), and the
/// generalized solver agrees with the generalized oracle.
#[test]
fn generalized_queries_are_consistent_with_the_oracle() {
    let mut rng = StdRng::seed_from_u64(0x6E6);
    for _ in 0..CASES {
        let word = random_word(&mut rng, "RST", 3);
        let q = PathQuery::parse(&word).unwrap();
        let db = capped_db(&mut rng, "RST", 1 << 10);
        let cap = rng.random_range(0..5u8);
        let capped = q.ending_at(Symbol::new(&format!("v{cap}")));
        let class = classify_generalized(&capped).class;
        assert_ne!(
            class,
            ComplexityClass::PtimeComplete,
            "{word} capped at v{cap}"
        );
        if class != ComplexityClass::CoNpComplete {
            let solver = GeneralizedSolver::new();
            let expected = NaiveSolver::default()
                .certain_generalized(&capped, &db)
                .unwrap();
            assert_eq!(
                solver.certain(&capped, &db).unwrap(),
                expected,
                "{word} capped at v{cap} on {db:?}"
            );
        }
    }
}

/// Repairs produced by the iterator are exactly the maximal consistent
/// subinstances: right count, all consistent, all subsets, pairwise distinct.
#[test]
fn repair_enumeration_invariants() {
    let mut rng = StdRng::seed_from_u64(0x4E9);
    for _ in 0..CASES {
        let db = capped_db(&mut rng, "RS", 1 << 8);
        let repairs: Vec<ConsistentInstance> = db.repairs().collect();
        assert_eq!(repairs.len() as u128, db.repair_count());
        for r in &repairs {
            assert!(r.is_repair_of(&db), "not a repair of {db:?}");
        }
        for i in 0..repairs.len() {
            for j in i + 1..repairs.len() {
                assert_ne!(&repairs[i], &repairs[j], "duplicate repairs of {db:?}");
            }
        }
    }
}
