//! Property test: the indexed Datalog engine and the retained scan-based
//! reference engine derive **identical** relation stores on random stratified
//! programs over random instances.
//!
//! Programs come from the shared level-by-level generator in
//! `tests/common/mod.rs` (stratified and safe by construction); instances
//! come from the seeded generators in `cqa_workloads::random`. The parallel
//! engine is held to the same standard in `tests/parallel_agreement.rs`.

mod common;

use common::ProgramGen;
use cqa_datalog::prelude::*;
use cqa_workloads::random::RandomInstanceConfig;

#[test]
fn indexed_engine_agrees_with_scan_reference_on_random_programs() {
    let mut checked = 0;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xA6BEE + program_seed);
        let program = gen.program();
        assert!(program.is_safe(), "generator must produce safe programs");
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                6 + (instance_seed as usize) * 5,
                0xDB + program_seed * 31 + instance_seed,
            )
            .generate();
            let indexed = evaluate(&program, &db)
                .unwrap_or_else(|e| panic!("indexed engine failed: {e}\n{program}"));
            let scanned = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            assert_eq!(
                indexed, scanned,
                "engines disagree (program seed {program_seed}, instance seed \
                 {instance_seed})\nprogram:\n{program}\ninstance: {db:?}"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
}

#[test]
fn plan_cache_cold_and_warm_runs_derive_identical_stores() {
    // Every random program goes through a plan cache twice: the cold pass
    // compiles, the warm pass must hand back the *same* compiled plan (by
    // pointer) and derive an identical store — and both must agree with a
    // fresh compile-and-run.
    let cache = PlanCache::new();
    let mut warm_runs = 0;
    for program_seed in 0..12u64 {
        let mut gen = ProgramGen::new(0xCAC4E + program_seed);
        let program = gen.program();
        let db = RandomInstanceConfig::new("RS", 5, 16, 0xD0 + program_seed).generate();
        let cold_plan = cache.get_or_compile(&program).unwrap();
        let cold = cold_plan.run(&db);
        let warm_plan = cache.get_or_compile(&program).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&cold_plan, &warm_plan),
            "warm lookup must reuse the cold compilation (seed {program_seed})"
        );
        let warm = warm_plan.run(&db);
        assert_eq!(
            cold, warm,
            "cold and warm runs disagree (seed {program_seed})\n{program}"
        );
        let fresh = evaluate(&program, &db).unwrap();
        assert_eq!(
            cold, fresh,
            "cached and fresh compilations disagree (seed {program_seed})\n{program}"
        );
        warm_runs += 1;
    }
    assert_eq!(cache.misses(), warm_runs);
    assert_eq!(cache.hits(), warm_runs);
    assert_eq!(cache.len(), warm_runs as usize);
}

#[test]
fn engines_agree_on_generated_cqa_programs() {
    // The real workload: the linear Lemma 14 programs over random instances.
    use cqa_core::query::PathQuery;

    for word in ["RRX", "RXRY", "UVUVWV"] {
        let q = PathQuery::parse(word).unwrap();
        let Some(dec) = b2b_strict_decomposition(q.word()) else {
            continue;
        };
        let Some(cqa) = generate_program(&dec, q.word()) else {
            continue;
        };
        for seed in 0..10u64 {
            let db = RandomInstanceConfig::new(
                if word == "UVUVWV" { "UVW" } else { "RXY" },
                5,
                12,
                0xCAA + seed,
            )
            .generate();
            let indexed = cqa.compiled.run(&db);
            let scanned = evaluate_scan(&cqa.program, &db).unwrap();
            assert_eq!(indexed, scanned, "disagreement on {word}, seed {seed}");
        }
    }
}
