//! Property test: the indexed Datalog engine and the retained scan-based
//! reference engine derive **identical** relation stores on random stratified
//! programs over random instances.
//!
//! Programs are generated level by level so stratification holds by
//! construction: a rule's positive literals draw from its own level or below
//! (same-level atoms make the rule recursive), negative literals only from
//! strictly lower levels, and built-ins only over variables bound by the
//! positive part — which also makes every rule safe. Instances come from the
//! seeded generators in `cqa_workloads::random`.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng as _};

use cqa_datalog::prelude::*;
use cqa_workloads::random::RandomInstanceConfig;

const VARS: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

struct ProgramGen {
    rng: StdRng,
}

impl ProgramGen {
    fn new(seed: u64) -> ProgramGen {
        ProgramGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.random_range(0..xs.len())]
    }

    fn pick_str<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[self.rng.random_range(0..xs.len())]
    }

    /// A random term: usually a variable, occasionally a constant drawn from
    /// the instance generator's domain (`c0..c4`, matching
    /// [`RandomInstanceConfig`]'s `Constant::numbered` names).
    fn term(&mut self, vars_in_scope: &[&str]) -> DlTerm {
        if self.rng.random_bool(0.15) {
            DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize)))
        } else {
            DlTerm::var(self.pick_str(vars_in_scope))
        }
    }

    fn atom(&mut self, pred: Predicate, vars_in_scope: &[&str]) -> DlAtom {
        let args = (0..pred.arity).map(|_| self.term(vars_in_scope)).collect();
        DlAtom::new(pred, args)
    }

    /// A random safe rule for `head_pred` whose positive literals use
    /// `positive_preds` and whose negative literals use `negative_preds`.
    fn rule(
        &mut self,
        head_pred: Predicate,
        positive_preds: &[Predicate],
        negative_preds: &[Predicate],
    ) -> Rule {
        let num_positives = self.rng.random_range(1..=3usize);
        let mut body: Vec<BodyLiteral> = Vec::new();
        for _ in 0..num_positives {
            let pred = *self.pick(positive_preds);
            body.push(BodyLiteral::Positive(self.atom(pred, &VARS)));
        }
        // Variables bound by the positive part; everything else must draw
        // from these (or constants) to keep the rule safe.
        let bound: Vec<&str> = body
            .iter()
            .flat_map(|l| l.vars())
            .map(|v| v.as_str())
            .collect();
        if bound.is_empty() {
            // All-constant body: head must be all-constant too.
            let args = (0..head_pred.arity)
                .map(|_| DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize))))
                .collect();
            return Rule::new(DlAtom::new(head_pred, args), body);
        }
        if !negative_preds.is_empty() && self.rng.random_bool(0.4) {
            let pred = *self.pick(negative_preds);
            body.push(BodyLiteral::Negative(self.atom(pred, &bound)));
        }
        if self.rng.random_bool(0.4) {
            let a = DlTerm::var(self.pick_str(&bound));
            let b = DlTerm::var(self.pick_str(&bound));
            body.push(BodyLiteral::Builtin(if self.rng.random_bool(0.5) {
                Builtin::Neq(a, b)
            } else {
                Builtin::Eq(a, b)
            }));
        }
        let head_args = (0..head_pred.arity)
            .map(|_| {
                if self.rng.random_bool(0.1) {
                    DlTerm::constant(&format!("c{}", self.rng.random_range(0..5usize)))
                } else {
                    DlTerm::var(self.pick_str(&bound))
                }
            })
            .collect();
        Rule::new(DlAtom::new(head_pred, head_args), body)
    }

    /// A random stratified program over the binary EDB relations `R`, `S`.
    fn program(&mut self) -> Program {
        let edb = vec![
            Predicate::new("R", 2),
            Predicate::new("S", 2),
            Predicate::new("adom", 1),
        ];
        let mut program = Program::new();
        for &p in &edb {
            program.declare_edb(p);
        }
        let levels = self.rng.random_range(1..=3usize);
        let mut lower: Vec<Predicate> = edb.clone();
        for level in 0..levels {
            let preds_here: Vec<Predicate> = (0..self.rng.random_range(1..=2usize))
                .map(|j| {
                    Predicate::new(
                        &format!("idb_{level}_{j}"),
                        self.rng.random_range(1..=2usize),
                    )
                })
                .collect();
            for &head in &preds_here {
                // Positive literals may use this level's predicates
                // (recursion) or anything below; negation only strictly
                // below.
                let mut positive_pool = lower.clone();
                positive_pool.extend(&preds_here);
                for _ in 0..self.rng.random_range(1..=3usize) {
                    program.add_rule(self.rule(head, &positive_pool, &lower));
                }
            }
            lower.extend(preds_here);
        }
        program
    }
}

#[test]
fn indexed_engine_agrees_with_scan_reference_on_random_programs() {
    let mut checked = 0;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0xA6BEE + program_seed);
        let program = gen.program();
        assert!(program.is_safe(), "generator must produce safe programs");
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                6 + (instance_seed as usize) * 5,
                0xDB + program_seed * 31 + instance_seed,
            )
            .generate();
            let indexed = evaluate(&program, &db)
                .unwrap_or_else(|e| panic!("indexed engine failed: {e}\n{program}"));
            let scanned = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            assert_eq!(
                indexed, scanned,
                "engines disagree (program seed {program_seed}, instance seed \
                 {instance_seed})\nprogram:\n{program}\ninstance: {db:?}"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
}

#[test]
fn plan_cache_cold_and_warm_runs_derive_identical_stores() {
    // Every random program goes through a plan cache twice: the cold pass
    // compiles, the warm pass must hand back the *same* compiled plan (by
    // pointer) and derive an identical store — and both must agree with a
    // fresh compile-and-run.
    let cache = PlanCache::new();
    let mut warm_runs = 0;
    for program_seed in 0..12u64 {
        let mut gen = ProgramGen::new(0xCAC4E + program_seed);
        let program = gen.program();
        let db = RandomInstanceConfig::new("RS", 5, 16, 0xD0 + program_seed).generate();
        let cold_plan = cache.get_or_compile(&program).unwrap();
        let cold = cold_plan.run(&db);
        let warm_plan = cache.get_or_compile(&program).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&cold_plan, &warm_plan),
            "warm lookup must reuse the cold compilation (seed {program_seed})"
        );
        let warm = warm_plan.run(&db);
        assert_eq!(
            cold, warm,
            "cold and warm runs disagree (seed {program_seed})\n{program}"
        );
        let fresh = evaluate(&program, &db).unwrap();
        assert_eq!(
            cold, fresh,
            "cached and fresh compilations disagree (seed {program_seed})\n{program}"
        );
        warm_runs += 1;
    }
    assert_eq!(cache.misses(), warm_runs);
    assert_eq!(cache.hits(), warm_runs);
    assert_eq!(cache.len(), warm_runs as usize);
}

#[test]
fn engines_agree_on_generated_cqa_programs() {
    // The real workload: the linear Lemma 14 programs over random instances.
    use cqa_core::query::PathQuery;

    for word in ["RRX", "RXRY", "UVUVWV"] {
        let q = PathQuery::parse(word).unwrap();
        let Some(dec) = b2b_strict_decomposition(q.word()) else {
            continue;
        };
        let Some(cqa) = generate_program(&dec, q.word()) else {
            continue;
        };
        for seed in 0..10u64 {
            let db = RandomInstanceConfig::new(
                if word == "UVUVWV" { "UVW" } else { "RXY" },
                5,
                12,
                0xCAA + seed,
            )
            .generate();
            let indexed = cqa.compiled.run(&db);
            let scanned = evaluate_scan(&cqa.program, &db).unwrap();
            assert_eq!(indexed, scanned, "disagreement on {word}, seed {seed}");
        }
    }
}
