//! The differential harness for shape-specialized kernels.
//!
//! Kernel selection (`cqa_datalog`'s per-rule translation to columnar
//! scan/CSR-join/bitset kernels) is a pure execution-strategy change: it must
//! never alter what is derived. Three layers of oracle pin that:
//!
//! * **Full-store agreement** — on ≥ 200 random stratified program/instance
//!   pairs, evaluation with kernels on and off produces the *same complete
//!   store* (every predicate, not just a goal), identical to the scan-based
//!   reference engine, at 1, 2 and 8 engine threads.
//! * **Selection coverage** — the generated CQA programs live in the
//!   unary/binary fragment, so compilation must select kernels for some rules
//!   (`EvalStats::kernel_rules > 0`) and actually execute them
//!   (`kernel_invocations > 0`); with `Kernels::Off` the same compiled plan
//!   reports zero kernel work and every rule as generic.
//! * **End-to-end bitmaps** — a mixed batched certain-answer workload
//!   produces byte-identical bitmaps at every (kernels, threads, demand)
//!   combination.

mod common;

use std::collections::BTreeSet;

use common::ProgramGen;
use cqa_datalog::prelude::*;
use cqa_solver::prelude::*;
use cqa_workloads::figures::{figure_2, figure_2_query};
use cqa_workloads::random::{repeated_query_requests, RandomInstanceConfig};

/// The complete store as a canonical set of (predicate, tuple) strings.
fn store_set(store: &RelationStore) -> BTreeSet<(String, Vec<String>)> {
    store
        .iter_relations()
        .flat_map(|(p, tuples)| {
            let name = format!("{}/{}", p.name, p.arity);
            tuples
                .iter()
                .map(move |t| (name.clone(), t.iter().map(|s| s.to_string()).collect()))
        })
        .collect()
}

#[test]
fn kernel_runs_agree_with_generic_and_reference_on_random_programs() {
    let mut checked = 0;
    let mut kernels_selected = 0u64;
    for program_seed in 0..50u64 {
        let mut gen = ProgramGen::new(0x5E1EC7 + program_seed);
        let program = gen.program();
        for instance_seed in 0..4u64 {
            let db = RandomInstanceConfig::new(
                "RS",
                5,
                6 + (instance_seed as usize) * 5,
                0xDB + program_seed * 31 + instance_seed,
            )
            .generate();
            let reference = evaluate_scan(&program, &db)
                .unwrap_or_else(|e| panic!("scan engine failed: {e}\n{program}"));
            let expected = store_set(&reference);
            let compiled = CompiledProgram::compile(&program)
                .unwrap_or_else(|e| panic!("compile failed: {e}\n{program}"));
            for kernels in [Kernels::Off, Kernels::On] {
                for threads in [1usize, 2, 8] {
                    let options = EvalOptions::with_threads(threads).with_kernels(kernels);
                    let (store, stats) =
                        compiled.run_on_store_with_stats(edb_from_instance(&db), &options);
                    assert_eq!(
                        store_set(&store),
                        expected,
                        "store under {kernels:?} at {threads} threads disagrees with the \
                         reference (program seed {program_seed}, instance seed {instance_seed})\n\
                         {program}"
                    );
                    match kernels {
                        Kernels::Off => {
                            assert_eq!(stats.kernel_rules, 0, "kernels off but rules attributed");
                            assert_eq!(stats.kernel_invocations, 0, "kernels off but invoked");
                        }
                        _ => kernels_selected += stats.kernel_rules,
                    }
                }
            }
            checked += 1;
        }
    }
    assert!(
        checked >= 200,
        "need at least 200 agreement pairs, got {checked}"
    );
    assert!(
        kernels_selected > 0,
        "kernel selection never fired across the whole suite — \
         the harness is not exercising the specialized path"
    );
}

#[test]
fn generated_cqa_programs_select_and_execute_kernels() {
    // The Lemma 14 programs are purely unary/binary: the selection pass must
    // put some rules on the specialized path, and toggling the runtime knob
    // must flip the attribution without changing the store.
    let query = figure_2_query();
    let dec = b2b_strict_decomposition(query.word()).expect("RRX decomposes");
    let cqa = generate_program(&dec, query.word()).expect("program generation");
    let db = figure_2();

    let run = |kernels: Kernels| {
        let options = EvalOptions::sequential().with_kernels(kernels);
        cqa.compiled
            .run_on_store_with_stats(edb_from_instance(&db), &options)
    };
    let (store_on, on) = run(Kernels::On);
    let (store_off, off) = run(Kernels::Off);

    assert!(
        on.kernel_rules > 0,
        "no kernel selected on a generated CQA program: {on:?}"
    );
    assert!(
        on.kernel_invocations > 0,
        "kernels selected but never executed: {on:?}"
    );
    assert_eq!(off.kernel_rules, 0);
    assert_eq!(off.kernel_invocations, 0);
    // The selection is a compile-time property; the knob only moves rules
    // between the two attribution buckets.
    assert_eq!(off.generic_rules, on.kernel_rules + on.generic_rules);
    assert_eq!(store_set(&store_on), store_set(&store_off));
    assert_eq!(on.tuples_derived, off.tuples_derived);
    assert_eq!(on.rounds, off.rounds);
}

#[test]
fn certain_batch_bitmaps_are_identical_across_kernel_modes_and_threads() {
    // A mixed workload covering FO, NL-Datalog and PTIME routes: the answer
    // bitmap must be byte-identical at every (kernels, threads, demand)
    // combination.
    let requests = repeated_query_requests(&["RXRX", "RRX", "RXRY", "RXRYRY"], 6, 3, 0x6E12);
    let bitmap = |kernels: Kernels, threads: usize, demand: Demand| -> Vec<u8> {
        let session = CertaintySession::with_options(
            NlBackend::Datalog,
            EvalOptions::with_threads(threads)
                .with_demand(demand)
                .with_kernels(kernels),
        );
        let answers = session.certain_batch(&requests);
        let mut bytes = vec![0u8; requests.len().div_ceil(8)];
        for (i, answer) in answers.iter().enumerate() {
            let certain = *answer.as_ref().unwrap_or_else(|e| {
                panic!("request {i} failed under {kernels:?} at {threads} threads: {e}");
            });
            bytes[i / 8] |= (certain as u8) << (i % 8);
        }
        bytes
    };
    let reference = bitmap(Kernels::Off, 1, Demand::Off);
    assert!(reference.iter().any(|&b| b != 0), "degenerate workload");
    for kernels in [Kernels::Off, Kernels::On] {
        for threads in [1usize, 2, 8] {
            for demand in [Demand::Off, Demand::Prune, Demand::Magic] {
                assert_eq!(
                    bitmap(kernels, threads, demand),
                    reference,
                    "bitmap under {kernels:?}/{demand:?} at {threads} threads differs \
                     from kernels-off sequential"
                );
            }
        }
    }
}
