//! Error types for the certainty solvers.

use std::fmt;

use cqa_db::error::DbError;

/// Errors produced by the certainty solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The solver's applicability condition (C1/C2/C3, or D1/D2/D3) is not
    /// met by the query.
    NotApplicable {
        /// Solver name.
        solver: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The naive oracle would have to enumerate more repairs than allowed.
    RepairLimitExceeded {
        /// Configured limit.
        limit: u128,
        /// Actual number of repairs.
        actual: u128,
    },
    /// A resource limit was exceeded (e.g. too many query embeddings).
    ResourceLimit(String),
    /// An underlying database error.
    Db(DbError),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NotApplicable { solver, reason } => {
                write!(f, "solver {solver} is not applicable: {reason}")
            }
            SolverError::RepairLimitExceeded { limit, actual } => {
                write!(
                    f,
                    "instance has {actual} repairs, above the limit of {limit}"
                )
            }
            SolverError::ResourceLimit(msg) => write!(f, "resource limit exceeded: {msg}"),
            SolverError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<DbError> for SolverError {
    fn from(e: DbError) -> SolverError {
        match e {
            DbError::PathLimitExceeded(n) => {
                SolverError::ResourceLimit(format!("more than {n} query embeddings"))
            }
            other => SolverError::Db(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = SolverError::NotApplicable {
            solver: "fo".into(),
            reason: "query violates C1".into(),
        };
        assert!(e.to_string().contains("fo"));
        assert!(e.to_string().contains("C1"));
        let e = SolverError::RepairLimitExceeded {
            limit: 10,
            actual: 100,
        };
        assert!(e.to_string().contains("100"));
        let e: SolverError = DbError::PathLimitExceeded(5).into();
        assert!(matches!(e, SolverError::ResourceLimit(_)));
    }
}
