//! The classification-driven dispatcher: classify `q` in polynomial time
//! (Theorem 2) and route the instance to the matching solver.

use cqa_core::classify::{classify, Classification, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_db::instance::DatabaseInstance;

use crate::conp::SatCertaintySolver;
use crate::error::SolverError;
use crate::fixpoint::FixpointSolver;
use crate::fo_solver::FoSolver;
use crate::nl_solver::{NlBackend, NlSolver};
use crate::traits::CertaintySolver;

/// A solver that first classifies the query and then dispatches to the
/// specialized algorithm for its complexity class:
///
/// | class          | algorithm                                   |
/// |----------------|---------------------------------------------|
/// | FO             | first-order rewriting (Lemma 13)            |
/// | NL-complete    | predicates `P`/`O` of Lemma 14              |
/// | PTIME-complete | fixpoint algorithm of Figure 5              |
/// | coNP-complete  | SAT-based counterexample search             |
#[derive(Debug)]
pub struct DispatchSolver {
    fo: FoSolver,
    nl: NlSolver,
    fixpoint: FixpointSolver,
    conp: SatCertaintySolver,
}

impl Default for DispatchSolver {
    fn default() -> DispatchSolver {
        DispatchSolver::new()
    }
}

impl DispatchSolver {
    /// Creates a dispatcher with default sub-solvers (direct NL back-end).
    pub fn new() -> DispatchSolver {
        DispatchSolver {
            fo: FoSolver::unchecked(),
            nl: NlSolver::lenient(NlBackend::Direct),
            fixpoint: FixpointSolver::unchecked(),
            conp: SatCertaintySolver::default(),
        }
    }

    /// Creates a dispatcher whose NL class is served by the Datalog back-end.
    pub fn with_datalog_nl() -> DispatchSolver {
        DispatchSolver {
            fo: FoSolver::unchecked(),
            nl: NlSolver::lenient(NlBackend::Datalog),
            fixpoint: FixpointSolver::unchecked(),
            conp: SatCertaintySolver::default(),
        }
    }

    /// Classifies the query (exposed for reporting).
    pub fn classify(&self, query: &PathQuery) -> Classification {
        classify(query)
    }

    /// The name of the sub-solver that will handle the query.
    pub fn route(&self, query: &PathQuery) -> &'static str {
        match classify(query).class {
            ComplexityClass::FO => self.fo.name(),
            ComplexityClass::NlComplete => self.nl.name(),
            ComplexityClass::PtimeComplete => self.fixpoint.name(),
            ComplexityClass::CoNpComplete => self.conp.name(),
        }
    }
}

impl CertaintySolver for DispatchSolver {
    fn name(&self) -> &'static str {
        "dispatch"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        match classify(query).class {
            ComplexityClass::FO => self.fo.certain(query, db),
            ComplexityClass::NlComplete => self.nl.certain(query, db),
            ComplexityClass::PtimeComplete => self.fixpoint.certain(query, db),
            ComplexityClass::CoNpComplete => self.conp.certain(query, db),
        }
    }
}

/// Convenience function: classify-and-solve with the default dispatcher.
pub fn solve_certainty(query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
    DispatchSolver::new().certain(query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
        }
        db
    }

    #[test]
    fn routes_match_the_tetrachotomy() {
        let d = DispatchSolver::new();
        assert_eq!(d.route(&PathQuery::parse("RXRX").unwrap()), "fo-rewriting");
        assert_eq!(d.route(&PathQuery::parse("RXRY").unwrap()), "nl-direct");
        assert_eq!(d.route(&PathQuery::parse("RXRYRY").unwrap()), "ptime-fixpoint");
        assert_eq!(d.route(&PathQuery::parse("RXRXRYRY").unwrap()), "conp-sat");
    }

    #[test]
    fn dispatcher_agrees_with_oracle_across_all_classes() {
        let naive = NaiveSolver::default();
        let dispatch = DispatchSolver::new();
        let dispatch_dl = DispatchSolver::with_datalog_nl();
        let queries = [
            ("RXRX", vec!["R", "X"]),
            ("RR", vec!["R"]),
            ("RXRY", vec!["R", "X", "Y"]),
            ("RRX", vec!["R", "X"]),
            ("RXRYRY", vec!["R", "X", "Y"]),
            ("RSRRR", vec!["R", "S"]),
            ("ARRX", vec!["A", "R", "X"]),
            ("RXRXRYRY", vec!["R", "X", "Y"]),
        ];
        for (word, rels) in queries {
            let q = PathQuery::parse(word).unwrap();
            for seed in 1..=25u64 {
                let db = random_db(
                    seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(word.len() as u64),
                    &rels,
                    5,
                    4 + seed % 9,
                );
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                let expected = naive.certain(&q, &db).unwrap();
                assert_eq!(
                    dispatch.certain(&q, &db).unwrap(),
                    expected,
                    "dispatch disagreement on {word}, seed {seed}: {db:?}"
                );
                assert_eq!(
                    dispatch_dl.certain(&q, &db).unwrap(),
                    expected,
                    "datalog dispatch disagreement on {word}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn convenience_function_works() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "0");
        assert!(solve_certainty(&PathQuery::parse("RR").unwrap(), &db).unwrap());
        assert!(!solve_certainty(&PathQuery::parse("RX").unwrap(), &db).unwrap());
    }
}
