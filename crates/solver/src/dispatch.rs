//! The classification-driven dispatcher: classify `q` in polynomial time
//! (Theorem 2) and route the instance to the matching solver.

use std::fmt;

use cqa_core::classify::{classify, Classification};
use cqa_core::query::PathQuery;
use cqa_datalog::parallel::EvalOptions;
use cqa_db::instance::DatabaseInstance;

use crate::error::SolverError;
use crate::nl_solver::NlBackend;
use crate::session::CertaintySession;
use crate::traits::CertaintySolver;

/// The back-end a query is routed to, one per complexity class of the
/// tetrachotomy. Callers branch on the enum instead of string-matching
/// solver names; [`Route::solver_name`] (and `Display`) still yield the
/// stable names the solvers report through
/// [`CertaintySolver::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// First-order rewriting (Lemma 13), for the FO class.
    FoRewriting,
    /// The predicates `P`/`O` of Lemma 14 with the given back-end, for the
    /// NL-complete class.
    Nl(NlBackend),
    /// The fixpoint algorithm of Figure 5, for the PTIME-complete class.
    PtimeFixpoint,
    /// SAT-based counterexample search, for the coNP-complete class.
    ConpSat,
}

impl Route {
    /// The stable name of the routed solver (matches the corresponding
    /// [`CertaintySolver::name`]).
    pub fn solver_name(self) -> &'static str {
        match self {
            Route::FoRewriting => "fo-rewriting",
            Route::Nl(NlBackend::Direct) => "nl-direct",
            Route::Nl(NlBackend::Datalog) => "nl-datalog",
            Route::PtimeFixpoint => "ptime-fixpoint",
            Route::ConpSat => "conp-sat",
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honors width/alignment, which the table-style examples use.
        f.pad(self.solver_name())
    }
}

/// A solver that first classifies the query and then dispatches to the
/// specialized algorithm for its complexity class:
///
/// | class          | algorithm                                   |
/// |----------------|---------------------------------------------|
/// | FO             | first-order rewriting (Lemma 13)            |
/// | NL-complete    | predicates `P`/`O` of Lemma 14              |
/// | PTIME-complete | fixpoint algorithm of Figure 5              |
/// | coNP-complete  | SAT-based counterexample search             |
///
/// Dispatch runs through an internal [`CertaintySession`], so per-query
/// artifacts (classification, decomposition, compiled CQA program, `S-NFA`)
/// are built once per dispatcher and shared by subsequent calls with the
/// same query; use [`DispatchSolver::session`] for batch submission and
/// cache statistics.
#[derive(Debug)]
pub struct DispatchSolver {
    session: CertaintySession,
}

impl Default for DispatchSolver {
    fn default() -> DispatchSolver {
        DispatchSolver::new()
    }
}

impl DispatchSolver {
    /// Creates a dispatcher with default sub-solvers (direct NL back-end).
    pub fn new() -> DispatchSolver {
        DispatchSolver {
            session: CertaintySession::new(),
        }
    }

    /// Creates a dispatcher whose NL class is served by the Datalog back-end.
    pub fn with_datalog_nl() -> DispatchSolver {
        DispatchSolver {
            session: CertaintySession::with_datalog_nl(),
        }
    }

    /// Creates a dispatcher with an explicit NL back-end and evaluation
    /// options (thread budget for engine rounds and batched submission).
    /// `EvalOptions::sequential()` pins the exact single-threaded path.
    pub fn with_options(backend: NlBackend, options: EvalOptions) -> DispatchSolver {
        DispatchSolver {
            session: CertaintySession::with_options(backend, options),
        }
    }

    /// Classifies the query (exposed for reporting).
    pub fn classify(&self, query: &PathQuery) -> Classification {
        classify(query)
    }

    /// The route (sub-solver) that will handle the query.
    pub fn route(&self, query: &PathQuery) -> Route {
        self.session.route(query)
    }

    /// The dispatcher's certainty session, for batched submission
    /// ([`CertaintySession::certain_batch`]) and cache statistics.
    pub fn session(&self) -> &CertaintySession {
        &self.session
    }

    /// A point-in-time snapshot of the internal session's counters
    /// (plan-cache traffic and decided requests by route) — see
    /// [`CertaintySession::stats`].
    pub fn stats(&self) -> crate::session::SessionStats {
        self.session.stats()
    }

    /// Decides one query against every request of an instance family
    /// (shared prefix + per-request deltas), loading the prefix once —
    /// see [`CertaintySession::certain_batch_family`]. Answers are identical
    /// to dispatching every materialized `prefix ∪ delta` individually.
    pub fn certain_batch_family(
        &self,
        query: &PathQuery,
        family: &cqa_db::family::InstanceFamily,
    ) -> Vec<Result<bool, SolverError>> {
        self.session.certain_batch_family(query, family)
    }
}

impl CertaintySolver for DispatchSolver {
    fn name(&self) -> &'static str {
        "dispatch"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        self.session.certain(query, db)
    }
}

/// Convenience function: classify-and-solve with the default dispatcher.
pub fn solve_certainty(query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
    DispatchSolver::new().certain(query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
        }
        db
    }

    #[test]
    fn routes_match_the_tetrachotomy() {
        let d = DispatchSolver::new();
        assert_eq!(
            d.route(&PathQuery::parse("RXRX").unwrap()),
            Route::FoRewriting
        );
        assert_eq!(
            d.route(&PathQuery::parse("RXRY").unwrap()),
            Route::Nl(NlBackend::Direct)
        );
        assert_eq!(
            d.route(&PathQuery::parse("RXRYRY").unwrap()),
            Route::PtimeFixpoint
        );
        assert_eq!(
            d.route(&PathQuery::parse("RXRXRYRY").unwrap()),
            Route::ConpSat
        );
        let dl = DispatchSolver::with_datalog_nl();
        assert_eq!(
            dl.route(&PathQuery::parse("RXRY").unwrap()),
            Route::Nl(NlBackend::Datalog)
        );
    }

    #[test]
    fn route_names_are_stable() {
        for (route, name) in [
            (Route::FoRewriting, "fo-rewriting"),
            (Route::Nl(NlBackend::Direct), "nl-direct"),
            (Route::Nl(NlBackend::Datalog), "nl-datalog"),
            (Route::PtimeFixpoint, "ptime-fixpoint"),
            (Route::ConpSat, "conp-sat"),
        ] {
            assert_eq!(route.solver_name(), name);
            assert_eq!(route.to_string(), name);
        }
    }

    #[test]
    fn dispatcher_agrees_with_oracle_across_all_classes() {
        let naive = NaiveSolver::default();
        let dispatch = DispatchSolver::new();
        let dispatch_dl = DispatchSolver::with_datalog_nl();
        let queries = [
            ("RXRX", vec!["R", "X"]),
            ("RR", vec!["R"]),
            ("RXRY", vec!["R", "X", "Y"]),
            ("RRX", vec!["R", "X"]),
            ("RXRYRY", vec!["R", "X", "Y"]),
            ("RSRRR", vec!["R", "S"]),
            ("ARRX", vec!["A", "R", "X"]),
            ("RXRXRYRY", vec!["R", "X", "Y"]),
        ];
        for (word, rels) in queries {
            let q = PathQuery::parse(word).unwrap();
            for seed in 1..=25u64 {
                let db = random_db(
                    seed.wrapping_mul(0x9e3779b97f4a7c15)
                        .wrapping_add(word.len() as u64),
                    &rels,
                    5,
                    4 + seed % 9,
                );
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                let expected = naive.certain(&q, &db).unwrap();
                assert_eq!(
                    dispatch.certain(&q, &db).unwrap(),
                    expected,
                    "dispatch disagreement on {word}, seed {seed}: {db:?}"
                );
                assert_eq!(
                    dispatch_dl.certain(&q, &db).unwrap(),
                    expected,
                    "datalog dispatch disagreement on {word}, seed {seed}"
                );
            }
        }
        // The dispatchers' sessions were warm after the first instance of
        // each query, and every class shows up in the route counts.
        let stats = dispatch.stats();
        assert_eq!(stats.queries_prepared, 8);
        assert!(stats.cache_hits > 0);
        assert!(stats.routes.fo_rewriting > 0);
        assert!(stats.routes.nl_direct > 0);
        assert!(stats.routes.ptime_fixpoint > 0);
        assert!(stats.routes.conp_sat > 0);
        assert!(dispatch_dl.stats().routes.nl_datalog > 0);
    }

    #[test]
    fn convenience_function_works() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "0");
        assert!(solve_certainty(&PathQuery::parse("RR").unwrap(), &db).unwrap());
        assert!(!solve_certainty(&PathQuery::parse("RX").unwrap(), &db).unwrap());
    }
}
