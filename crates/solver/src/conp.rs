//! The coNP solver: counterexample search via reduction to SAT.
//!
//! For an arbitrary path query `q` (in particular one violating C3, where
//! `CERTAINTY(q)` is coNP-complete), the question "is there a repair
//! falsifying `q`?" is encoded as a propositional formula:
//!
//! * one variable per fact (`x_f` = "the repair keeps `f`");
//! * one *at-least-one* clause per block (a repair keeps a fact of every
//!   block — keeping more than one is harmless for the encoding because any
//!   satisfying assignment can be pruned to a repair without creating new
//!   query embeddings);
//! * for every embedding of `q` into `db` (every path with trace `q`), a
//!   clause stating that at least one of its facts is *not* kept.
//!
//! The formula is satisfiable iff some repair falsifies `q`, so `db` is a
//! "yes"-instance of `CERTAINTY(q)` iff the formula is unsatisfiable.

use cqa_core::query::PathQuery;
use cqa_db::fact::FactId;
use cqa_db::instance::DatabaseInstance;
use cqa_db::path::embeddings;
use cqa_db::repair::ConsistentInstance;
use cqa_sat::cnf::{Cnf, Lit};
use cqa_sat::solver::{solve, SatResult};

use crate::error::SolverError;
use crate::traits::CertaintySolver;

/// The SAT-based coNP solver.
#[derive(Debug, Clone)]
pub struct SatCertaintySolver {
    /// Maximum number of query embeddings to enumerate before giving up.
    pub max_embeddings: usize,
}

impl Default for SatCertaintySolver {
    fn default() -> SatCertaintySolver {
        SatCertaintySolver {
            max_embeddings: 1_000_000,
        }
    }
}

impl SatCertaintySolver {
    /// Creates a solver with the given embedding budget.
    pub fn with_limit(max_embeddings: usize) -> SatCertaintySolver {
        SatCertaintySolver { max_embeddings }
    }

    /// Builds the CNF encoding of "some repair falsifies `q`".
    pub fn encode(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<Cnf, SolverError> {
        // Variable i+1 corresponds to fact with FactId(i).
        let mut cnf = Cnf::new(db.len());
        let var_of = |id: FactId| id.index() + 1;
        // At least one fact per block.
        for (_, members) in db.blocks() {
            cnf.add_clause(members.iter().map(|&id| Lit::pos(var_of(id))));
        }
        // Block every embedding of the query.
        let images = embeddings(db, query.word(), self.max_embeddings)?;
        for image in images {
            cnf.add_clause(image.into_iter().map(|id| Lit::neg(var_of(id))));
        }
        Ok(cnf)
    }

    /// Returns a repair falsifying the query, if one exists.
    pub fn find_falsifying_repair(
        &self,
        query: &PathQuery,
        db: &DatabaseInstance,
    ) -> Result<Option<ConsistentInstance>, SolverError> {
        let cnf = self.encode(query, db)?;
        match solve(&cnf) {
            SatResult::Unsat => Ok(None),
            SatResult::Sat(model) => {
                // Prune the chosen facts down to one per block: keeping the
                // first chosen fact of every block yields a repair that still
                // avoids every embedding (embeddings only use chosen facts).
                let mut selected = Vec::with_capacity(db.block_count());
                for (block_id, members) in db.blocks() {
                    let chosen = members
                        .iter()
                        .copied()
                        .find(|&id| model[id.index() + 1])
                        .unwrap_or_else(|| {
                            panic!("block {block_id} has no chosen fact in a SAT model")
                        });
                    selected.push(db.fact(chosen));
                }
                let repair = ConsistentInstance::from_facts(selected);
                debug_assert!(
                    !repair.satisfies_word(query.word()),
                    "SAT model must induce a falsifying repair"
                );
                Ok(Some(repair))
            }
        }
    }
}

impl CertaintySolver for SatCertaintySolver {
    fn name(&self) -> &'static str {
        "conp-sat"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        Ok(self.find_falsifying_repair(query, db)?.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
        }
        db
    }

    #[test]
    fn figure_3_instance_is_not_certain_for_arrx() {
        // Figure 3 (bifurcation gadget): every repair has a path from 0
        // coloured by a word in A R R (R)* X, but the repair containing
        // R(a, c) only realises A R R R X and therefore falsifies ARRX.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("A", "0", "a");
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "a", "c");
        db.insert_parsed("R", "b", "e");
        db.insert_parsed("X", "e", "f");
        db.insert_parsed("R", "c", "g");
        db.insert_parsed("R", "g", "e");
        let q = PathQuery::parse("ARRX").unwrap();
        let solver = SatCertaintySolver::default();
        assert!(!solver.certain(&q, &db).unwrap());
        let repair = solver.find_falsifying_repair(&q, &db).unwrap().unwrap();
        assert!(!repair.satisfies_word(q.word()));
        assert_eq!(
            NaiveSolver::default().certain(&q, &db).unwrap(),
            solver.certain(&q, &db).unwrap()
        );
    }

    #[test]
    fn agrees_with_oracle_on_random_instances_for_conp_queries() {
        let naive = NaiveSolver::default();
        let sat = SatCertaintySolver::default();
        for (word, rels) in [
            ("ARRX", vec!["A", "R", "X"]),
            ("RXRXRYRY", vec!["R", "X", "Y"]),
        ] {
            let q = PathQuery::parse(word).unwrap();
            for seed in 1..=35u64 {
                let db = random_db(seed.wrapping_mul(2654435761), &rels, 5, 5 + seed % 10);
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                assert_eq!(
                    sat.certain(&q, &db).unwrap(),
                    naive.certain(&q, &db).unwrap(),
                    "disagreement on {word}, seed {seed}: {db:?}"
                );
            }
        }
    }

    #[test]
    fn works_for_tractable_queries_as_well() {
        // The SAT encoding is a correct (if slower) decision procedure for
        // every path query, not just the coNP-complete ones.
        let naive = NaiveSolver::default();
        let sat = SatCertaintySolver::default();
        for word in ["RR", "RRX", "RXRY"] {
            let q = PathQuery::parse(word).unwrap();
            for seed in 1..=20u64 {
                let db = random_db(seed * 7 + 3, &["R", "X", "Y"], 5, 4 + seed % 8);
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                assert_eq!(
                    sat.certain(&q, &db).unwrap(),
                    naive.certain(&q, &db).unwrap(),
                    "disagreement on {word}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn embedding_limit_is_enforced() {
        let mut db = DatabaseInstance::new();
        for i in 0..10 {
            for j in 0..10 {
                db.insert_parsed("R", &format!("a{i}"), &format!("b{j}"));
            }
        }
        for j in 0..10 {
            db.insert_parsed("R", &format!("b{j}"), "z");
        }
        let q = PathQuery::parse("RR").unwrap();
        let solver = SatCertaintySolver::with_limit(5);
        assert!(matches!(
            solver.certain(&q, &db),
            Err(SolverError::ResourceLimit(_))
        ));
    }

    #[test]
    fn consistent_instances_are_trivially_decided() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "b", "c");
        db.insert_parsed("X", "c", "d");
        let solver = SatCertaintySolver::default();
        assert!(solver
            .certain(&PathQuery::parse("RRX").unwrap(), &db)
            .unwrap());
        assert!(!solver
            .certain(&PathQuery::parse("XX").unwrap(), &db)
            .unwrap());
    }
}
