//! The polynomial-time fixpoint algorithm of Figure 5 (Lemmas 10 and 11).
//!
//! The algorithm computes the relation `N ⊆ adom(db) × prefixes(q)` with
//! `⟨c, u⟩ ∈ N` iff every repair of `db` has a path starting at `c` that is
//! accepted by `S-NFA(q, u)` (the relation `⊢_q` of Definition 10). For
//! queries satisfying C3, `db` is a "yes"-instance of `CERTAINTY(q)` iff
//! `⟨c, ε⟩ ∈ N` for some constant `c` (Lemma 7 + Corollary 1).
//!
//! The implementation is worklist-driven with per-block counters, giving an
//! `O(|q|^2 · |db|)` running time rather than the naive
//! `O(|q| · |db| · |N|)` of re-scanning the rules to a fixpoint.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cqa_automata::query_nfa::QueryNfa;
use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_core::symbol::RelName;
use cqa_db::fact::{Constant, Fact};
use cqa_db::instance::DatabaseInstance;
use cqa_db::repair::ConsistentInstance;

use crate::error::SolverError;
use crate::traits::CertaintySolver;

/// The computed fixpoint relation `N` plus bookkeeping for inspection.
#[derive(Debug, Clone)]
pub struct FixpointRun {
    /// The relation `N`: pairs `(c, |u|)` where `|u|` identifies the prefix.
    pub n: BTreeSet<(Constant, usize)>,
    /// The pairs in the order they were derived (the initialization pairs
    /// first), which reproduces the iteration trace of Figure 6.
    pub derivation_order: Vec<(Constant, usize)>,
    /// The length of the query word.
    pub word_len: usize,
}

impl FixpointRun {
    /// True iff `⟨c, u⟩ ∈ N` where `u` is the prefix of length `prefix_len`.
    pub fn contains(&self, c: Constant, prefix_len: usize) -> bool {
        self.n.contains(&(c, prefix_len))
    }

    /// The constants `c` with `⟨c, ε⟩ ∈ N` — by Corollary 1, exactly the
    /// constants such that `c ∈ start(q, r)` for every repair `r`.
    pub fn certain_start_vertices(&self) -> BTreeSet<Constant> {
        self.n
            .iter()
            .filter(|&&(_, len)| len == 0)
            .map(|&(c, _)| c)
            .collect()
    }
}

/// Runs the fixpoint algorithm of Figure 5.
pub fn compute_fixpoint(query: &PathQuery, db: &DatabaseInstance) -> FixpointRun {
    compute_fixpoint_with_nfa(&QueryNfa::new(query), db)
}

/// Runs the fixpoint algorithm of Figure 5 against a pre-built `S-NFA`
/// family. The automaton only depends on the query, so callers that decide
/// many instances of the same query (e.g.
/// [`crate::session::CertaintySession`]) build it once and share it.
pub fn compute_fixpoint_with_nfa(automaton: &QueryNfa, db: &DatabaseInstance) -> FixpointRun {
    let word = automaton.word();
    let k = word.len();
    let adom: Vec<Constant> = db.adom().iter().copied().collect();

    let mut n: BTreeSet<(Constant, usize)> = BTreeSet::new();
    let mut order: Vec<(Constant, usize)> = Vec::new();
    let mut queue: VecDeque<(Constant, usize)> = VecDeque::new();

    // Counters: for each nonempty prefix uR (state i >= 1) and each nonempty
    // block R(c, ∗) with R = word[i-1], the number of values y of the block
    // with ⟨y, uR⟩ ∉ N. When the counter reaches zero the Iterative Rule
    // fires and ⟨c, u⟩ (plus backward additions) enters N.
    let mut counters: HashMap<(Constant, usize), usize> = HashMap::new();
    // Index: value -> list of (block key, relation) of blocks containing it.
    let mut value_index: HashMap<Constant, Vec<(Constant, RelName)>> = HashMap::new();
    for (block_id, members) in db.blocks() {
        for state in 1..=k {
            if word[state - 1] == block_id.rel {
                counters.insert((block_id.key, state), members.len());
            }
        }
        for &fact_id in members {
            let fact = db.fact(fact_id);
            value_index
                .entry(fact.value)
                .or_default()
                .push((fact.key, fact.rel));
        }
    }

    let insert = |c: Constant,
                  state: usize,
                  n: &mut BTreeSet<(Constant, usize)>,
                  order: &mut Vec<(Constant, usize)>,
                  queue: &mut VecDeque<(Constant, usize)>| {
        if n.insert((c, state)) {
            order.push((c, state));
            queue.push_back((c, state));
        }
    };

    // Initialization Step: ⟨c, q⟩ for every c ∈ adom(db).
    for &c in &adom {
        insert(c, k, &mut n, &mut order, &mut queue);
    }

    while let Some((y, state)) = queue.pop_front() {
        if state == 0 {
            continue;
        }
        // ⟨y, uR⟩ was added where uR is the prefix of length `state`; this may
        // complete blocks R(c, ∗) with R = word[state-1] that contain y.
        let rel = word[state - 1];
        let Some(blocks) = value_index.get(&y) else {
            continue;
        };
        let candidate_keys: Vec<Constant> = blocks
            .iter()
            .filter(|&&(_, r)| r == rel)
            .map(|&(key, _)| key)
            .collect();
        for key in candidate_keys {
            // Decrement the counter once per *distinct fact* R(key, y); the
            // value index lists each fact once, so this is exact.
            let counter = counters
                .get_mut(&(key, state))
                .expect("counter exists for nonempty block");
            *counter -= 1;
            if *counter == 0 {
                // Forward addition: ⟨key, u⟩ with |u| = state - 1.
                insert(key, state - 1, &mut n, &mut order, &mut queue);
                // Backward additions: every longer prefix w with a backward
                // transition to u (same last relation name).
                if state > 1 {
                    for w in automaton.backward_predecessors(state - 1) {
                        insert(key, w, &mut n, &mut order, &mut queue);
                    }
                }
            }
        }
    }

    FixpointRun {
        n,
        derivation_order: order,
        word_len: k,
    }
}

/// Builds the repair `r*` used in the proofs of Lemmas 9 and 10: for every
/// block `R(a, ∗)`, pick a fact `R(a, b)` with `⟨b, u0R⟩ ∉ N` for the longest
/// prefix `u0R` ending in `R` such that `⟨a, u0⟩ ∉ N`; if every such prefix
/// is in `N`, pick an arbitrary fact. The resulting repair minimizes
/// `start(q, ·)` over all repairs (Lemma 6).
pub fn minimizing_repair(query: &PathQuery, db: &DatabaseInstance) -> ConsistentInstance {
    let run = compute_fixpoint(query, db);
    let word = query.word();
    let mut selected: Vec<Fact> = Vec::with_capacity(db.block_count());
    for (block_id, members) in db.blocks() {
        let facts: Vec<Fact> = members.iter().map(|&id| db.fact(id)).collect();
        // Longest prefix u0R ending with this block's relation such that
        // ⟨a, u0⟩ ∉ N.
        let mut chosen: Option<Fact> = None;
        for state in (1..=word.len()).rev() {
            if word[state - 1] != block_id.rel {
                continue;
            }
            if run.contains(block_id.key, state - 1) {
                continue;
            }
            // The Iterative Rule did not fire for ⟨a, u0⟩, so some fact of the
            // block has ⟨b, u0R⟩ ∉ N.
            if let Some(&fact) = facts.iter().find(|f| !run.contains(f.value, state)) {
                chosen = Some(fact);
            }
            break;
        }
        selected.push(chosen.unwrap_or(facts[0]));
    }
    ConsistentInstance::from_facts(selected)
}

/// The PTIME solver: correct for every path query satisfying C3
/// (Lemma 7 + Lemma 10).
#[derive(Debug, Clone, Default)]
pub struct FixpointSolver {
    /// If true, refuse queries that violate C3 (for which the algorithm is
    /// not known to be correct).
    pub strict: bool,
}

impl FixpointSolver {
    /// Creates the solver in strict mode.
    pub fn new() -> FixpointSolver {
        FixpointSolver { strict: true }
    }

    /// Creates a non-strict solver (only sound on C3 queries).
    pub fn unchecked() -> FixpointSolver {
        FixpointSolver { strict: false }
    }
}

impl CertaintySolver for FixpointSolver {
    fn name(&self) -> &'static str {
        "ptime-fixpoint"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        if self.strict && classify(query).class == ComplexityClass::CoNpComplete {
            return Err(SolverError::NotApplicable {
                solver: "ptime-fixpoint".into(),
                reason: format!("query {query} violates C3"),
            });
        }
        let run = compute_fixpoint(query, db);
        Ok(!run.certain_start_vertices().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;
    use cqa_automata::run::start_set;

    fn c(s: &str) -> Constant {
        Constant::new(s)
    }

    /// The instance of Figure 6 (right-hand side): a chain 0→1→2→3→4 of
    /// R-edges with conflicting shortcuts from 1 and 2 down to 4, and an
    /// X-edge 4→5.
    fn figure_6() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "4");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("R", "2", "4");
        db.insert_parsed("R", "3", "4");
        db.insert_parsed("X", "4", "5");
        db
    }

    #[test]
    fn figure_6_iteration_trace() {
        // The run of the algorithm for q = RRX in Figure 6 derives, after the
        // initialization, the pairs ⟨4, RR⟩, then ⟨3, R⟩/⟨3, RR⟩, then
        // ⟨2, R⟩/⟨2, RR⟩, ⟨1, R⟩/⟨1, RR⟩, and finally ⟨0, R⟩/⟨0, RR⟩/⟨0, ε⟩.
        let q = PathQuery::parse("RRX").unwrap();
        let db = figure_6();
        let run = compute_fixpoint(&q, &db);
        // Initialization: all 6 constants paired with the full word (len 3).
        assert_eq!(
            run.derivation_order
                .iter()
                .filter(|&&(_, s)| s == 3)
                .count(),
            6
        );
        assert!(run.contains(c("4"), 2));
        assert!(run.contains(c("3"), 1));
        assert!(run.contains(c("3"), 2));
        assert!(run.contains(c("2"), 1));
        assert!(run.contains(c("1"), 1));
        assert!(run.contains(c("0"), 1));
        assert!(run.contains(c("0"), 0));
        // And ⟨0, ε⟩ is the only ε-pair, exactly as in Figure 6.
        assert_eq!(run.certain_start_vertices(), BTreeSet::from([c("0")]));
        // Pairs that must NOT be derived: 4 has no outgoing R-edge, so ⟨4, R⟩
        // never fires, which in turn blocks ⟨1, ε⟩, ⟨2, ε⟩ and ⟨3, ε⟩.
        assert!(!run.contains(c("4"), 1));
        assert!(!run.contains(c("1"), 0));
        assert!(!run.contains(c("2"), 0));
        assert!(!run.contains(c("3"), 0));
        assert!(!run.contains(c("5"), 2));
        assert!(!run.contains(c("5"), 0));
    }

    #[test]
    fn corollary_1_certain_starts_lie_in_every_repairs_start_set() {
        let q = PathQuery::parse("RRX").unwrap();
        let db = figure_6();
        let run = compute_fixpoint(&q, &db);
        let automaton = QueryNfa::new(&q);
        for r in db.repairs() {
            let starts = start_set(&automaton, &r);
            for &v in &run.certain_start_vertices() {
                assert!(starts.contains(&v), "certain start {v} missing in {r:?}");
            }
        }
    }

    #[test]
    fn lemma_6_minimizing_repair_has_minimal_start_set() {
        let q = PathQuery::parse("RRX").unwrap();
        for db in [figure_6(), {
            let mut db = DatabaseInstance::new();
            db.insert_parsed("R", "0", "1");
            db.insert_parsed("R", "1", "2");
            db.insert_parsed("R", "1", "3");
            db.insert_parsed("R", "2", "3");
            db.insert_parsed("X", "3", "4");
            db
        }] {
            let automaton = QueryNfa::new(&q);
            let r_star = minimizing_repair(&q, &db);
            assert!(r_star.is_repair_of(&db));
            let minimal = start_set(&automaton, &r_star);
            for r in db.repairs() {
                let starts = start_set(&automaton, &r);
                assert!(
                    minimal.is_subset(&starts),
                    "start(q, r*) = {minimal:?} ⊄ start(q, r) = {starts:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_oracle_on_figure_2() {
        let q = PathQuery::parse("RRX").unwrap();
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        assert!(FixpointSolver::new().certain(&q, &db).unwrap());
        assert!(NaiveSolver::default().certain(&q, &db).unwrap());
    }

    #[test]
    fn agrees_with_oracle_on_random_instances() {
        let mut state = 0x55aa55aau64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let naive = NaiveSolver::default();
        let fixpoint = FixpointSolver::new();
        // Queries of classes FO, NL and PTIME (all satisfy C3).
        for word in ["RR", "RRX", "RXRY", "RXRYRY", "RXRX"] {
            let q = PathQuery::parse(word).unwrap();
            for _ in 0..40 {
                let mut db = DatabaseInstance::new();
                for _ in 0..(3 + next() % 10) {
                    let rel = match next() % 4 {
                        0 => "X",
                        1 => "Y",
                        _ => "R",
                    };
                    let a = next() % 5;
                    let b = next() % 5;
                    db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
                }
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                assert_eq!(
                    fixpoint.certain(&q, &db).unwrap(),
                    naive.certain(&q, &db).unwrap(),
                    "disagreement on {word} for {db:?}"
                );
            }
        }
    }

    #[test]
    fn strict_mode_rejects_conp_queries() {
        let q = PathQuery::parse("ARRX").unwrap();
        let db = DatabaseInstance::new();
        assert!(matches!(
            FixpointSolver::new().certain(&q, &db),
            Err(SolverError::NotApplicable { .. })
        ));
        assert!(FixpointSolver::unchecked().certain(&q, &db).is_ok());
    }
}
