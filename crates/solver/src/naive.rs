//! Baseline solvers: exhaustive repair enumeration and pruned backtracking.
//!
//! These are the ground-truth oracles used throughout the test-suite, and the
//! baselines against which the specialized (FO / NL / PTIME / SAT) solvers
//! are benchmarked. Their worst-case running time is exponential in the
//! number of non-singleton blocks.

use cqa_core::query::{GeneralizedPathQuery, PathQuery};
use cqa_core::word::Word;
use cqa_db::fact::FactId;
use cqa_db::instance::DatabaseInstance;
use cqa_db::repair::ConsistentInstance;

use crate::error::SolverError;
use crate::traits::CertaintySolver;

/// Exhaustive repair enumeration with a configurable repair-count limit.
#[derive(Debug, Clone)]
pub struct NaiveSolver {
    /// Maximum number of repairs the solver is willing to enumerate.
    pub max_repairs: u128,
}

impl Default for NaiveSolver {
    fn default() -> NaiveSolver {
        NaiveSolver {
            max_repairs: 1 << 22,
        }
    }
}

impl NaiveSolver {
    /// Creates a solver with the given repair budget.
    pub fn with_limit(max_repairs: u128) -> NaiveSolver {
        NaiveSolver { max_repairs }
    }

    fn check_budget(&self, db: &DatabaseInstance) -> Result<(), SolverError> {
        let actual = db.repair_count();
        if actual > self.max_repairs {
            return Err(SolverError::RepairLimitExceeded {
                limit: self.max_repairs,
                actual,
            });
        }
        Ok(())
    }

    /// Returns a repair falsifying the query, if one exists.
    pub fn find_falsifying_repair(
        &self,
        query: &PathQuery,
        db: &DatabaseInstance,
    ) -> Result<Option<ConsistentInstance>, SolverError> {
        self.check_budget(db)?;
        Ok(db.repairs().find(|r| !r.satisfies_word(query.word())))
    }

    /// Decides certainty for a generalized path query by enumeration.
    pub fn certain_generalized(
        &self,
        query: &GeneralizedPathQuery,
        db: &DatabaseInstance,
    ) -> Result<bool, SolverError> {
        self.check_budget(db)?;
        Ok(db.repairs().all(|r| r.satisfies_generalized(query)))
    }
}

impl CertaintySolver for NaiveSolver {
    fn name(&self) -> &'static str {
        "naive-enumeration"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        self.check_budget(db)?;
        Ok(db.repairs().all(|r| r.satisfies_word(query.word())))
    }
}

/// Backtracking search for a falsifying repair with satisfaction-based
/// pruning: as soon as the facts chosen so far already contain a path with
/// trace `q`, no completion of the partial repair can falsify the query and
/// the branch is pruned.
#[derive(Debug, Clone, Default)]
pub struct BacktrackSolver;

impl BacktrackSolver {
    /// Creates the solver.
    pub fn new() -> BacktrackSolver {
        BacktrackSolver
    }

    /// Returns a repair falsifying the query, if one exists.
    pub fn find_falsifying_repair(
        &self,
        query: &PathQuery,
        db: &DatabaseInstance,
    ) -> Option<ConsistentInstance> {
        let blocks: Vec<&[FactId]> = db.blocks().map(|(_, members)| members).collect();
        let mut chosen: Vec<FactId> = Vec::with_capacity(blocks.len());
        if self.search(query.word(), db, &blocks, &mut chosen) {
            Some(ConsistentInstance::from_facts(
                chosen.iter().map(|&id| db.fact(id)),
            ))
        } else {
            None
        }
    }

    fn search(
        &self,
        word: &Word,
        db: &DatabaseInstance,
        blocks: &[&[FactId]],
        chosen: &mut Vec<FactId>,
    ) -> bool {
        // Prune: if the partial selection already satisfies the query, no
        // completion can falsify it.
        let partial = ConsistentInstance::from_facts(chosen.iter().map(|&id| db.fact(id)));
        if partial.satisfies_word(word) {
            return false;
        }
        if chosen.len() == blocks.len() {
            return true;
        }
        let block = blocks[chosen.len()];
        for &candidate in block {
            chosen.push(candidate);
            if self.search(word, db, blocks, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

impl CertaintySolver for BacktrackSolver {
    fn name(&self) -> &'static str {
        "pruned-backtracking"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        Ok(self.find_falsifying_repair(query, db).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_db::fact::Fact;

    fn figure_1() -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for rel in ["R", "S"] {
            for x in ["a", "b"] {
                for y in ["a", "b"] {
                    db.insert_parsed(rel, x, y);
                }
            }
        }
        db
    }

    #[test]
    fn example_1_rr_is_certain_on_figure_1() {
        // q1 = R(x,y), R(y,x) is not a path query, but RR is close in spirit:
        // the paper's Example 1 discusses the self-join query; here we verify
        // the related fact used in Example 2's discussion: every repair of
        // the R-part of Figure 1 satisfies RR.
        let db = figure_1();
        let q = PathQuery::parse("RR").unwrap();
        assert!(NaiveSolver::default().certain(&q, &db).unwrap());
        assert!(BacktrackSolver::new().certain(&q, &db).unwrap());
    }

    #[test]
    fn falsifying_repairs_are_found_when_they_exist() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "0", "2");
        db.insert_parsed("X", "1", "3");
        let q = PathQuery::parse("RX").unwrap();
        let naive = NaiveSolver::default();
        assert!(!naive.certain(&q, &db).unwrap());
        let repair = naive.find_falsifying_repair(&q, &db).unwrap().unwrap();
        assert!(repair.contains(&Fact::parse("R", "0", "2")));
        let bt = BacktrackSolver::new();
        let repair = bt.find_falsifying_repair(&q, &db).unwrap();
        assert!(!repair.satisfies_word(q.word()));
    }

    #[test]
    fn repair_limit_is_enforced() {
        let db = figure_1();
        let solver = NaiveSolver::with_limit(4);
        let q = PathQuery::parse("RR").unwrap();
        assert!(matches!(
            solver.certain(&q, &db),
            Err(SolverError::RepairLimitExceeded { .. })
        ));
    }

    #[test]
    fn backtracking_agrees_with_naive_on_random_instances() {
        let mut state = 0x777u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let naive = NaiveSolver::default();
        let bt = BacktrackSolver::new();
        for _ in 0..50 {
            let mut db = DatabaseInstance::new();
            for _ in 0..(4 + next() % 8) {
                let rel = if next() % 2 == 0 { "R" } else { "X" };
                let a = next() % 5;
                let b = next() % 5;
                db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
            }
            for word in ["RX", "RRX", "RR"] {
                let q = PathQuery::parse(word).unwrap();
                assert_eq!(
                    naive.certain(&q, &db).unwrap(),
                    bt.certain(&q, &db).unwrap(),
                    "disagreement on {word} for {db:?}"
                );
            }
        }
    }

    #[test]
    fn generalized_oracle_handles_constants() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        let q = PathQuery::parse("RR").unwrap();
        let naive = NaiveSolver::default();
        // Every repair has an RR path from 0 (to 2 or 3), so rooted at 0 it
        // is certain; rooted at 2 it is not.
        assert!(naive
            .certain_generalized(&q.rooted_at(cqa_core::symbol::Symbol::new("0")), &db)
            .unwrap());
        assert!(!naive
            .certain_generalized(&q.rooted_at(cqa_core::symbol::Symbol::new("2")), &db)
            .unwrap());
        // Capped at 2: only one repair reaches 2, so not certain.
        assert!(!naive
            .certain_generalized(&q.ending_at(cqa_core::symbol::Symbol::new("2")), &db)
            .unwrap());
    }
}
