//! Certainty for generalized path queries (Section 8).
//!
//! A generalized path query `q` with constants is answered by combining:
//!
//! 1. the certainty of every *constant-rooted segment* of `q \ char(q)`
//!    (each is in FO by Lemma 27 and is evaluated with the rooted-rewriting
//!    table, honouring an end constant when the segment is capped); and
//! 2. the certainty of the characteristic prefix `char(q) = [[p, γ]]`:
//!    * if `γ = ⊤`, this is plain `CERTAINTY(p)` and is delegated to a path
//!      solver chosen by the Theorem 4 classification;
//!    * if `γ = c`, the query is first rewritten to the constant-free
//!      `ext(q) = p · N` over the instance `db ∪ {N(c, d)}` for a fresh
//!      relation `N` and a fresh constant `d` (Lemma 26 / Lemma 29).
//!
//! The conjunction is sound because the parts share no variables (Lemma 25).

use cqa_core::classify::{classify_generalized, Classification};
use cqa_core::generalized::fresh_relation_for;
use cqa_core::query::{Cap, GeneralizedPathQuery, PathQuery};
use cqa_db::fact::{Constant, Fact};
use cqa_db::instance::DatabaseInstance;
use cqa_fo::rewriting::{CertainRootedTable, EndCap};

use crate::dispatch::DispatchSolver;
use crate::error::SolverError;
use crate::traits::CertaintySolver;

/// Solver for generalized path queries.
#[derive(Debug, Default)]
pub struct GeneralizedSolver {
    dispatch: DispatchSolver,
}

impl GeneralizedSolver {
    /// Creates the solver with the default dispatcher for the constant-free
    /// core.
    pub fn new() -> GeneralizedSolver {
        GeneralizedSolver {
            dispatch: DispatchSolver::new(),
        }
    }

    /// The Theorem 4 classification of the query.
    pub fn classify(&self, query: &GeneralizedPathQuery) -> Classification {
        classify_generalized(query)
    }

    /// Decides `CERTAINTY(q)` for a generalized path query.
    pub fn certain(
        &self,
        query: &GeneralizedPathQuery,
        db: &DatabaseInstance,
    ) -> Result<bool, SolverError> {
        // Part 1: the constant-rooted segments of q \ char(q).
        for (start, word, cap) in query.constant_rooted_segments() {
            let end = match cap {
                Cap::Top => EndCap::Open,
                Cap::Const(c) => EndCap::Const(Constant(c)),
            };
            let table = CertainRootedTable::compute(db, &word, end);
            if !table.certain_from(Constant(start)) {
                return Ok(false);
            }
        }
        // Part 2: the characteristic prefix.
        let Some((p, cap)) = query.characteristic_prefix() else {
            // The query starts with a constant: everything was covered by the
            // segments above.
            return Ok(true);
        };
        if p.is_empty() {
            return Ok(true);
        }
        match cap {
            Cap::Top => {
                let path_query = PathQuery::new(p).expect("nonempty characteristic prefix");
                self.dispatch.certain(&path_query, db)
            }
            Cap::Const(c) => {
                // ext(q) = p · N over db ∪ {N(c, d)} with N and d fresh.
                let fresh_rel = fresh_relation_for(query);
                let mut ext_word = p;
                ext_word.push(fresh_rel);
                let ext_query = PathQuery::new(ext_word).expect("extended query is nonempty");
                let mut extended_db = db.clone();
                let fresh_value = fresh_constant(db);
                extended_db.insert(Fact::new(fresh_rel, Constant(c), fresh_value));
                self.dispatch.certain(&ext_query, &extended_db)
            }
        }
    }
}

fn fresh_constant(db: &DatabaseInstance) -> Constant {
    let mut i = 0usize;
    loop {
        let candidate = Constant::new(&format!("__fresh_d{i}"));
        if !db.adom().contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;
    use cqa_core::parser::parse_query;
    use cqa_core::symbol::Symbol;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("{a}"), &format!("{b}"));
        }
        db
    }

    #[test]
    fn constant_free_queries_delegate_to_the_dispatcher() {
        let solver = GeneralizedSolver::new();
        let naive = NaiveSolver::default();
        let q = PathQuery::parse("RRX").unwrap();
        for seed in 1..=20u64 {
            let db = random_db(seed * 13, &["R", "X"], 5, 4 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                solver.certain(&q.to_generalized(), &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rooted_queries_agree_with_the_oracle() {
        let solver = GeneralizedSolver::new();
        let naive = NaiveSolver::default();
        let base = PathQuery::parse("RR").unwrap();
        for seed in 1..=25u64 {
            let db = random_db(seed * 29, &["R"], 4, 4 + seed % 6);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            for c in ["0", "1", "2", "3"] {
                let rooted = base.rooted_at(Symbol::new(c));
                assert_eq!(
                    solver.certain(&rooted, &db).unwrap(),
                    naive.certain_generalized(&rooted, &db).unwrap(),
                    "seed {seed}, root {c}"
                );
            }
        }
    }

    #[test]
    fn capped_queries_agree_with_the_oracle() {
        let solver = GeneralizedSolver::new();
        let naive = NaiveSolver::default();
        for word in ["RR", "RX", "RRX"] {
            let base = PathQuery::parse(word).unwrap();
            for seed in 1..=25u64 {
                let db = random_db(seed * 31 + word.len() as u64, &["R", "X"], 4, 4 + seed % 7);
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                for c in ["0", "1", "2", "3"] {
                    let capped = base.ending_at(Symbol::new(c));
                    assert_eq!(
                        solver.certain(&capped, &db).unwrap(),
                        naive.certain_generalized(&capped, &db).unwrap(),
                        "seed {seed}, word {word}, cap {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn example_8_style_queries_with_mid_constants() {
        let solver = GeneralizedSolver::new();
        let naive = NaiveSolver::default();
        // q = R(x,y), S(y,'1'), T('1',z)
        let q = parse_query("R(x,y), S(y,'1'), T('1',z)").unwrap();
        for seed in 1..=30u64 {
            let db = random_db(seed * 41, &["R", "S", "T"], 4, 5 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                solver.certain(&q, &db).unwrap(),
                naive.certain_generalized(&q, &db).unwrap(),
                "seed {seed}: {db:?}"
            );
        }
    }

    #[test]
    fn query_starting_with_constant_is_fo_and_correct() {
        let solver = GeneralizedSolver::new();
        let naive = NaiveSolver::default();
        let q = parse_query("R('0',x), R(x,y)").unwrap();
        for seed in 1..=25u64 {
            let db = random_db(seed * 53, &["R"], 4, 4 + seed % 7);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                solver.certain(&q, &db).unwrap(),
                naive.certain_generalized(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
        assert!(solver.classify(&q).c1);
    }
}
