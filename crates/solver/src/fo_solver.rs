//! The FO solver (Lemma 13): for path queries satisfying C1, `CERTAINTY(q)`
//! is decided by evaluating the consistent first-order rewriting
//! `∃x ψ(x)`, implemented as the memoized bottom-up table of `cqa-fo`.

use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_db::instance::DatabaseInstance;
use cqa_fo::rewriting::{CertainRootedTable, EndCap};

use crate::error::SolverError;
use crate::traits::CertaintySolver;

/// Decides `CERTAINTY(q)` for C1 queries via the first-order rewriting.
#[derive(Debug, Clone, Default)]
pub struct FoSolver {
    /// If true, the solver refuses queries outside FO; if false it still
    /// evaluates the rewriting (useful for experiments on the boundary, where
    /// the rewriting is only an approximation).
    pub strict: bool,
}

impl FoSolver {
    /// Creates the solver in strict mode (recommended).
    pub fn new() -> FoSolver {
        FoSolver { strict: true }
    }

    /// Creates a non-strict solver that evaluates the rewriting regardless of
    /// the query's class. Only sound for C1 queries.
    pub fn unchecked() -> FoSolver {
        FoSolver { strict: false }
    }

    /// Evaluates the rewriting: true iff there is a constant from which the
    /// query is certainly satisfied.
    pub fn evaluate_rewriting(&self, query: &PathQuery, db: &DatabaseInstance) -> bool {
        let table = CertainRootedTable::compute(db, query.word(), EndCap::Open);
        !table.certain_starts().is_empty()
    }
}

impl CertaintySolver for FoSolver {
    fn name(&self) -> &'static str {
        "fo-rewriting"
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        if self.strict && classify(query).class != ComplexityClass::FO {
            return Err(SolverError::NotApplicable {
                solver: "fo-rewriting".into(),
                reason: format!("query {query} violates C1"),
            });
        }
        Ok(self.evaluate_rewriting(query, db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    #[test]
    fn rejects_non_c1_queries_in_strict_mode() {
        let q = PathQuery::parse("RXRY").unwrap();
        let db = DatabaseInstance::new();
        assert!(matches!(
            FoSolver::new().certain(&q, &db),
            Err(SolverError::NotApplicable { .. })
        ));
        assert!(FoSolver::unchecked().certain(&q, &db).is_ok());
    }

    #[test]
    fn agrees_with_oracle_on_rr() {
        let q = PathQuery::parse("RR").unwrap();
        let naive = NaiveSolver::default();
        let fo = FoSolver::new();
        // Figure 1's R-part: certain.
        let mut db = DatabaseInstance::new();
        for a in ["a", "b"] {
            for b in ["a", "b"] {
                db.insert_parsed("R", a, b);
            }
        }
        assert_eq!(
            fo.certain(&q, &db).unwrap(),
            naive.certain(&q, &db).unwrap()
        );
        assert!(fo.certain(&q, &db).unwrap());
        // A dangling chain: not certain.
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "a", "b");
        db.insert_parsed("R", "a", "c");
        db.insert_parsed("R", "b", "d");
        assert_eq!(
            fo.certain(&q, &db).unwrap(),
            naive.certain(&q, &db).unwrap()
        );
        assert!(!fo.certain(&q, &db).unwrap());
    }

    #[test]
    fn agrees_with_oracle_on_random_instances_for_c1_queries() {
        let mut state = 0x2468acd1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let naive = NaiveSolver::default();
        let fo = FoSolver::new();
        for word in ["RR", "RXRX", "RX", "RRR"] {
            let q = PathQuery::parse(word).unwrap();
            if classify(&q).class != ComplexityClass::FO {
                continue;
            }
            for _ in 0..40 {
                let mut db = DatabaseInstance::new();
                for _ in 0..(3 + next() % 9) {
                    let rel = if next() % 3 == 0 { "X" } else { "R" };
                    let a = next() % 5;
                    let b = next() % 5;
                    db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
                }
                if db.repair_count() > 1 << 12 {
                    continue;
                }
                assert_eq!(
                    fo.certain(&q, &db).unwrap(),
                    naive.certain(&q, &db).unwrap(),
                    "disagreement on {word} for {db:?}"
                );
            }
        }
    }
}
