//! Batched certain-answer sessions.
//!
//! Real certain-answer workloads ask the *same* query against many
//! instances: the classification of `q` (Theorem 2), its strict B2b
//! decomposition, the generated linear Datalog program of Lemma 14 (plus its
//! compiled join plans) and the `S-NFA` family of Figure 5 all depend only on
//! the query, yet a naive per-call dispatcher rebuilds them for every
//! `(query, instance)` pair. A [`CertaintySession`] amortizes that setup: it
//! classifies each query once, prepares the route-specific artifacts once,
//! caches them per query word, and exposes both a per-call
//! [`CertaintySession::certain`] and a batched
//! [`CertaintySession::certain_batch`] that groups requests by query before
//! solving.
//!
//! [`crate::dispatch::DispatchSolver`] routes through a private session, so
//! every dispatcher instance is warm after its first call per query; create
//! a session directly when you want to inspect routes and cache statistics
//! or to submit whole batches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cqa_automata::query_nfa::QueryNfa;
use cqa_core::classify::{classify, Classification, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_core::word::Word;
use cqa_datalog::parallel::{EvalOptions, Threads};
use cqa_datalog::store::{edb_base_from_instance, BaseStore};
use cqa_db::family::InstanceFamily;
use cqa_db::instance::DatabaseInstance;

use crate::conp::SatCertaintySolver;
use crate::dispatch::Route;
use crate::error::SolverError;
use crate::fixpoint::compute_fixpoint_with_nfa;
use crate::fo_solver::FoSolver;
use crate::nl_solver::{DemandCounts, NlBackend, NlPlan, NlSolver};
use crate::traits::CertaintySolver;

/// A query's cached routing decision plus the per-query artifacts its route
/// shares across instances.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query: PathQuery,
    classification: Classification,
    route: Route,
    /// Prepared NL artifacts (decomposition / compiled program / fallback
    /// automaton) for NL-routed queries.
    nl: Option<NlPlan>,
    /// The shared automaton for fixpoint-routed queries.
    nfa: Option<Arc<QueryNfa>>,
}

impl QueryPlan {
    /// The query this plan was prepared for.
    pub fn query(&self) -> &PathQuery {
        &self.query
    }

    /// The query's classification (computed once per session and query).
    pub fn classification(&self) -> Classification {
        self.classification
    }

    /// The back-end the session routes this query to.
    pub fn route(&self) -> Route {
        self.route
    }
}

/// Per-route counts of decided requests — which back-ends a session's
/// traffic actually exercised. Part of [`SessionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Requests decided by first-order rewriting.
    pub fo_rewriting: u64,
    /// Requests decided by the direct NL back-end.
    pub nl_direct: u64,
    /// Requests decided by the Datalog NL back-end.
    pub nl_datalog: u64,
    /// Requests decided by the PTIME fixpoint algorithm.
    pub ptime_fixpoint: u64,
    /// Requests decided by SAT counterexample search.
    pub conp_sat: u64,
}

impl RouteCounts {
    /// The count for one route.
    pub fn of(&self, route: Route) -> u64 {
        match route {
            Route::FoRewriting => self.fo_rewriting,
            Route::Nl(NlBackend::Direct) => self.nl_direct,
            Route::Nl(NlBackend::Datalog) => self.nl_datalog,
            Route::PtimeFixpoint => self.ptime_fixpoint,
            Route::ConpSat => self.conp_sat,
        }
    }

    /// Total requests decided across every route.
    pub fn total(&self) -> u64 {
        self.fo_rewriting + self.nl_direct + self.nl_datalog + self.ptime_fixpoint + self.conp_sat
    }
}

/// A cheap point-in-time snapshot of a session's counters: plan-cache
/// traffic plus the routes its requests took. This is the one surface
/// callers observe a session through — `cqa-server`'s `STATS` command and
/// its eviction policy both render it — instead of a drawer of ad-hoc
/// getters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests that reused a cached query plan.
    pub cache_hits: u64,
    /// Query plans built (cache misses).
    pub cache_misses: u64,
    /// Distinct queries prepared by this session.
    pub queries_prepared: usize,
    /// Requests decided, by route.
    pub routes: RouteCounts,
    /// Cumulative demand-transformation effect over the session's Datalog
    /// engine runs: rules/predicates pruned per request and tuples actually
    /// derived (see [`crate::nl_solver::DemandCounts`]).
    pub demand: DemandCounts,
}

/// Route label values for [`SessionMetrics::route_histograms`], in
/// [`RouteCounts`] field order (the same order as
/// `CertaintySession::route_slot`).
pub const ROUTE_LABELS: [&str; 5] = [
    "fo_rewriting",
    "nl_direct",
    "nl_datalog",
    "ptime_fixpoint",
    "conp_sat",
];

/// Always-on latency instrumentation owned by a session, so its numbers
/// live and die with the session (a server restart genuinely resets them).
/// The handles are `Arc`s on purpose: `cqa-server` registers them into its
/// metrics registry ([`cqa_obs::Registry::register_histogram`]) and renders
/// them through `METRICS` without a second copy.
#[derive(Debug)]
pub struct SessionMetrics {
    /// Service time of each decided request, by route (one record per
    /// request, in [`ROUTE_LABELS`] order).
    route_ns: [Arc<cqa_obs::Histogram>; 5],
    /// Plan build time on a session plan-cache miss (classification plus
    /// route-artifact preparation).
    plan_build_ns: Arc<cqa_obs::Histogram>,
}

impl SessionMetrics {
    fn new() -> SessionMetrics {
        SessionMetrics {
            route_ns: std::array::from_fn(|_| Arc::new(cqa_obs::Histogram::new())),
            plan_build_ns: Arc::new(cqa_obs::Histogram::new()),
        }
    }

    /// The per-route service-time histograms, labelled for exposition.
    pub fn route_histograms(&self) -> [(&'static str, Arc<cqa_obs::Histogram>); 5] {
        std::array::from_fn(|i| (ROUTE_LABELS[i], Arc::clone(&self.route_ns[i])))
    }

    /// The plan-build (classify + prepare) histogram.
    pub fn plan_build_histogram(&self) -> Arc<cqa_obs::Histogram> {
        Arc::clone(&self.plan_build_ns)
    }
}

/// A reusable certain-answer session: classify once per query, share the
/// compiled artifacts, answer many `(query, instance)` requests.
#[derive(Debug)]
pub struct CertaintySession {
    fo: FoSolver,
    nl: NlSolver,
    nl_backend: NlBackend,
    conp: SatCertaintySolver,
    plans: Mutex<HashMap<Word, Arc<QueryPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Decided requests per route, in the order of [`RouteCounts`]'s fields
    /// (see [`CertaintySession::route_slot`]).
    route_counts: [AtomicU64; 5],
    metrics: SessionMetrics,
    options: EvalOptions,
}

impl Default for CertaintySession {
    fn default() -> CertaintySession {
        CertaintySession::new()
    }
}

impl CertaintySession {
    fn with_backend(backend: NlBackend) -> CertaintySession {
        CertaintySession::with_options(backend, EvalOptions::default())
    }

    /// Creates a session with an explicit back-end and evaluation options.
    ///
    /// One `threads` knob controls both layers of parallelism, one level at
    /// a time: [`CertaintySession::certain_batch`] fans whole requests out
    /// across that many worker threads (each request then evaluated
    /// sequentially), while single-request entry points pass the thread
    /// budget down to the Datalog engine's stratum rounds instead.
    pub fn with_options(backend: NlBackend, options: EvalOptions) -> CertaintySession {
        CertaintySession {
            fo: FoSolver::unchecked(),
            nl: NlSolver::lenient_with_options(backend, options),
            nl_backend: backend,
            conp: SatCertaintySolver::default(),
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            route_counts: Default::default(),
            metrics: SessionMetrics::new(),
            options,
        }
    }

    /// The session's always-on latency histograms (per-route service time,
    /// plan-build time).
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }

    /// Creates a session serving the NL class with the direct back-end.
    pub fn new() -> CertaintySession {
        CertaintySession::with_backend(NlBackend::Direct)
    }

    /// Creates a session serving the NL class with the Datalog back-end.
    pub fn with_datalog_nl() -> CertaintySession {
        CertaintySession::with_backend(NlBackend::Datalog)
    }

    /// The evaluation options this session was created with.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// Classifies the query and prepares its route, reusing the cached plan
    /// when this session has seen the query before.
    pub fn prepare(&self, query: &PathQuery) -> Arc<QueryPlan> {
        if let Some(plan) = self.plans.lock().expect("session lock").get(query.word()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let timer = cqa_obs::Stopwatch::start();
        let classification = classify(query);
        let (route, nl, nfa) = match classification.class {
            ComplexityClass::FO => (Route::FoRewriting, None, None),
            ComplexityClass::NlComplete => (
                Route::Nl(self.nl_backend),
                Some(self.nl.prepare(query)),
                None,
            ),
            ComplexityClass::PtimeComplete => (
                Route::PtimeFixpoint,
                None,
                Some(Arc::new(QueryNfa::new(query))),
            ),
            ComplexityClass::CoNpComplete => (Route::ConpSat, None, None),
        };
        let plan = Arc::new(QueryPlan {
            query: query.clone(),
            classification,
            route,
            nl,
            nfa,
        });
        let ns = timer.elapsed_ns();
        self.metrics.plan_build_ns.record(ns);
        cqa_obs::record_span(cqa_obs::Span::Classify, ns);
        Arc::clone(
            self.plans
                .lock()
                .expect("session lock")
                .entry(query.word().clone())
                .or_insert(plan),
        )
    }

    /// The route the session would take for a query (preparing and caching
    /// the plan as a side effect).
    pub fn route(&self, query: &PathQuery) -> Route {
        self.prepare(query).route
    }

    /// Decides one `(query, instance)` request through the cached plan.
    pub fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        let plan = self.prepare(query);
        self.certain_planned(&plan, db)
    }

    /// Decides one instance against an already prepared plan.
    pub fn certain_planned(
        &self,
        plan: &QueryPlan,
        db: &DatabaseInstance,
    ) -> Result<bool, SolverError> {
        self.certain_planned_with(plan, db, &self.options)
    }

    /// Decides one instance against a prepared plan with caller-supplied
    /// engine options (the parallel batch path pins its workers to
    /// sequential engine runs through this).
    fn certain_planned_with(
        &self,
        plan: &QueryPlan,
        db: &DatabaseInstance,
        options: &EvalOptions,
    ) -> Result<bool, SolverError> {
        self.route_slot(plan.route).fetch_add(1, Ordering::Relaxed);
        let timer = cqa_obs::Stopwatch::start();
        let answer = match plan.route {
            Route::FoRewriting => Ok(self.fo.evaluate_rewriting(&plan.query, db)),
            Route::Nl(_) => {
                let nl = plan.nl.as_ref().expect("NL route carries an NL plan");
                self.nl.certain_prepared_with(nl, db, options)
            }
            Route::PtimeFixpoint => {
                let nfa = plan.nfa.as_ref().expect("fixpoint route carries an NFA");
                Ok(!compute_fixpoint_with_nfa(nfa, db)
                    .certain_start_vertices()
                    .is_empty())
            }
            Route::ConpSat => self.conp.certain(&plan.query, db),
        };
        self.route_histogram(plan.route).record(timer.elapsed_ns());
        answer
    }

    /// Decides a whole batch of `(query, instance)` requests, grouping by
    /// query so each distinct query is classified and prepared exactly once.
    /// Results are returned in request order.
    ///
    /// With a resolved thread budget above one, the batch is fanned out
    /// across scoped worker threads: plans are prepared once on the
    /// coordinator (every [`crate::dispatch::Route`]'s artifacts are `Sync`,
    /// so workers share them by reference), each worker decides a contiguous
    /// slice of the requests with *sequential* engine runs, and results land
    /// in preassigned slots — request order, and therefore the answer
    /// bitmap, is identical at every thread count.
    pub fn certain_batch(
        &self,
        requests: &[(PathQuery, DatabaseInstance)],
    ) -> Vec<Result<bool, SolverError>> {
        let threads = self.options.threads.resolve().min(requests.len());
        if threads > 1 {
            return self.certain_batch_parallel(requests, threads);
        }
        let mut groups: HashMap<&Word, Vec<usize>> = HashMap::new();
        for (i, (query, _)) in requests.iter().enumerate() {
            groups.entry(query.word()).or_default().push(i);
        }
        let mut out: Vec<Option<Result<bool, SolverError>>> = Vec::new();
        out.resize_with(requests.len(), || None);
        for indexes in groups.into_values() {
            let plan = self.prepare(&requests[indexes[0]].0);
            for i in indexes {
                out[i] = Some(self.certain_planned(&plan, &requests[i].1));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request grouped"))
            .collect()
    }

    /// The scoped fan-out behind [`CertaintySession::certain_batch`].
    fn certain_batch_parallel(
        &self,
        requests: &[(PathQuery, DatabaseInstance)],
        threads: usize,
    ) -> Vec<Result<bool, SolverError>> {
        // Classify and prepare on the coordinator: one prepare per distinct
        // query, exactly like the sequential grouping path, so cache
        // statistics do not depend on the thread count.
        let mut by_word: HashMap<&Word, Arc<QueryPlan>> = HashMap::new();
        let plans: Vec<Arc<QueryPlan>> = requests
            .iter()
            .map(|(query, _)| {
                Arc::clone(
                    by_word
                        .entry(query.word())
                        .or_insert_with(|| self.prepare(query)),
                )
            })
            .collect();

        // Workers run each request's engine sequentially: batch-level
        // parallelism already saturates the budget, and nested scopes would
        // oversubscribe. Every other option (demand, kernels, checkpoint)
        // rides along unchanged — pinning the thread count must not reset
        // the session's engine configuration.
        let per_request = self.per_request_options();
        fan_out(requests.len(), threads, |i| {
            self.certain_planned_with(&plans[i], &requests[i].1, &per_request)
        })
    }

    /// Decides one query against every request of an [`InstanceFamily`]
    /// (request `i` denotes the full instance `prefix ∪ deltas[i]`),
    /// exploiting the shared prefix. Results are returned in request order
    /// and are **identical to fresh-loading every full instance** through
    /// [`CertaintySession::certain_batch`] — at every thread count.
    ///
    /// For queries the session routes to the Datalog NL back-end, the prefix
    /// is loaded and frozen into an `Arc`-shared copy-on-write base store
    /// *once* (its probe indexes are likewise built once, on the first
    /// request), and each request forks an O(delta) overlay — see
    /// [`cqa_datalog::store`]. Every other route evaluates on plain
    /// [`DatabaseInstance`]s, so those requests materialize `prefix ∪ delta`
    /// per request, exactly like the fresh-load path.
    ///
    /// With a resolved thread budget above one, requests fan out across
    /// scoped worker threads into preassigned result slots (engine runs
    /// pinned sequential, one level of parallelism at a time), sharing the
    /// frozen base by reference.
    pub fn certain_batch_family(
        &self,
        query: &PathQuery,
        family: &InstanceFamily,
    ) -> Vec<Result<bool, SolverError>> {
        let plan = self.prepare(query);
        if family.deltas().is_empty() {
            return Vec::new();
        }
        // The copy-on-write base is only worth building when the route
        // evaluates on relation stores (the generated Datalog program).
        let base = match &plan.nl {
            Some(NlPlan::Datalog(_)) => Some(edb_base_from_instance(family.prefix())),
            _ => None,
        };
        let requests: Vec<usize> = (0..family.len()).collect();
        self.family_requests(&plan, base.as_ref(), family, &requests, None)
    }

    /// Like [`CertaintySession::certain_batch_family`], but against a
    /// caller-held *resident* base store (frozen from the family's prefix
    /// with [`edb_base_from_instance`] once, kept across calls) and an
    /// explicit subset of request indexes. This is the serving entry point:
    /// `cqa-server` keeps one `Arc<BaseStore>` per resident tenant, so the
    /// prefix's committed probe indexes are built exactly once across *all*
    /// connections and queries, not once per batch.
    ///
    /// Answers are identical to materializing each selected request
    /// (`prefix ∪ deltas[i]`) through [`CertaintySession::certain_batch`] —
    /// the resident base only changes *where* the shared store lives, never
    /// what it contains.
    ///
    /// # Panics
    ///
    /// Panics if a request index is out of range; validate indexes at the
    /// boundary (the server replies with a typed error instead).
    pub fn certain_batch_family_resident(
        &self,
        query: &PathQuery,
        family: &InstanceFamily,
        base: &Arc<BaseStore>,
        requests: &[usize],
    ) -> Vec<Result<bool, SolverError>> {
        self.certain_batch_family_resident_counted(query, family, base, requests)
            .0
    }

    /// Like [`CertaintySession::certain_batch_family_resident`], additionally
    /// returning the number of tuples the Datalog engine derived for *this*
    /// batch. The session-wide [`SessionStats::demand`] counters aggregate
    /// across all tenants and queries; this per-batch figure is what lets
    /// `cqa-server` attribute derivation work to individual tenants. Routes
    /// that never run the Datalog engine (FO, direct NL, fixpoint, SAT)
    /// derive nothing and report zero.
    pub fn certain_batch_family_resident_counted(
        &self,
        query: &PathQuery,
        family: &InstanceFamily,
        base: &Arc<BaseStore>,
        requests: &[usize],
    ) -> (Vec<Result<bool, SolverError>>, u64) {
        let plan = self.prepare(query);
        // Only the Datalog NL route evaluates on relation stores; every
        // other route materializes, exactly like `certain_batch_family`.
        let base = match &plan.nl {
            Some(NlPlan::Datalog(_)) => Some(base),
            _ => None,
        };
        let derived = AtomicU64::new(0);
        let answers = self.family_requests(&plan, base, family, requests, Some(&derived));
        (answers, derived.into_inner())
    }

    /// Decides the selected family requests with an optional shared base,
    /// fanning out across the session's thread budget. Common driver of
    /// [`CertaintySession::certain_batch_family`] and
    /// [`CertaintySession::certain_batch_family_resident`].
    fn family_requests(
        &self,
        plan: &QueryPlan,
        base: Option<&Arc<BaseStore>>,
        family: &InstanceFamily,
        requests: &[usize],
        derived: Option<&AtomicU64>,
    ) -> Vec<Result<bool, SolverError>> {
        let deltas = family.deltas();
        let threads = self.options.threads.resolve().min(requests.len());
        if threads <= 1 {
            return requests
                .iter()
                .map(|&i| {
                    self.certain_family_request(
                        plan,
                        base,
                        family,
                        &deltas[i],
                        i,
                        &self.options,
                        derived,
                    )
                })
                .collect();
        }
        // Scoped fan-out with preassigned slots, exactly like
        // `certain_batch_parallel` (workers pin their engine runs
        // sequential — one level of parallelism at a time).
        let per_request = self.per_request_options();
        fan_out(requests.len(), threads, |slot| {
            self.certain_family_request(
                plan,
                base,
                family,
                &deltas[requests[slot]],
                requests[slot],
                &per_request,
                derived,
            )
        })
    }

    /// Decides one family request: the overlay fast path when a shared base
    /// exists for the plan, the materialized full instance otherwise. When a
    /// `derived` accumulator is supplied, the overlay arm adds the engine
    /// run's derived-tuple count to it (the only arm that runs the Datalog
    /// engine on this path — non-Datalog routes don't take the overlay arm
    /// and derive nothing). `slot` is the request's stable index within the
    /// family (its delta position), which keys the base's differentially
    /// maintained materialized IDB when the maintenance knob is on.
    #[allow(clippy::too_many_arguments)]
    fn certain_family_request(
        &self,
        plan: &QueryPlan,
        base: Option<&Arc<BaseStore>>,
        family: &InstanceFamily,
        delta: &DatabaseInstance,
        slot: usize,
        options: &EvalOptions,
        derived: Option<&AtomicU64>,
    ) -> Result<bool, SolverError> {
        match (base, &plan.nl) {
            (Some(base), Some(NlPlan::Datalog(cqa))) => {
                self.route_slot(plan.route).fetch_add(1, Ordering::Relaxed);
                let timer = cqa_obs::Stopwatch::start();
                let (answer, stats) = self.nl.certain_overlay_maintained(
                    cqa,
                    base,
                    family.prefix(),
                    delta,
                    slot,
                    options,
                )?;
                if let Some(counter) = derived {
                    counter.fetch_add(stats.tuples_derived, Ordering::Relaxed);
                }
                self.route_histogram(plan.route).record(timer.elapsed_ns());
                Ok(answer)
            }
            _ => {
                let full = family.prefix().union(delta);
                self.certain_planned_with(plan, &full, options)
            }
        }
    }

    /// The session's options with the engine pinned sequential — what each
    /// fan-out worker evaluates with (batch-level parallelism already
    /// saturates the thread budget; demand/kernels/checkpoint are preserved).
    fn per_request_options(&self) -> EvalOptions {
        EvalOptions {
            threads: Threads::Fixed(1),
            ..self.options
        }
    }

    /// The counter slot for a route, in [`RouteCounts`] field order.
    fn route_slot(&self, route: Route) -> &AtomicU64 {
        let i = match route {
            Route::FoRewriting => 0,
            Route::Nl(NlBackend::Direct) => 1,
            Route::Nl(NlBackend::Datalog) => 2,
            Route::PtimeFixpoint => 3,
            Route::ConpSat => 4,
        };
        &self.route_counts[i]
    }

    /// The service-time histogram for a route, in the same slot order as
    /// [`CertaintySession::route_slot`].
    fn route_histogram(&self, route: Route) -> &cqa_obs::Histogram {
        let i = match route {
            Route::FoRewriting => 0,
            Route::Nl(NlBackend::Direct) => 1,
            Route::Nl(NlBackend::Datalog) => 2,
            Route::PtimeFixpoint => 3,
            Route::ConpSat => 4,
        };
        &self.metrics.route_ns[i]
    }

    /// A point-in-time snapshot of the session's counters: plan-cache
    /// hits/misses, distinct queries prepared, and decided requests by
    /// route. Cheap — five relaxed atomic loads and one map-size read.
    pub fn stats(&self) -> SessionStats {
        let load = |i: usize| self.route_counts[i].load(Ordering::Relaxed);
        SessionStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            queries_prepared: self.plans.lock().expect("session lock").len(),
            routes: RouteCounts {
                fo_rewriting: load(0),
                nl_direct: load(1),
                nl_datalog: load(2),
                ptime_fixpoint: load(3),
                conp_sat: load(4),
            },
            demand: self.nl.demand_counts(),
        }
    }
}

/// Decides requests `0..n` across `threads` scoped workers in contiguous
/// chunks, writing into preassigned slots — request order (and therefore the
/// answer bitmap) is independent of scheduling and thread count. Shared by
/// the request-batch and family-batch fan-outs so the two paths cannot
/// drift apart.
fn fan_out(
    n: usize,
    threads: usize,
    decide: impl Fn(usize) -> Result<bool, SolverError> + Sync,
) -> Vec<Result<bool, SolverError>> {
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<Result<bool, SolverError>>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (chunk_index, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let decide = &decide;
            scope.spawn(move || {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = Some(decide(chunk_index * chunk + offset));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every request chunked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;
    use cqa_workloads::random::LayeredConfig;

    fn layered(word: &str, width: usize, seed: u64) -> DatabaseInstance {
        let q = PathQuery::parse(word).unwrap();
        LayeredConfig::for_word(q.word(), width, seed).generate()
    }

    #[test]
    fn session_routes_match_the_tetrachotomy() {
        let session = CertaintySession::new();
        assert_eq!(
            session.route(&PathQuery::parse("RXRX").unwrap()),
            Route::FoRewriting
        );
        assert_eq!(
            session.route(&PathQuery::parse("RXRY").unwrap()),
            Route::Nl(NlBackend::Direct)
        );
        assert_eq!(
            session.route(&PathQuery::parse("RXRYRY").unwrap()),
            Route::PtimeFixpoint
        );
        assert_eq!(
            session.route(&PathQuery::parse("RXRXRYRY").unwrap()),
            Route::ConpSat
        );
        let datalog = CertaintySession::with_datalog_nl();
        assert_eq!(
            datalog.route(&PathQuery::parse("RXRY").unwrap()),
            Route::Nl(NlBackend::Datalog)
        );
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let session = CertaintySession::with_datalog_nl();
        let q = PathQuery::parse("RXRY").unwrap();
        for seed in 0..5u64 {
            let db = layered("RXRY", 4, seed);
            session.certain(&q, &db).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.queries_prepared, 1);
        // All five requests were decided on the Datalog NL route.
        assert_eq!(stats.routes.nl_datalog, 5);
        assert_eq!(stats.routes.total(), 5);
        assert_eq!(stats.routes.of(Route::Nl(NlBackend::Datalog)), 5);
    }

    #[test]
    fn batch_results_agree_with_per_call_dispatch_and_keep_order() {
        let words = ["RXRX", "RXRY", "RRX", "RXRYRY"];
        let mut requests: Vec<(PathQuery, DatabaseInstance)> = Vec::new();
        for (i, word) in words.iter().cycle().take(20).enumerate() {
            let q = PathQuery::parse(word).unwrap();
            requests.push((q, layered(word, 3, 0xBA7C + i as u64)));
        }
        let session = CertaintySession::with_datalog_nl();
        let batch = session.certain_batch(&requests);
        assert_eq!(batch.len(), requests.len());
        // Each distinct query is prepared exactly once, and every request
        // shows up in the route counts.
        assert_eq!(session.stats().queries_prepared, words.len());
        assert_eq!(session.stats().routes.total(), requests.len() as u64);
        let naive = NaiveSolver::with_limit(1 << 16);
        for (i, (q, db)) in requests.iter().enumerate() {
            let got = batch[i].as_ref().unwrap();
            let fresh = CertaintySession::new().certain(q, db).unwrap();
            assert_eq!(*got, fresh, "batch/per-call mismatch at {i} ({q})");
            if db.repair_count() <= 1 << 16 {
                assert_eq!(
                    *got,
                    naive.certain(q, db).unwrap(),
                    "oracle mismatch at {i} ({q})"
                );
            }
        }
    }

    #[test]
    fn family_batches_match_materialized_batches_on_every_route() {
        // One family, four queries spanning FO / NL-datalog / PTIME routes:
        // the shared-prefix path must produce exactly the answers of the
        // materialized fresh-load path, for both the COW-backed Datalog
        // route and the materializing fallback.
        use cqa_db::family::InstanceFamily;
        let prefix = layered("RXRY", 4, 0xFA81);
        let deltas: Vec<DatabaseInstance> =
            (0..6u64).map(|i| layered("RXRY", 2, 0xDE17A + i)).collect();
        let family = InstanceFamily::with_deltas(prefix, deltas);
        for word in ["RXRX", "RRX", "RXRY", "RXRYRY"] {
            let q = PathQuery::parse(word).unwrap();
            let session = CertaintySession::with_datalog_nl();
            let shared = session.certain_batch_family(&q, &family);
            let requests: Vec<(PathQuery, DatabaseInstance)> = (0..family.len())
                .map(|i| (q.clone(), family.materialize(i)))
                .collect();
            let materialized = session.certain_batch(&requests);
            assert_eq!(shared.len(), materialized.len());
            for (i, (s, m)) in shared.iter().zip(&materialized).enumerate() {
                assert_eq!(
                    s.as_ref().unwrap(),
                    m.as_ref().unwrap(),
                    "family/materialized mismatch for {word} at request {i}"
                );
            }
            // The resident-base entry point answers identically, both for
            // the full request set and for an arbitrary subset, and reuses
            // the caller's base across calls (builds don't grow on repeats).
            let base = edb_base_from_instance(family.prefix());
            let all: Vec<usize> = (0..family.len()).collect();
            let resident = session.certain_batch_family_resident(&q, &family, &base, &all);
            for (i, (s, r)) in shared.iter().zip(&resident).enumerate() {
                assert_eq!(
                    s.as_ref().unwrap(),
                    r.as_ref().unwrap(),
                    "family/resident mismatch for {word} at request {i}"
                );
            }
            let subset = [4usize, 1, 1, 5];
            let picked = session.certain_batch_family_resident(&q, &family, &base, &subset);
            for (slot, &i) in subset.iter().enumerate() {
                assert_eq!(
                    picked[slot].as_ref().unwrap(),
                    shared[i].as_ref().unwrap(),
                    "subset/resident mismatch for {word} at request {i}"
                );
            }
            let builds = base.index_builds();
            session.certain_batch_family_resident(&q, &family, &base, &all);
            assert_eq!(base.index_builds(), builds, "resident base was rebuilt");
        }
    }

    #[test]
    fn empty_families_yield_empty_batches() {
        use cqa_db::family::InstanceFamily;
        let session = CertaintySession::with_datalog_nl();
        let family = InstanceFamily::new(layered("RRX", 3, 1));
        assert!(session
            .certain_batch_family(&PathQuery::parse("RRX").unwrap(), &family)
            .is_empty());
    }

    #[test]
    fn sessions_share_nl_artifacts_across_backends() {
        // Both backends agree on an NL query through the session path.
        let q = PathQuery::parse("RRX").unwrap();
        let direct = CertaintySession::new();
        let datalog = CertaintySession::with_datalog_nl();
        for seed in 0..6u64 {
            let db = layered("RRX", 4, 0x5E55 + seed);
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                datalog.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }
}
