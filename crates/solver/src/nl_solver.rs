//! The NL solver (Lemma 14): for path queries satisfying C2, `CERTAINTY(q)`
//! is decided through the predicates `P` and `O` over the strict B2b
//! decomposition `q = s (uv)^(k-1) w v`.
//!
//! Two interchangeable back-ends are provided:
//!
//! * a **direct** implementation that computes the terminal sets with the
//!   first-order rewriting tables and the predicate `P` with plain graph
//!   reachability (this mirrors how an NL machine would evaluate the linear
//!   Datalog program); and
//! * a **Datalog** back-end that generates the linear program of
//!   [`cqa_datalog::cqa_program`] and runs it on the semi-naive engine.
//!
//! Queries whose strict decomposition cannot be found (or is degenerate) are
//! transparently delegated to the PTIME fixpoint algorithm, which is correct
//! for every C2 query because C2 ⊆ C3; the fallback is recorded in the
//! solver's name-independent `FallbackStats`.
//!
//! Every per-query artifact — the strict decomposition, the generated (and
//! compiled) linear Datalog program, or the fallback `S-NFA` family — is
//! captured in an [`NlPlan`] that the solver caches per query word, so
//! deciding many instances of the same query pays the preparation cost once
//! (see also [`crate::session::CertaintySession`], which batches on top of
//! this).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cqa_automata::query_nfa::QueryNfa;
use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_core::regex_forms::{b2b_strict_decomposition, B2bDecomposition};
use cqa_core::word::Word;
use cqa_datalog::cqa_program::{generate_program_with_options, CqaProgram};
use cqa_datalog::maintain::MaintainVerdict;
use cqa_datalog::parallel::{EvalOptions, EvalStats};
use cqa_datalog::plan_cache::PlanCache;
use cqa_datalog::store::{edb_from_instance, edb_overlay_on, BaseStore};
use cqa_db::fact::Constant;
use cqa_db::instance::DatabaseInstance;
use cqa_db::path::{consistent_path_endpoints, reachable_by_trace};
use cqa_fo::rewriting::{CertainRootedTable, EndCap};

use crate::error::SolverError;
use crate::fixpoint::compute_fixpoint_with_nfa;
use crate::traits::CertaintySolver;

/// Which back-end evaluates the `O` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NlBackend {
    /// Direct graph-reachability evaluation.
    Direct,
    /// Generate and run the linear Datalog program.
    Datalog,
}

/// Counters describing how often the solver had to fall back to the fixpoint
/// algorithm.
#[derive(Debug, Default)]
pub struct FallbackStats {
    fixpoint_fallbacks: AtomicU64,
    decompositions_used: AtomicU64,
}

impl FallbackStats {
    /// Number of queries delegated to the PTIME fixpoint algorithm.
    pub fn fixpoint_fallbacks(&self) -> u64 {
        self.fixpoint_fallbacks.load(Ordering::Relaxed)
    }

    /// Number of queries solved through a strict B2b decomposition.
    pub fn decompositions_used(&self) -> u64 {
        self.decompositions_used.load(Ordering::Relaxed)
    }
}

/// Cumulative demand/derivation counters over every Datalog-engine run a
/// solver performed (the direct and fixpoint routes never touch the engine,
/// so they contribute nothing). `rules_pruned`/`predicates_pruned` sum the
/// per-request [`cqa_datalog::demand::DemandReport`] of the plan that served
/// each request — a rate, not a program property — so "work avoided" stays
/// proportional to traffic, like every other counter in the stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandCounts {
    /// Rules the demand transformation had removed from served plans.
    pub rules_pruned: u64,
    /// IDB predicates eliminated from served plans.
    pub predicates_pruned: u64,
    /// Tuples the engine actually derived (semi-naive inserts, EDB loads
    /// excluded).
    pub tuples_derived: u64,
    /// Rules served through a shape-specialized kernel, summed per run.
    pub kernel_rules: u64,
    /// Rules served through the generic hash-join plan, summed per run.
    pub generic_rules: u64,
    /// Individual kernel executions (per rule, per semi-naive round).
    pub kernel_invocations: u64,
    /// Strata resumed from a checkpointed base instead of re-derived from
    /// scratch, summed per run (see
    /// [`cqa_datalog::parallel::EvalStats::checkpoint_hits`]).
    pub checkpoint_hits: u64,
    /// Requests answered from a differentially maintained materialized IDB
    /// (pure hits and O(change) maintenance passes; see
    /// [`cqa_datalog::parallel::EvalStats::maintained_hits`]).
    pub maintained_hits: u64,
    /// Tuples maintenance passes physically removed (DRed overdeletion +
    /// counting-stratum count-to-zero deletions).
    pub tuples_overdeleted: u64,
    /// Tuples the DRed rederivation phase restored after overdeletion.
    pub tuples_rederived: u64,
}

/// Interior-mutable accumulator behind [`DemandCounts`].
#[derive(Debug, Default)]
struct DemandCounters {
    rules_pruned: AtomicU64,
    predicates_pruned: AtomicU64,
    tuples_derived: AtomicU64,
    kernel_rules: AtomicU64,
    generic_rules: AtomicU64,
    kernel_invocations: AtomicU64,
    checkpoint_hits: AtomicU64,
    maintained_hits: AtomicU64,
    tuples_overdeleted: AtomicU64,
    tuples_rederived: AtomicU64,
}

/// A query's prepared NL evaluation artifacts, shareable across instances
/// (and across threads: every payload is behind an `Arc`).
#[derive(Debug, Clone)]
pub enum NlPlan {
    /// Evaluate `P`/`O` by direct graph reachability over the decomposition.
    Direct(Arc<B2bDecomposition>),
    /// Run the generated linear Datalog program (compiled once, shared
    /// through the engine's plan cache).
    Datalog(Arc<CqaProgram>),
    /// No usable strict decomposition: fixpoint fallback over a shared
    /// automaton.
    Fixpoint(Arc<QueryNfa>),
}

/// The NL solver.
#[derive(Debug)]
pub struct NlSolver {
    backend: NlBackend,
    strict: bool,
    stats: FallbackStats,
    demand: DemandCounters,
    plans: Mutex<HashMap<Word, NlPlan>>,
    options: EvalOptions,
}

impl Default for NlSolver {
    fn default() -> NlSolver {
        NlSolver::direct()
    }
}

impl NlSolver {
    fn with_mode(backend: NlBackend, strict: bool) -> NlSolver {
        NlSolver {
            backend,
            strict,
            stats: FallbackStats::default(),
            demand: DemandCounters::default(),
            plans: Mutex::new(HashMap::new()),
            options: EvalOptions::default(),
        }
    }

    /// Creates the solver with the direct (graph-reachability) back-end.
    pub fn direct() -> NlSolver {
        NlSolver::with_mode(NlBackend::Direct, true)
    }

    /// Creates the solver with the Datalog back-end.
    pub fn datalog() -> NlSolver {
        NlSolver::with_mode(NlBackend::Datalog, true)
    }

    /// Creates a non-strict solver that accepts any C3 query (falling back to
    /// the fixpoint algorithm when no decomposition applies).
    pub fn lenient(backend: NlBackend) -> NlSolver {
        NlSolver::with_mode(backend, false)
    }

    /// Creates a non-strict solver with explicit engine evaluation options
    /// (thread count for the Datalog back-end's stratum rounds).
    pub fn lenient_with_options(backend: NlBackend, options: EvalOptions) -> NlSolver {
        NlSolver {
            options,
            ..NlSolver::with_mode(backend, false)
        }
    }

    /// Fallback statistics.
    pub fn stats(&self) -> &FallbackStats {
        &self.stats
    }

    /// A snapshot of the cumulative demand/derivation counters.
    pub fn demand_counts(&self) -> DemandCounts {
        DemandCounts {
            rules_pruned: self.demand.rules_pruned.load(Ordering::Relaxed),
            predicates_pruned: self.demand.predicates_pruned.load(Ordering::Relaxed),
            tuples_derived: self.demand.tuples_derived.load(Ordering::Relaxed),
            kernel_rules: self.demand.kernel_rules.load(Ordering::Relaxed),
            generic_rules: self.demand.generic_rules.load(Ordering::Relaxed),
            kernel_invocations: self.demand.kernel_invocations.load(Ordering::Relaxed),
            checkpoint_hits: self.demand.checkpoint_hits.load(Ordering::Relaxed),
            maintained_hits: self.demand.maintained_hits.load(Ordering::Relaxed),
            tuples_overdeleted: self.demand.tuples_overdeleted.load(Ordering::Relaxed),
            tuples_rederived: self.demand.tuples_rederived.load(Ordering::Relaxed),
        }
    }

    /// Folds one engine run into the cumulative counters.
    fn record_engine(&self, cqa: &CqaProgram, stats: &EvalStats) {
        self.demand
            .rules_pruned
            .fetch_add(cqa.demand.rules_pruned, Ordering::Relaxed);
        self.demand
            .predicates_pruned
            .fetch_add(cqa.demand.predicates_pruned, Ordering::Relaxed);
        self.demand
            .tuples_derived
            .fetch_add(stats.tuples_derived, Ordering::Relaxed);
        self.demand
            .kernel_rules
            .fetch_add(stats.kernel_rules, Ordering::Relaxed);
        self.demand
            .generic_rules
            .fetch_add(stats.generic_rules, Ordering::Relaxed);
        self.demand
            .kernel_invocations
            .fetch_add(stats.kernel_invocations, Ordering::Relaxed);
        self.demand
            .checkpoint_hits
            .fetch_add(stats.checkpoint_hits, Ordering::Relaxed);
        self.demand
            .maintained_hits
            .fetch_add(stats.maintained_hits, Ordering::Relaxed);
        self.demand
            .tuples_overdeleted
            .fetch_add(stats.tuples_overdeleted, Ordering::Relaxed);
        self.demand
            .tuples_rederived
            .fetch_add(stats.tuples_rederived, Ordering::Relaxed);
    }

    /// Prepares (or fetches the cached) per-query plan: the strict B2b
    /// decomposition and, depending on the back-end, the generated + compiled
    /// Datalog program, or the fallback automaton. Class checks are *not*
    /// performed here; [`NlSolver::certain`] applies them first.
    pub fn prepare(&self, query: &PathQuery) -> NlPlan {
        if let Some(plan) = self.plans.lock().expect("plan lock").get(query.word()) {
            return plan.clone();
        }
        let plan = match b2b_strict_decomposition(query.word()) {
            Some(dec) if !dec.uv().is_empty() => match self.backend {
                NlBackend::Direct => NlPlan::Direct(Arc::new(dec)),
                NlBackend::Datalog => match generate_program_with_options(
                    &dec,
                    query.word(),
                    PlanCache::global(),
                    self.options.demand,
                ) {
                    Some(cqa) => NlPlan::Datalog(Arc::new(cqa)),
                    None => NlPlan::Fixpoint(Arc::new(QueryNfa::new(query))),
                },
            },
            _ => NlPlan::Fixpoint(Arc::new(QueryNfa::new(query))),
        };
        self.plans
            .lock()
            .expect("plan lock")
            .entry(query.word().clone())
            .or_insert(plan)
            .clone()
    }

    /// Decides one instance with a prepared plan, updating the fallback
    /// statistics.
    pub fn certain_prepared(
        &self,
        plan: &NlPlan,
        db: &DatabaseInstance,
    ) -> Result<bool, SolverError> {
        self.certain_prepared_with(plan, db, &self.options)
    }

    /// Like [`NlSolver::certain_prepared`], but with caller-supplied engine
    /// options. The batched session driver uses this to force sequential
    /// engine runs inside its own worker threads (one level of parallelism
    /// at a time).
    pub fn certain_prepared_with(
        &self,
        plan: &NlPlan,
        db: &DatabaseInstance,
        options: &EvalOptions,
    ) -> Result<bool, SolverError> {
        match plan {
            NlPlan::Direct(dec) => {
                self.stats
                    .decompositions_used
                    .fetch_add(1, Ordering::Relaxed);
                Ok(certain_direct(dec, db))
            }
            NlPlan::Datalog(cqa) => {
                self.stats
                    .decompositions_used
                    .fetch_add(1, Ordering::Relaxed);
                let (answer, stats) = certain_datalog(cqa, db, options)?;
                self.record_engine(cqa, &stats);
                Ok(answer)
            }
            NlPlan::Fixpoint(nfa) => {
                self.stats
                    .fixpoint_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                Ok(!compute_fixpoint_with_nfa(nfa, db)
                    .certain_start_vertices()
                    .is_empty())
            }
        }
    }

    /// Decides one shared-prefix family request with a prepared Datalog plan
    /// through the copy-on-write store path (base forked, only the delta
    /// loaded), updating the fallback statistics exactly like the fresh-load
    /// path. The family batch driver
    /// (`cqa_solver::session::CertaintySession::certain_batch_family`) calls
    /// this for Datalog-backed NL plans and materializes full instances for
    /// every other route.
    pub fn certain_overlay_with(
        &self,
        cqa: &CqaProgram,
        base: &Arc<BaseStore>,
        prefix: &DatabaseInstance,
        delta: &DatabaseInstance,
        options: &EvalOptions,
    ) -> Result<bool, SolverError> {
        self.certain_overlay_counted(cqa, base, prefix, delta, options)
            .map(|(answer, _)| answer)
    }

    /// Like [`NlSolver::certain_overlay_with`], additionally handing back the
    /// engine run's [`EvalStats`] so callers (the session's counted family
    /// batches, and through them the server's per-tenant `STATS`) can
    /// attribute derived-tuple counts without racing on the solver-wide
    /// cumulative counters.
    pub fn certain_overlay_counted(
        &self,
        cqa: &CqaProgram,
        base: &Arc<BaseStore>,
        prefix: &DatabaseInstance,
        delta: &DatabaseInstance,
        options: &EvalOptions,
    ) -> Result<(bool, EvalStats), SolverError> {
        self.stats
            .decompositions_used
            .fetch_add(1, Ordering::Relaxed);
        let (answer, stats) = certain_datalog_overlay(cqa, base, prefix, delta, options)?;
        self.record_engine(cqa, &stats);
        Ok((answer, stats))
    }

    /// Like [`NlSolver::certain_overlay_counted`], with a stable per-request
    /// `slot` identifying this request's position within its family, so the
    /// answer can come from a differentially maintained materialized IDB
    /// resident on `base` (see [`cqa_datalog::maintain`]).
    ///
    /// When the maintenance knob resolves off, this is exactly the counted
    /// overlay path. Otherwise the `(compiled plan, slot)` maintained store
    /// on the base is updated in O(change) via counting/DRed passes and the
    /// certainty answer is read straight from it; the first visit (and any
    /// mutation whose change ratio makes maintenance unprofitable, unless
    /// the knob forces it) derives from scratch through the checkpoint-aware
    /// path and installs the fixpoint as the slot's new maintained state.
    pub fn certain_overlay_maintained(
        &self,
        cqa: &CqaProgram,
        base: &Arc<BaseStore>,
        prefix: &DatabaseInstance,
        delta: &DatabaseInstance,
        slot: usize,
        options: &EvalOptions,
    ) -> Result<(bool, EvalStats), SolverError> {
        if !options.maintain.resolve() {
            return self.certain_overlay_counted(cqa, base, prefix, delta, options);
        }
        self.stats
            .decompositions_used
            .fetch_add(1, Ordering::Relaxed);
        let key = Arc::as_ptr(&cqa.compiled) as usize;
        let entry = base.maintained_slot((key, slot));
        let mut guard = entry.state.lock().expect("maintained slot lock");
        let force = !options.maintain.fallback_allowed();
        if let Some(state) = guard.as_mut() {
            let mut stats = EvalStats {
                threads: 1,
                ..EvalStats::default()
            };
            match cqa_datalog::maintain::maintain(
                &cqa.compiled,
                state,
                prefix,
                delta,
                force,
                &mut stats,
            ) {
                MaintainVerdict::PureHit | MaintainVerdict::Maintained => {
                    entry
                        .tuples
                        .store(state.total_tuples() as u64, Ordering::Relaxed);
                    let adom = prefix.adom().iter().chain(delta.adom().iter()).copied();
                    let answer = o_fails_somewhere(cqa, state.store(), adom)?;
                    self.record_engine(cqa, &stats);
                    return Ok((answer, stats));
                }
                MaintainVerdict::Unprofitable => {}
            }
        }
        // First visit, or unprofitable change ratio: derive from scratch
        // (checkpoint-aware) and install the fixpoint as the slot's state.
        let (store, stats) = overlay_fixpoint(cqa, base, delta, options);
        let adom = prefix.adom().iter().chain(delta.adom().iter()).copied();
        let answer = o_fails_somewhere(cqa, &store, adom)?;
        let state = cqa_datalog::maintain::bootstrap(&cqa.compiled, &store, delta);
        entry
            .tuples
            .store(state.total_tuples() as u64, Ordering::Relaxed);
        *guard = Some(state);
        self.record_engine(cqa, &stats);
        Ok((answer, stats))
    }
}

/// Evaluates the predicate `O` directly and applies Claim 4:
/// the instance is certain iff `O(c)` fails for some constant.
pub(crate) fn certain_direct(dec: &B2bDecomposition, db: &DatabaseInstance) -> bool {
    let uv = dec.uv();
    let wv = dec.wv();
    let spine = dec.spine();

    // Terminal sets via the rooted-rewriting tables (Lemma 17).
    let uv_table = CertainRootedTable::compute(db, &uv, EndCap::Open);
    let wv_table = CertainRootedTable::compute(db, &wv, EndCap::Open);
    let spine_table = CertainRootedTable::compute(db, &spine, EndCap::Open);
    let uv_terminal: BTreeSet<Constant> = db
        .adom()
        .iter()
        .copied()
        .filter(|&c| !uv_table.certain_from(c))
        .collect();
    let wv_terminal: BTreeSet<Constant> = db
        .adom()
        .iter()
        .copied()
        .filter(|&c| !wv_table.certain_from(c))
        .collect();
    let spine_terminal: BTreeSet<Constant> = db
        .adom()
        .iter()
        .copied()
        .filter(|&c| !spine_table.certain_from(c))
        .collect();

    // The uv-step graph restricted to wv-terminal vertices.
    let mut edges: BTreeMap<Constant, BTreeSet<Constant>> = BTreeMap::new();
    for &d in &wv_terminal {
        let successors: BTreeSet<Constant> = reachable_by_trace(db, d, &uv)
            .into_iter()
            .filter(|t| wv_terminal.contains(t))
            .collect();
        if !successors.is_empty() {
            edges.insert(d, successors);
        }
    }

    // Vertices lying on a cycle of the uv-step graph.
    let on_cycle: BTreeSet<Constant> = wv_terminal
        .iter()
        .copied()
        .filter(|&v| {
            // v lies on a cycle iff v is reachable from one of its
            // successors.
            edges
                .get(&v)
                .is_some_and(|succs| succs.iter().any(|&s| reaches(&edges, s, v)))
        })
        .collect();

    // P(d): d is wv-terminal and reaches (reflexively) a vertex that is
    // uv-terminal, or reaches a vertex on a cycle.
    let targets: BTreeSet<Constant> = wv_terminal
        .iter()
        .copied()
        .filter(|c| uv_terminal.contains(c) || on_cycle.contains(c))
        .collect();
    let p_set: BTreeSet<Constant> = wv_terminal
        .iter()
        .copied()
        .filter(|&d| targets.contains(&d) || targets.iter().any(|&t| reaches(&edges, d, t)))
        .collect();

    // O(c): spine-terminal, or a consistent spine path reaches P.
    let o = |c: Constant| -> bool {
        if spine_terminal.contains(&c) {
            return true;
        }
        consistent_path_endpoints(db, c, &spine)
            .into_iter()
            .any(|d| p_set.contains(&d))
    };

    // Claim 4: "no"-instance iff O(c) holds for every c.
    db.adom().iter().any(|&c| !o(c))
}

/// Evaluates the generated (pre-compiled) Datalog program and applies
/// Claim 4, reporting the engine run's statistics alongside the answer.
pub(crate) fn certain_datalog(
    cqa: &CqaProgram,
    db: &DatabaseInstance,
    options: &EvalOptions,
) -> Result<(bool, EvalStats), SolverError> {
    let (store, stats) = cqa
        .compiled
        .run_on_store_with_stats(edb_from_instance(db), options);
    Ok((
        o_fails_somewhere(cqa, &store, db.adom().iter().copied())?,
        stats,
    ))
}

/// Decides one shared-prefix family request through the copy-on-write store
/// path: fork an overlay of the frozen base EDB (the prefix, loaded and
/// index-committed once per family), insert only the delta instance, and run
/// the pre-compiled program on the layered store. The answer is identical to
/// fresh-loading `prefix ∪ delta`, because the layered EDB holds exactly the
/// union's fact sets and semi-naive evaluation reaches the same unique
/// fixpoint on set-equal EDBs.
pub(crate) fn certain_datalog_overlay(
    cqa: &CqaProgram,
    base: &Arc<BaseStore>,
    prefix: &DatabaseInstance,
    delta: &DatabaseInstance,
    options: &EvalOptions,
) -> Result<(bool, EvalStats), SolverError> {
    let (store, stats) = overlay_fixpoint(cqa, base, delta, options);
    // adom(prefix ∪ delta) = adom(prefix) ∪ adom(delta); the overlap is
    // checked twice, which is harmless for an `any`.
    let adom = prefix.adom().iter().chain(delta.adom().iter()).copied();
    Ok((o_fails_somewhere(cqa, &store, adom)?, stats))
}

/// Derives the full fixpoint store for one overlay request.
///
/// Checkpointed resumption: when enabled and the program has checkpointable
/// strata, evaluate on (an overlay over) the base's checkpointed variant —
/// the prefix-determined part of those strata was pre-derived into it once
/// per (base, program) — and resume semi-naive with the delta as the initial
/// overlay. Keying by the compiled plan's address is sound because plans are
/// shared through the process-wide `PlanCache` (same program + demand mode ⇒
/// same `Arc`, for the life of the process).
fn overlay_fixpoint(
    cqa: &CqaProgram,
    base: &Arc<BaseStore>,
    delta: &DatabaseInstance,
    options: &EvalOptions,
) -> (cqa_datalog::engine::RelationStore, EvalStats) {
    let timer = cqa_obs::Stopwatch::start();
    let (store, stats) = if options.checkpoint.resolve() && cqa.compiled.has_checkpointable_strata()
    {
        let key = Arc::as_ptr(&cqa.compiled) as usize;
        let checkpointed = base.checkpoint(key, |raw| cqa.compiled.checkpoint_base(raw));
        cqa.compiled
            .resume_on_store_with_stats(edb_overlay_on(&checkpointed, delta), options)
    } else {
        cqa.compiled
            .run_on_store_with_stats(edb_overlay_on(base, delta), options)
    };
    // The resumed path still derives from scratch for non-checkpointable
    // strata; classify the whole request by whether any stratum resumed.
    let span = if stats.checkpoint_hits > 0 {
        cqa_obs::Span::CheckpointResume
    } else {
        cqa_obs::Span::ScratchDerive
    };
    cqa_obs::record_span(span, timer.elapsed_ns());
    (store, stats)
}

/// Claim 4 over an evaluated store: the instance is certain iff `o(c)` fails
/// for some constant of the active domain. Membership goes through the
/// store's borrowed [`cqa_datalog::store::UnaryView`] — O(1) per constant,
/// no per-call set materialization.
fn o_fails_somewhere(
    cqa: &CqaProgram,
    store: &cqa_datalog::engine::RelationStore,
    mut adom: impl Iterator<Item = Constant>,
) -> Result<bool, SolverError> {
    let timer = cqa_obs::trace_enabled().then(cqa_obs::Stopwatch::start);
    let o_holds = store
        .unary(cqa.o)
        .map_err(|e| SolverError::ResourceLimit(format!("datalog engine error: {e}")))?;
    let answer = adom.any(|c| !o_holds.contains(c.symbol()));
    if let Some(timer) = timer {
        cqa_obs::record_span(cqa_obs::Span::AnswerScan, timer.elapsed_ns());
    }
    Ok(answer)
}

/// Reflexivity is *not* included: `reaches(edges, a, b)` is true iff there is
/// a path of length ≥ 1 from `a` to `b`, or `a == b` and ... no: plain BFS
/// from `a`'s successors, so `a == b` requires a genuine cycle. Callers add
/// the reflexive case explicitly where the definition needs it.
fn reaches(edges: &BTreeMap<Constant, BTreeSet<Constant>>, from: Constant, to: Constant) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if let Some(succs) = edges.get(&v) {
            for &s in succs {
                if s == to {
                    return true;
                }
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
    }
    false
}

impl CertaintySolver for NlSolver {
    fn name(&self) -> &'static str {
        match self.backend {
            NlBackend::Direct => "nl-direct",
            NlBackend::Datalog => "nl-datalog",
        }
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        let class = classify(query).class;
        if self.strict && !matches!(class, ComplexityClass::FO | ComplexityClass::NlComplete) {
            return Err(SolverError::NotApplicable {
                solver: "nl".into(),
                reason: format!("query {query} violates C2"),
            });
        }
        if !self.strict && class == ComplexityClass::CoNpComplete {
            return Err(SolverError::NotApplicable {
                solver: "nl".into(),
                reason: format!("query {query} violates C3"),
            });
        }
        let plan = self.prepare(query);
        self.certain_prepared(&plan, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
        }
        db
    }

    #[test]
    fn both_backends_agree_with_oracle_on_rrx() {
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let datalog = NlSolver::datalog();
        let q = PathQuery::parse("RRX").unwrap();
        for seed in 1..=40u64 {
            let db = random_db(seed * 7919, &["R", "X"], 6, 4 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            let expected = naive.certain(&q, &db).unwrap();
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                expected,
                "direct, seed {seed}"
            );
            assert_eq!(
                datalog.certain(&q, &db).unwrap(),
                expected,
                "datalog, seed {seed}"
            );
        }
        assert!(direct.stats().decompositions_used() > 0);
    }

    #[test]
    fn both_backends_agree_with_oracle_on_rxry() {
        // RXRY is the paper's canonical NL-complete query (Example 3).
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let datalog = NlSolver::datalog();
        let q = PathQuery::parse("RXRY").unwrap();
        for seed in 1..=40u64 {
            let db = random_db(seed * 104729, &["R", "X", "Y"], 5, 5 + seed % 9);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            let expected = naive.certain(&q, &db).unwrap();
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                expected,
                "direct, seed {seed}"
            );
            assert_eq!(
                datalog.certain(&q, &db).unwrap(),
                expected,
                "datalog, seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_oracle_on_uvuvwv() {
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let q = PathQuery::parse("UVUVWV").unwrap();
        for seed in 1..=30u64 {
            let db = random_db(seed * 31337, &["U", "V", "W"], 5, 5 + seed % 10);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn figure_2_is_certain_for_rrx() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        assert!(NlSolver::direct()
            .certain(&PathQuery::parse("RRX").unwrap(), &db)
            .unwrap());
        assert!(NlSolver::datalog()
            .certain(&PathQuery::parse("RRX").unwrap(), &db)
            .unwrap());
    }

    #[test]
    fn strict_mode_rejects_ptime_and_conp_queries() {
        let db = DatabaseInstance::new();
        let solver = NlSolver::direct();
        for word in ["RXRYRY", "RXRXRYRY"] {
            let q = PathQuery::parse(word).unwrap();
            assert!(matches!(
                solver.certain(&q, &db),
                Err(SolverError::NotApplicable { .. })
            ));
        }
        // Lenient mode accepts the PTIME query (via fallback) but not coNP.
        let lenient = NlSolver::lenient(NlBackend::Direct);
        assert!(lenient
            .certain(&PathQuery::parse("RXRYRY").unwrap(), &db)
            .is_ok());
        assert!(lenient
            .certain(&PathQuery::parse("RXRXRYRY").unwrap(), &db)
            .is_err());
    }

    #[test]
    fn fo_class_queries_are_accepted_too() {
        // FO ⊆ NL: the solver should also handle C1 queries like RXRX.
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let q = PathQuery::parse("RXRX").unwrap();
        for seed in 1..=25u64 {
            let db = random_db(seed * 65537, &["R", "X"], 5, 4 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }
}
