//! The NL solver (Lemma 14): for path queries satisfying C2, `CERTAINTY(q)`
//! is decided through the predicates `P` and `O` over the strict B2b
//! decomposition `q = s (uv)^(k-1) w v`.
//!
//! Two interchangeable back-ends are provided:
//!
//! * a **direct** implementation that computes the terminal sets with the
//!   first-order rewriting tables and the predicate `P` with plain graph
//!   reachability (this mirrors how an NL machine would evaluate the linear
//!   Datalog program); and
//! * a **Datalog** back-end that generates the linear program of
//!   [`cqa_datalog::cqa_program`] and runs it on the semi-naive engine.
//!
//! Queries whose strict decomposition cannot be found (or is degenerate) are
//! transparently delegated to the PTIME fixpoint algorithm, which is correct
//! for every C2 query because C2 ⊆ C3; the fallback is recorded in the
//! solver's name-independent `FallbackStats`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use cqa_core::classify::{classify, ComplexityClass};
use cqa_core::query::PathQuery;
use cqa_core::regex_forms::{b2b_strict_decomposition, B2bDecomposition};
use cqa_datalog::cqa_program::generate_program;
use cqa_datalog::engine::Evaluator;
use cqa_db::fact::Constant;
use cqa_db::instance::DatabaseInstance;
use cqa_db::path::{consistent_path_endpoints, reachable_by_trace};
use cqa_fo::rewriting::{CertainRootedTable, EndCap};

use crate::error::SolverError;
use crate::fixpoint::FixpointSolver;
use crate::traits::CertaintySolver;

/// Which back-end evaluates the `O` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlBackend {
    /// Direct graph-reachability evaluation.
    Direct,
    /// Generate and run the linear Datalog program.
    Datalog,
}

/// Counters describing how often the solver had to fall back to the fixpoint
/// algorithm.
#[derive(Debug, Default)]
pub struct FallbackStats {
    fixpoint_fallbacks: AtomicU64,
    decompositions_used: AtomicU64,
}

impl FallbackStats {
    /// Number of queries delegated to the PTIME fixpoint algorithm.
    pub fn fixpoint_fallbacks(&self) -> u64 {
        self.fixpoint_fallbacks.load(Ordering::Relaxed)
    }

    /// Number of queries solved through a strict B2b decomposition.
    pub fn decompositions_used(&self) -> u64 {
        self.decompositions_used.load(Ordering::Relaxed)
    }
}

/// The NL solver.
#[derive(Debug)]
pub struct NlSolver {
    backend: NlBackend,
    strict: bool,
    stats: FallbackStats,
}

impl Default for NlSolver {
    fn default() -> NlSolver {
        NlSolver::direct()
    }
}

impl NlSolver {
    /// Creates the solver with the direct (graph-reachability) back-end.
    pub fn direct() -> NlSolver {
        NlSolver {
            backend: NlBackend::Direct,
            strict: true,
            stats: FallbackStats::default(),
        }
    }

    /// Creates the solver with the Datalog back-end.
    pub fn datalog() -> NlSolver {
        NlSolver {
            backend: NlBackend::Datalog,
            strict: true,
            stats: FallbackStats::default(),
        }
    }

    /// Creates a non-strict solver that accepts any C3 query (falling back to
    /// the fixpoint algorithm when no decomposition applies).
    pub fn lenient(backend: NlBackend) -> NlSolver {
        NlSolver {
            backend,
            strict: false,
            stats: FallbackStats::default(),
        }
    }

    /// Fallback statistics.
    pub fn stats(&self) -> &FallbackStats {
        &self.stats
    }

    /// Evaluates the predicate `O` directly and applies Claim 4:
    /// the instance is certain iff `O(c)` fails for some constant.
    fn certain_direct(
        &self,
        dec: &B2bDecomposition,
        db: &DatabaseInstance,
    ) -> bool {
        let uv = dec.uv();
        let wv = dec.wv();
        let spine = dec.spine();

        // Terminal sets via the rooted-rewriting tables (Lemma 17).
        let uv_table = CertainRootedTable::compute(db, &uv, EndCap::Open);
        let wv_table = CertainRootedTable::compute(db, &wv, EndCap::Open);
        let spine_table = CertainRootedTable::compute(db, &spine, EndCap::Open);
        let uv_terminal: BTreeSet<Constant> = db
            .adom()
            .iter()
            .copied()
            .filter(|&c| !uv_table.certain_from(c))
            .collect();
        let wv_terminal: BTreeSet<Constant> = db
            .adom()
            .iter()
            .copied()
            .filter(|&c| !wv_table.certain_from(c))
            .collect();
        let spine_terminal: BTreeSet<Constant> = db
            .adom()
            .iter()
            .copied()
            .filter(|&c| !spine_table.certain_from(c))
            .collect();

        // The uv-step graph restricted to wv-terminal vertices.
        let mut edges: BTreeMap<Constant, BTreeSet<Constant>> = BTreeMap::new();
        for &d in &wv_terminal {
            let successors: BTreeSet<Constant> = reachable_by_trace(db, d, &uv)
                .into_iter()
                .filter(|t| wv_terminal.contains(t))
                .collect();
            if !successors.is_empty() {
                edges.insert(d, successors);
            }
        }

        // Vertices lying on a cycle of the uv-step graph.
        let on_cycle: BTreeSet<Constant> = wv_terminal
            .iter()
            .copied()
            .filter(|&v| {
                // v lies on a cycle iff v is reachable from one of its
                // successors.
                edges.get(&v).is_some_and(|succs| {
                    succs
                        .iter()
                        .any(|&s| reaches(&edges, s, v))
                })
            })
            .collect();

        // P(d): d is wv-terminal and reaches (reflexively) a vertex that is
        // uv-terminal, or reaches a vertex on a cycle.
        let targets: BTreeSet<Constant> = wv_terminal
            .iter()
            .copied()
            .filter(|c| uv_terminal.contains(c) || on_cycle.contains(c))
            .collect();
        let p_set: BTreeSet<Constant> = wv_terminal
            .iter()
            .copied()
            .filter(|&d| targets.contains(&d) || targets.iter().any(|&t| reaches(&edges, d, t)))
            .collect();

        // O(c): spine-terminal, or a consistent spine path reaches P.
        let o = |c: Constant| -> bool {
            if spine_terminal.contains(&c) {
                return true;
            }
            consistent_path_endpoints(db, c, &spine)
                .into_iter()
                .any(|d| p_set.contains(&d))
        };

        // Claim 4: "no"-instance iff O(c) holds for every c.
        db.adom().iter().any(|&c| !o(c))
    }

    /// Evaluates the generated linear Datalog program and applies Claim 4.
    fn certain_datalog(
        &self,
        dec: &B2bDecomposition,
        query: &PathQuery,
        db: &DatabaseInstance,
    ) -> Result<bool, SolverError> {
        let Some(cqa) = generate_program(dec, query.word()) else {
            return self.fallback(query, db);
        };
        let store = Evaluator::with_numberings(&cqa.program, &cqa.numberings)
            .run(db)
            .map_err(|e| SolverError::ResourceLimit(format!("datalog engine error: {e}")))?;
        let o_holds = store
            .unary(cqa.o)
            .map_err(|e| SolverError::ResourceLimit(format!("datalog engine error: {e}")))?;
        Ok(db.adom().iter().any(|c| !o_holds.contains(&c.symbol())))
    }

    fn fallback(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        self.stats.fixpoint_fallbacks.fetch_add(1, Ordering::Relaxed);
        FixpointSolver::unchecked().certain(query, db)
    }
}

/// Reflexivity is *not* included: `reaches(edges, a, b)` is true iff there is
/// a path of length ≥ 1 from `a` to `b`, or `a == b` and ... no: plain BFS
/// from `a`'s successors, so `a == b` requires a genuine cycle. Callers add
/// the reflexive case explicitly where the definition needs it.
fn reaches(
    edges: &BTreeMap<Constant, BTreeSet<Constant>>,
    from: Constant,
    to: Constant,
) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if let Some(succs) = edges.get(&v) {
            for &s in succs {
                if s == to {
                    return true;
                }
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
    }
    false
}

impl CertaintySolver for NlSolver {
    fn name(&self) -> &'static str {
        match self.backend {
            NlBackend::Direct => "nl-direct",
            NlBackend::Datalog => "nl-datalog",
        }
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        let class = classify(query).class;
        if self.strict && !matches!(class, ComplexityClass::FO | ComplexityClass::NlComplete) {
            return Err(SolverError::NotApplicable {
                solver: "nl".into(),
                reason: format!("query {query} violates C2"),
            });
        }
        if !self.strict && class == ComplexityClass::CoNpComplete {
            return Err(SolverError::NotApplicable {
                solver: "nl".into(),
                reason: format!("query {query} violates C3"),
            });
        }
        match b2b_strict_decomposition(query.word()) {
            Some(dec) if !dec.uv().is_empty() => {
                self.stats.decompositions_used.fetch_add(1, Ordering::Relaxed);
                match self.backend {
                    NlBackend::Direct => Ok(self.certain_direct(&dec, db)),
                    NlBackend::Datalog => self.certain_datalog(&dec, query, db),
                }
            }
            _ => self.fallback(query, db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;

    fn random_db(seed: u64, rels: &[&str], domain: u64, facts: u64) -> DatabaseInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut db = DatabaseInstance::new();
        for _ in 0..facts {
            let rel = rels[(next() % rels.len() as u64) as usize];
            let a = next() % domain;
            let b = next() % domain;
            db.insert_parsed(rel, &format!("v{a}"), &format!("v{b}"));
        }
        db
    }

    #[test]
    fn both_backends_agree_with_oracle_on_rrx() {
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let datalog = NlSolver::datalog();
        let q = PathQuery::parse("RRX").unwrap();
        for seed in 1..=40u64 {
            let db = random_db(seed * 7919, &["R", "X"], 6, 4 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            let expected = naive.certain(&q, &db).unwrap();
            assert_eq!(direct.certain(&q, &db).unwrap(), expected, "direct, seed {seed}");
            assert_eq!(datalog.certain(&q, &db).unwrap(), expected, "datalog, seed {seed}");
        }
        assert!(direct.stats().decompositions_used() > 0);
    }

    #[test]
    fn both_backends_agree_with_oracle_on_rxry() {
        // RXRY is the paper's canonical NL-complete query (Example 3).
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let datalog = NlSolver::datalog();
        let q = PathQuery::parse("RXRY").unwrap();
        for seed in 1..=40u64 {
            let db = random_db(seed * 104729, &["R", "X", "Y"], 5, 5 + seed % 9);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            let expected = naive.certain(&q, &db).unwrap();
            assert_eq!(direct.certain(&q, &db).unwrap(), expected, "direct, seed {seed}");
            assert_eq!(datalog.certain(&q, &db).unwrap(), expected, "datalog, seed {seed}");
        }
    }

    #[test]
    fn agrees_with_oracle_on_uvuvwv() {
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let q = PathQuery::parse("UVUVWV").unwrap();
        for seed in 1..=30u64 {
            let db = random_db(seed * 31337, &["U", "V", "W"], 5, 5 + seed % 10);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn figure_2_is_certain_for_rrx() {
        let mut db = DatabaseInstance::new();
        db.insert_parsed("R", "0", "1");
        db.insert_parsed("R", "1", "2");
        db.insert_parsed("R", "1", "3");
        db.insert_parsed("R", "2", "3");
        db.insert_parsed("X", "3", "4");
        assert!(NlSolver::direct().certain(&PathQuery::parse("RRX").unwrap(), &db).unwrap());
        assert!(NlSolver::datalog().certain(&PathQuery::parse("RRX").unwrap(), &db).unwrap());
    }

    #[test]
    fn strict_mode_rejects_ptime_and_conp_queries() {
        let db = DatabaseInstance::new();
        let solver = NlSolver::direct();
        for word in ["RXRYRY", "RXRXRYRY"] {
            let q = PathQuery::parse(word).unwrap();
            assert!(matches!(
                solver.certain(&q, &db),
                Err(SolverError::NotApplicable { .. })
            ));
        }
        // Lenient mode accepts the PTIME query (via fallback) but not coNP.
        let lenient = NlSolver::lenient(NlBackend::Direct);
        assert!(lenient.certain(&PathQuery::parse("RXRYRY").unwrap(), &db).is_ok());
        assert!(lenient.certain(&PathQuery::parse("RXRXRYRY").unwrap(), &db).is_err());
    }

    #[test]
    fn fo_class_queries_are_accepted_too() {
        // FO ⊆ NL: the solver should also handle C1 queries like RXRX.
        let naive = NaiveSolver::default();
        let direct = NlSolver::direct();
        let q = PathQuery::parse("RXRX").unwrap();
        for seed in 1..=25u64 {
            let db = random_db(seed * 65537, &["R", "X"], 5, 4 + seed % 8);
            if db.repair_count() > 1 << 12 {
                continue;
            }
            assert_eq!(
                direct.certain(&q, &db).unwrap(),
                naive.certain(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }
}
