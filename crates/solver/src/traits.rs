//! The common interface of all certainty solvers.

use cqa_core::query::PathQuery;
use cqa_db::instance::DatabaseInstance;

use crate::error::SolverError;

/// A decision procedure for `CERTAINTY(q)`: given a path query `q` and a
/// database instance `db`, decide whether **every** repair of `db`
/// satisfies `q`.
pub trait CertaintySolver {
    /// A short identifier used in reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Decides `CERTAINTY(q)` on `db`.
    ///
    /// Returns `Err(SolverError::NotApplicable)` when the query falls outside
    /// the solver's complexity class (e.g. the FO solver on a query violating
    /// C1); other errors indicate resource limits.
    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError>;
}

/// A blanket implementation so `&S` and boxed solvers can be passed wherever
/// a solver is expected.
impl<S: CertaintySolver + ?Sized> CertaintySolver for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        (**self).certain(query, db)
    }
}

impl<S: CertaintySolver + ?Sized> CertaintySolver for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn certain(&self, query: &PathQuery, db: &DatabaseInstance) -> Result<bool, SolverError> {
        (**self).certain(query, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysYes;

    impl CertaintySolver for AlwaysYes {
        fn name(&self) -> &'static str {
            "always-yes"
        }

        fn certain(&self, _q: &PathQuery, _db: &DatabaseInstance) -> Result<bool, SolverError> {
            Ok(true)
        }
    }

    #[test]
    fn references_and_boxes_forward() {
        let q = PathQuery::parse("R").unwrap();
        let db = DatabaseInstance::new();
        let solver = AlwaysYes;
        assert_eq!(solver.name(), "always-yes");
        assert!(solver.certain(&q, &db).unwrap());
        let boxed: Box<dyn CertaintySolver> = Box::new(AlwaysYes);
        assert!(boxed.certain(&q, &db).unwrap());
    }
}
