//! # cqa-solver
//!
//! Decision procedures for `CERTAINTY(q)` on path queries, one per complexity
//! class of the tetrachotomy of Theorem 2, plus baselines and a
//! classification-driven dispatcher:
//!
//! * [`naive::NaiveSolver`] / [`naive::BacktrackSolver`] — exhaustive and
//!   pruned repair enumeration (ground-truth oracles, exponential);
//! * [`fo_solver::FoSolver`] — the consistent first-order rewriting
//!   (Lemma 13, queries satisfying C1);
//! * [`nl_solver::NlSolver`] — the predicates `P`/`O` of Lemma 14, either by
//!   direct graph reachability or through the generated linear Datalog
//!   program (queries satisfying C2);
//! * [`fixpoint::FixpointSolver`] — the PTIME fixpoint algorithm of Figure 5
//!   (queries satisfying C3);
//! * [`conp::SatCertaintySolver`] — counterexample-repair search by reduction
//!   to SAT (every path query, in particular the coNP-complete ones);
//! * [`dispatch::DispatchSolver`] — classify, then route (through a cached
//!   [`session::CertaintySession`]);
//! * [`session::CertaintySession`] — batched certain-answer sessions that
//!   classify each query once and share compiled per-query artifacts;
//! * [`generalized::GeneralizedSolver`] — queries with constants (Section 8).
//!
//! ```
//! use cqa_core::prelude::*;
//! use cqa_db::prelude::*;
//! use cqa_solver::prelude::*;
//!
//! let mut db = DatabaseInstance::new();
//! db.insert_parsed("R", "0", "1");
//! db.insert_parsed("R", "1", "2");
//! db.insert_parsed("R", "1", "3");
//! db.insert_parsed("R", "2", "3");
//! db.insert_parsed("X", "3", "4");
//!
//! let q = PathQuery::parse("RRX").unwrap();
//! assert!(solve_certainty(&q, &db).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conp;
pub mod dispatch;
pub mod error;
pub mod fixpoint;
pub mod fo_solver;
pub mod generalized;
pub mod naive;
pub mod nl_solver;
pub mod session;
pub mod traits;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::conp::SatCertaintySolver;
    pub use crate::dispatch::{solve_certainty, DispatchSolver, Route};
    pub use crate::error::SolverError;
    pub use crate::fixpoint::{
        compute_fixpoint, compute_fixpoint_with_nfa, minimizing_repair, FixpointRun, FixpointSolver,
    };
    pub use crate::fo_solver::FoSolver;
    pub use crate::generalized::GeneralizedSolver;
    pub use crate::naive::{BacktrackSolver, NaiveSolver};
    pub use crate::nl_solver::{DemandCounts, NlBackend, NlPlan, NlSolver};
    pub use crate::session::{
        CertaintySession, QueryPlan, RouteCounts, SessionMetrics, SessionStats,
    };
    pub use crate::traits::CertaintySolver;
    pub use cqa_datalog::parallel::{Checkpoint, EvalOptions, EvalStats, Maintain, Threads};
}
