//! Demand-driven derivation: goal-directed pruning and a magic-sets rewrite.
//!
//! The certainty check only ever inspects the goal predicate (`o/1` for the
//! generated CQA programs of Lemma 14), yet the engine derives the full IDB.
//! This module rewrites a program so that evaluation derives (a superset of)
//! exactly what the goal needs, in two stages:
//!
//! 1. **Reachability pruning** ([`DemandMode::Prune`]): drop every rule whose
//!    head predicate the goal cannot reach in the dependency graph (following
//!    positive *and* negative body edges). Unreachable predicates cannot
//!    influence the goal's fixpoint in any stratum, so this is answer-
//!    preserving on the goal for arbitrary stratified programs.
//!
//! 2. **Magic-sets / sideways information passing** ([`DemandMode::Magic`]):
//!    restrict eligible predicates to the tuples actually *demanded* by some
//!    goal derivation. Each eligible predicate `q` gets one canonical
//!    adornment — the set of argument positions bound at *every* positive
//!    occurrence of `q`, computed as a decreasing fixpoint under left-to-right
//!    information passing — plus a demand predicate `magic$q` over the bound
//!    positions. Every rule for `q` is guarded by a `magic$q` literal, and
//!    every occurrence of `q` contributes a rule deriving `magic$q` from the
//!    occurrence's guard and preceding positive literals (supplementary magic
//!    in the style of cozo's `magic_sets_rewrite`, but guard-based: original
//!    predicates keep their names and extensions shrink to the demanded
//!    cone).
//!
//! # Negation and the per-stratum hazard analysis
//!
//! A guarded rule derives a *subset* of its original head extension; if a
//! negated predicate `q` shrank on a tuple the evaluation actually consults,
//! `not q(..)` would start accepting tuples the original program rejected,
//! silently flipping answers. Restricting a negated predicate is
//! nevertheless sound *if every consultation is itself demanded*: for a
//! negative occurrence of `q` in rule `r`, the outcome of `not q(t)` can
//! only influence `r`'s head on bindings that satisfy **all** positive
//! literals of `r` (any other binding dies at a positive literal no matter
//! what the negation says). So stage 2 emits, per negative occurrence, a
//! demand rule
//!
//! ```text
//! magic$q(bound positions) :- guard?, <all positive literals of r>.
//! ```
//!
//! and on every binding it covers, standard magic-sets correctness makes the
//! restricted `q` agree with the original — while uncovered bindings cannot
//! affect any head. (Rule safety bounds every variable of a negative literal
//! by some positive literal, so these demand rules are always safe, and
//! negative occurrences never shrink the adornment masks.)
//!
//! What can go wrong is *stratification*, not soundness: the demand rule
//! makes `q` depend positively on the positive literals of `r`, and if such
//! a literal `p` sits **strictly above** `q` in the original stratification,
//! `p` may transitively depend on `q` through a negative edge — closing a
//! cycle through `magic$q` that contains a negation. The per-stratum hazard
//! analysis therefore exempts exactly the negated predicates with such an
//! occurrence (strictly-higher positive co-literal), together with their
//! (positive and negative) dependency cone — their rules stay unchanged, so
//! everything they read must keep its full extension. Negated predicates
//! whose co-literals all sit at or below their own stratum are restrictable:
//! any dependency path from a co-literal back to `q` is then positive-only,
//! so every new cycle is positive and the program stays stratified. In
//! particular, negation-free strata *below* a negated predicate — the common
//! CQA shape, where terminal rules negate a key predicate derived straight
//! from the EDB — are no longer exempt wholesale. A defensive [`stratify`]
//! check still runs, retrying with the historical full-cone exemption (no
//! negated predicate restricted) and finally falling back to the pruned
//! program if it ever fails.
//!
//! Builtins and negative literals never appear in magic-rule bodies (their
//! variables may be bound only by *later* positive literals, so copying them
//! could create unsafe rules); dropping them merely widens the demand set,
//! which is always sound.
//!
//! # Contract
//!
//! [`transform`] preserves the extension of the **goal predicate** exactly
//! (`crates/path-cqa/tests/demand_agreement.rs` pins this differentially
//! against the scan reference on random stratified programs); other
//! predicates may shrink or disappear. Callers that inspect non-goal
//! predicates must transform with [`DemandMode::Off`].

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::OnceLock;

use cqa_core::symbol::Symbol;

use crate::ast::{BodyLiteral, DlAtom, DlTerm, Predicate, Program, Rule};
use crate::stratify::stratify;

/// Demand knob, threaded from [`crate::parallel::EvalOptions`] down to
/// program generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Demand {
    /// Defer to the `PATH_CQA_DEMAND` environment variable (`off`, `prune`
    /// or `magic`); when unset, use the built-in default
    /// ([`DemandMode::Magic`]). Like [`crate::parallel::Threads::Auto`] this
    /// is resolved once per process — set the variable before the first
    /// evaluation.
    #[default]
    Auto,
    /// No transformation: evaluate the program as written.
    Off,
    /// Stage 1 only: goal-reachability pruning.
    Prune,
    /// Stages 1 + 2: pruning, then the magic-sets rewrite.
    Magic,
}

/// A resolved demand setting (no `Auto`), usable as a cache-key component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DemandMode {
    /// No transformation.
    Off,
    /// Goal-reachability pruning only.
    Prune,
    /// Pruning plus the magic-sets rewrite.
    Magic,
}

impl std::fmt::Display for DemandMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DemandMode::Off => "off",
            DemandMode::Prune => "prune",
            DemandMode::Magic => "magic",
        })
    }
}

impl Demand {
    /// Resolves the knob to a concrete mode.
    pub fn resolve(self) -> DemandMode {
        match self {
            Demand::Off => DemandMode::Off,
            Demand::Prune => DemandMode::Prune,
            Demand::Magic => DemandMode::Magic,
            Demand::Auto => {
                static AUTO: OnceLock<DemandMode> = OnceLock::new();
                *AUTO.get_or_init(|| match std::env::var("PATH_CQA_DEMAND").as_deref() {
                    Ok("off") | Ok("0") => DemandMode::Off,
                    Ok("prune") => DemandMode::Prune,
                    _ => DemandMode::Magic,
                })
            }
        }
    }
}

/// What a [`transform`] did, for stats plumbing ([`crate::parallel::EvalStats`],
/// the solver's session stats, the server `STATS` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DemandReport {
    /// Rules dropped by the reachability pass.
    pub rules_pruned: u64,
    /// IDB predicates that lost every defining rule in the reachability pass.
    pub predicates_pruned: u64,
    /// Predicates the magic stage restricted behind a demand guard.
    pub restricted_predicates: u64,
    /// `magic$…` rules emitted (0 when the magic stage did not apply — mode
    /// below [`DemandMode::Magic`], nothing restrictable, or the defensive
    /// stratification fallback).
    pub magic_rules: u64,
}

/// The demand-predicate name for `pred`: `magic$<name>`. The `$` keeps the
/// namespace disjoint from anything the CQA generator (or a reasonable test
/// program) emits.
fn magic_pred(pred: Predicate, mask: &[bool]) -> Predicate {
    Predicate::new(
        &format!("magic${}", pred.name),
        mask.iter().filter(|&&b| b).count(),
    )
}

/// Projects an atom onto its adorned (bound) positions, renamed to the demand
/// predicate.
fn magic_atom(atom: &DlAtom, mask: &[bool]) -> DlAtom {
    let args = atom
        .args
        .iter()
        .zip(mask)
        .filter(|&(_, &b)| b)
        .map(|(&t, _)| t)
        .collect();
    DlAtom::new(magic_pred(atom.pred, mask), args)
}

/// Stage 1: keeps only rules whose head the goal reaches through positive or
/// negative body edges. Returns the pruned program and the
/// (rules, predicates) drop counts.
fn prune(program: &Program, goal: Predicate) -> (Program, u64, u64) {
    let mut reachable: BTreeSet<Predicate> = BTreeSet::new();
    reachable.insert(goal);
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if !reachable.contains(&rule.head.pred) {
                continue;
            }
            for literal in &rule.body {
                if let BodyLiteral::Positive(a) | BodyLiteral::Negative(a) = literal {
                    changed |= reachable.insert(a.pred);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut pruned = Program::new();
    pruned.edb = program.edb.clone();
    for rule in &program.rules {
        if reachable.contains(&rule.head.pred) {
            pruned.add_rule(rule.clone());
        }
    }
    let heads = |p: &Program| -> BTreeSet<Predicate> { p.idb_predicates().into_iter().collect() };
    let rules_pruned = (program.rules.len() - pruned.rules.len()) as u64;
    let predicates_pruned = (heads(program).len() - heads(&pruned).len()) as u64;
    (pruned, rules_pruned, predicates_pruned)
}

/// Every predicate occurring under negation anywhere in the program.
fn all_negated(program: &Program) -> BTreeSet<Predicate> {
    program
        .rules
        .iter()
        .flat_map(|r| &r.body)
        .filter_map(|l| match l {
            BodyLiteral::Negative(a) => Some(a.pred),
            _ => None,
        })
        .collect()
}

/// The negated predicates whose restriction could break stratification: those
/// with some negative occurrence next to a positive co-literal *strictly
/// above* them in the original stratification (see the module docs' hazard
/// analysis). Unstratifiable input — defensive, callers only run stage 2 on
/// stratified programs — marks every negated predicate hazardous, degrading
/// to the historical full-cone exemption.
fn hazardous_negated(program: &Program) -> BTreeSet<Predicate> {
    let Ok(strat) = stratify(program) else {
        return all_negated(program);
    };
    // EDB predicates sit below every IDB stratum.
    let level = |p: Predicate| strat.stratum_of.get(&p).map_or(0, |s| s + 1);
    let mut hazardous = BTreeSet::new();
    for rule in &program.rules {
        for literal in &rule.body {
            let BodyLiteral::Negative(q) = literal else {
                continue;
            };
            let above = rule
                .body
                .iter()
                .any(|l| matches!(l, BodyLiteral::Positive(p) if level(p.pred) > level(q.pred)));
            if above {
                hazardous.insert(q.pred);
            }
        }
    }
    hazardous
}

/// Closes `seeds` under positive and negative body dependencies. Exempt
/// predicates keep their original rules, so everything those rules
/// (transitively) read must keep its full extension too.
fn dependency_cone(program: &Program, seeds: BTreeSet<Predicate>) -> BTreeSet<Predicate> {
    let mut cone = seeds;
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if !cone.contains(&rule.head.pred) {
                continue;
            }
            for literal in &rule.body {
                if let BodyLiteral::Positive(a) | BodyLiteral::Negative(a) = literal {
                    changed |= cone.insert(a.pred);
                }
            }
        }
        if !changed {
            return cone;
        }
    }
}

/// The canonical adornment of every restrictable predicate: the positions
/// bound (by a constant, a guard-provided head variable, or a preceding
/// positive literal) at *every* positive occurrence, as a decreasing
/// fixpoint. Predicates whose adornment empties out are demoted to full
/// (an all-free demand predicate would demand everything anyway).
fn adornments(
    program: &Program,
    goal: Predicate,
    exempt: &BTreeSet<Predicate>,
) -> BTreeMap<Predicate, Vec<bool>> {
    let mut adorn: BTreeMap<Predicate, Vec<bool>> = program
        .idb_predicates()
        .into_iter()
        .filter(|p| *p != goal && !exempt.contains(p))
        .map(|p| (p, vec![true; p.arity]))
        .collect();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let mut bound: BTreeSet<Symbol> = BTreeSet::new();
            if let Some(mask) = adorn.get(&rule.head.pred) {
                for (term, &b) in rule.head.args.iter().zip(mask) {
                    if b {
                        if let DlTerm::Var(v) = term {
                            bound.insert(*v);
                        }
                    }
                }
            }
            for literal in &rule.body {
                let BodyLiteral::Positive(a) = literal else {
                    continue;
                };
                if let Some(mask) = adorn.get(&a.pred).cloned() {
                    let new_mask: Vec<bool> = a
                        .args
                        .iter()
                        .zip(&mask)
                        .map(|(term, &b)| {
                            b && match term {
                                DlTerm::Const(_) => true,
                                DlTerm::Var(v) => bound.contains(v),
                            }
                        })
                        .collect();
                    if new_mask != mask {
                        changed = true;
                        if new_mask.contains(&true) {
                            adorn.insert(a.pred, new_mask);
                        } else {
                            adorn.remove(&a.pred);
                        }
                    }
                }
                for term in &a.args {
                    if let DlTerm::Var(v) = term {
                        bound.insert(*v);
                    }
                }
            }
        }
        if !changed {
            return adorn;
        }
    }
}

/// Stage 2: the guard-style magic rewrite over a pruned program. Tries the
/// per-stratum hazard exemption first; if its output fails the defensive
/// safety/stratification check, retries with the historical full negation
/// cone (which never restricts a negated predicate). Returns `None` when
/// nothing is restrictable or both attempts fail (the caller falls back to
/// the pruned program).
fn magic(pruned: &Program, goal: Predicate) -> Option<(Program, u64, u64)> {
    let refined = dependency_cone(pruned, hazardous_negated(pruned));
    if let Some(result) = magic_with_exempt(pruned, goal, &refined) {
        return Some(result);
    }
    let full = dependency_cone(pruned, all_negated(pruned));
    if full == refined {
        return None;
    }
    magic_with_exempt(pruned, goal, &full)
}

/// One magic-rewrite attempt under a fixed exemption set.
fn magic_with_exempt(
    pruned: &Program,
    goal: Predicate,
    exempt: &BTreeSet<Predicate>,
) -> Option<(Program, u64, u64)> {
    let adorn = adornments(pruned, goal, exempt);
    if adorn.is_empty() {
        return None;
    }

    let mut out = Program::new();
    out.edb = pruned.edb.clone();
    let mut emitted: HashSet<Rule> = HashSet::new();
    let mut magic_rules = 0u64;
    for rule in &pruned.rules {
        let guard: Option<DlAtom> = adorn
            .get(&rule.head.pred)
            .map(|mask| magic_atom(&rule.head, mask));
        // The sideways-information-passing prefix: the guard plus every
        // positive literal seen so far, in textual order.
        let mut seen: Vec<BodyLiteral> = guard
            .iter()
            .map(|g| BodyLiteral::Positive(g.clone()))
            .collect();
        for literal in &rule.body {
            let BodyLiteral::Positive(a) = literal else {
                continue;
            };
            if let Some(mask) = adorn.get(&a.pred) {
                let head = magic_atom(a, mask);
                // A recursive occurrence whose demand rule would be
                // `magic$q(..) :- magic$q(..), …` derives nothing new.
                let tautology = seen
                    .iter()
                    .any(|l| matches!(l, BodyLiteral::Positive(x) if *x == head));
                if !tautology {
                    let rule = Rule::new(head, seen.clone());
                    if emitted.insert(rule.clone()) {
                        out.add_rule(rule);
                        magic_rules += 1;
                    }
                }
            }
            seen.push(literal.clone());
        }
        // Demand for negative occurrences: `not q(..)` only matters on
        // bindings satisfying every positive literal of the rule, so those
        // literals (all of them — rule safety bounds the negation's
        // variables somewhere in the body, not necessarily before it) are
        // the demand (see the module docs' hazard analysis).
        for literal in &rule.body {
            let BodyLiteral::Negative(a) = literal else {
                continue;
            };
            if let Some(mask) = adorn.get(&a.pred) {
                let head = magic_atom(a, mask);
                let mut body: Vec<BodyLiteral> = guard
                    .iter()
                    .map(|g| BodyLiteral::Positive(g.clone()))
                    .collect();
                body.extend(
                    rule.body
                        .iter()
                        .filter(|l| matches!(l, BodyLiteral::Positive(_)))
                        .cloned(),
                );
                let rule = Rule::new(head, body);
                if emitted.insert(rule.clone()) {
                    out.add_rule(rule);
                    magic_rules += 1;
                }
            }
        }
        let mut body: Vec<BodyLiteral> = guard.into_iter().map(BodyLiteral::Positive).collect();
        body.extend(rule.body.iter().cloned());
        out.add_rule(Rule::new(rule.head.clone(), body));
    }

    // Defensive: the hazard analysis argues both properties hold by
    // construction (see module docs), but a demand rewrite that silently
    // produced an uncompilable program would take the whole route down —
    // `magic` retries with the full-cone exemption when this trips.
    if !out.is_safe() || stratify(&out).is_err() {
        return None;
    }
    Some((out, adorn.len() as u64, magic_rules))
}

/// Applies the demand transformation for `goal` at the given mode.
///
/// The result preserves the goal predicate's extension exactly; with
/// [`DemandMode::Off`] the program is returned unchanged (modulo clone). The
/// [`DemandReport`] records what each stage did.
pub fn transform(program: &Program, goal: Predicate, mode: DemandMode) -> (Program, DemandReport) {
    if mode == DemandMode::Off || program.edb.contains(&goal) {
        return (program.clone(), DemandReport::default());
    }
    let (pruned, rules_pruned, predicates_pruned) = prune(program, goal);
    let mut report = DemandReport {
        rules_pruned,
        predicates_pruned,
        ..DemandReport::default()
    };
    if mode == DemandMode::Prune {
        return (pruned, report);
    }
    match magic(&pruned, goal) {
        Some((transformed, restricted, magic_rules)) => {
            report.restricted_predicates = restricted;
            report.magic_rules = magic_rules;
            (transformed, report)
        }
        None => (pruned, report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use cqa_db::instance::DatabaseInstance;

    fn atom(name: &str, terms: &[&str]) -> DlAtom {
        DlAtom::new(
            Predicate::new(name, terms.len()),
            terms
                .iter()
                .map(|t| {
                    if t.starts_with(|c: char| c.is_lowercase()) {
                        DlTerm::constant(t)
                    } else {
                        DlTerm::var(t)
                    }
                })
                .collect(),
        )
    }

    fn pos(name: &str, terms: &[&str]) -> BodyLiteral {
        BodyLiteral::Positive(atom(name, terms))
    }

    fn neg(name: &str, terms: &[&str]) -> BodyLiteral {
        BodyLiteral::Negative(atom(name, terms))
    }

    /// Transitive closure over `E`, a seeded goal, plus an unreachable
    /// second closure over `F`.
    fn seeded_tc_with_island() -> Program {
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.declare_edb(Predicate::new("F", 2));
        p.declare_edb(Predicate::new("seed", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![pos("E", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
        ));
        // Instances are binary-relation databases, so the seed relation is a
        // binary self-loop seed(X, X).
        p.add_rule(Rule::new(
            atom("goal", &["Y"]),
            vec![pos("seed", &["X", "X2"]), pos("path", &["X", "Y"])],
        ));
        // Unreachable island: a closure over F the goal never consults.
        p.add_rule(Rule::new(
            atom("island", &["X", "Y"]),
            vec![pos("F", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("island", &["X", "Z"]),
            vec![pos("island", &["X", "Y"]), pos("F", &["Y", "Z"])],
        ));
        p
    }

    fn chain_db(n: usize) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for i in 0..n {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
            db.insert_parsed("F", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db.insert_parsed("seed", "n0", "n0");
        db
    }

    fn goal_set(program: &Program, db: &DatabaseInstance) -> BTreeSet<Symbol> {
        let store = evaluate(program, db).unwrap();
        store
            .unary(Predicate::new("goal", 1))
            .map(|v| v.iter().collect())
            .unwrap_or_default()
    }

    #[test]
    fn resolve_maps_fixed_variants() {
        assert_eq!(Demand::Off.resolve(), DemandMode::Off);
        assert_eq!(Demand::Prune.resolve(), DemandMode::Prune);
        assert_eq!(Demand::Magic.resolve(), DemandMode::Magic);
    }

    #[test]
    fn off_is_identity() {
        let p = seeded_tc_with_island();
        let (t, report) = transform(&p, Predicate::new("goal", 1), DemandMode::Off);
        assert_eq!(t, p);
        assert_eq!(report, DemandReport::default());
    }

    #[test]
    fn prune_drops_the_island_and_nothing_else() {
        let p = seeded_tc_with_island();
        let (t, report) = transform(&p, Predicate::new("goal", 1), DemandMode::Prune);
        assert_eq!(report.rules_pruned, 2);
        assert_eq!(report.predicates_pruned, 1);
        assert_eq!(t.rules.len(), 3);
        assert!(t.to_string().contains("path"));
        assert!(!t.to_string().contains("island"));
        let db = chain_db(20);
        assert_eq!(goal_set(&t, &db), goal_set(&p, &db));
    }

    #[test]
    fn magic_restricts_path_and_preserves_the_goal() {
        let p = seeded_tc_with_island();
        let (t, report) = transform(&p, Predicate::new("goal", 1), DemandMode::Magic);
        assert_eq!(report.rules_pruned, 2);
        assert_eq!(report.restricted_predicates, 1, "{t}");
        assert!(report.magic_rules >= 1, "{t}");
        assert!(t.to_string().contains("magic$path"));
        let db = chain_db(20);
        assert_eq!(goal_set(&t, &db), goal_set(&p, &db));
        // The win this transformation exists for: the original closure is
        // quadratic in the chain, the demanded one only walks from the seed.
        let full = evaluate(&p, &db).unwrap();
        let demanded = evaluate(&t, &db).unwrap();
        assert!(
            demanded.generation() < full.generation(),
            "demanded {} vs full {}",
            demanded.generation(),
            full.generation()
        );
    }

    #[test]
    fn unseeded_goal_falls_back_to_prune() {
        // goal == the recursive predicate itself: nothing is restrictable
        // (the goal is exempt), so magic degrades to the pruned program.
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![pos("E", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
        ));
        let (t, report) = transform(&p, Predicate::new("path", 2), DemandMode::Magic);
        assert_eq!(report.magic_rules, 0);
        assert_eq!(t.rules.len(), 2);
        assert!(!t.to_string().contains("magic$"));
    }

    #[test]
    fn negation_free_strata_below_a_negation_are_restricted() {
        // blocked is negated in the goal rule, but its cone (blocked, mark)
        // is negation-free and sits below everything the goal rule joins
        // with it: the hazard analysis restricts all three IDB predicates,
        // demanding blocked from the goal rule's positive literals.
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.declare_edb(Predicate::new("seed", 2));
        p.declare_edb(Predicate::new("M", 2));
        p.add_rule(Rule::new(
            atom("mark", &["X"]),
            vec![pos("M", &["X", "X2"])],
        ));
        p.add_rule(Rule::new(
            atom("blocked", &["X"]),
            vec![pos("mark", &["X"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![pos("E", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
        ));
        p.add_rule(Rule::new(
            atom("goal", &["Y"]),
            vec![
                pos("seed", &["X", "X2"]),
                pos("path", &["X", "Y"]),
                neg("blocked", &["Y"]),
            ],
        ));
        let goal = Predicate::new("goal", 1);
        let (t, report) = transform(&p, goal, DemandMode::Magic);
        assert_eq!(report.restricted_predicates, 3, "{t}");
        let text = t.to_string();
        assert!(text.contains("magic$path"));
        assert!(text.contains("magic$blocked"));
        assert!(text.contains("magic$mark"));
        assert!(stratify(&t).is_ok());

        let mut db = DatabaseInstance::new();
        for i in 0..8 {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db.insert_parsed("seed", "n2", "n2");
        db.insert_parsed("M", "n5", "n5");
        assert_eq!(goal_set(&t, &db), goal_set(&p, &db));
    }

    #[test]
    fn hazardous_negation_keeps_its_cone_exempt() {
        // `not mark(Z)` occurs next to the recursive path literal, which
        // sits strictly above mark in the original stratification:
        // restricting mark would make it depend on path, closing a cycle
        // through the negation. The hazard analysis leaves mark (and its
        // cone) unrestricted while path stays restrictable.
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.declare_edb(Predicate::new("M", 2));
        p.declare_edb(Predicate::new("seed", 2));
        p.add_rule(Rule::new(
            atom("mark", &["X"]),
            vec![pos("M", &["X", "X2"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![pos("E", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                pos("path", &["X", "Y"]),
                pos("E", &["Y", "Z"]),
                neg("mark", &["Z"]),
            ],
        ));
        p.add_rule(Rule::new(
            atom("goal", &["Y"]),
            vec![pos("seed", &["X", "X2"]), pos("path", &["X", "Y"])],
        ));
        let goal = Predicate::new("goal", 1);
        let (t, report) = transform(&p, goal, DemandMode::Magic);
        let text = t.to_string();
        assert!(text.contains("magic$path"), "{t}");
        assert!(!text.contains("magic$mark"), "{t}");
        assert_eq!(report.restricted_predicates, 1, "{t}");
        assert!(stratify(&t).is_ok());

        let mut db = DatabaseInstance::new();
        for i in 0..8 {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db.insert_parsed("seed", "n0", "n0");
        db.insert_parsed("M", "n4", "n4");
        assert_eq!(goal_set(&t, &db), goal_set(&p, &db));
    }

    #[test]
    fn constants_seed_demand_without_any_edb_seed() {
        // goal(Y) :- path(c0, Y): the constant alone binds path's first
        // position, so the demand cone starts at c0.
        let mut p = Program::new();
        p.declare_edb(Predicate::new("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![pos("E", &["X", "Y"])],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![pos("path", &["X", "Y"]), pos("E", &["Y", "Z"])],
        ));
        p.add_rule(Rule::new(
            atom("goal", &["Y"]),
            vec![pos("path", &["c0", "Y"])],
        ));
        let (t, report) = transform(&p, Predicate::new("goal", 1), DemandMode::Magic);
        assert_eq!(report.restricted_predicates, 1);
        // The first occurrence has an empty SIP prefix, so the demand seed
        // is the fact rule `magic$path(c0).`.
        assert!(t.rules.iter().any(|r| r.body.is_empty()), "{t}");
        let mut db = DatabaseInstance::new();
        db.insert_parsed("E", "c0", "c1");
        db.insert_parsed("E", "c1", "c2");
        db.insert_parsed("E", "c9", "c0");
        assert_eq!(goal_set(&t, &db), goal_set(&p, &db));
    }

    #[test]
    fn transformed_programs_stay_safe_and_compilable() {
        let p = seeded_tc_with_island();
        for mode in [DemandMode::Off, DemandMode::Prune, DemandMode::Magic] {
            let (t, _) = transform(&p, Predicate::new("goal", 1), mode);
            assert!(t.is_safe(), "{mode}: {t}");
            assert!(
                crate::engine::CompiledProgram::compile(&t).is_ok(),
                "{mode}: {t}"
            );
        }
    }
}
