//! A fast, non-cryptographic hasher for the engine's hot maps.
//!
//! The engine's inner loops are dominated by hash operations over tiny keys
//! — [`crate::tuple::Tuple`]s of one to four 4-byte interned symbols: every
//! derived-tuple insert hits a membership set, and every join probe hits one
//! or two index maps (base + overlay on layered stores). The standard
//! library's default SipHash is DoS-resistant but pays tens of nanoseconds
//! per key; these maps are process-internal (keys are interner handles, not
//! attacker-controlled strings), so the Firefox `FxHasher`
//! multiply-rotate-xor scheme is the right trade — a few nanoseconds per
//! key, long used by rustc itself for the same reason.
//!
//! Nothing observable depends on hash values: the engine iterates relations
//! through their insertion-ordered tuple vectors and index postings through
//! ascending id lists, never through map iteration order, so swapping the
//! hasher changes no derived store, no ordered output, and no bitmap.

use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc "Fx" hash: fold each machine word into the state with
/// a rotate, xor and a multiply by a large odd constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_ne_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_ne_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut map: FxHashMap<crate::tuple::Tuple, u32> = FxHashMap::default();
        let t1 = crate::tuple::Tuple::from([cqa_core::symbol::Symbol::new("a")]);
        let t2 = crate::tuple::Tuple::from([cqa_core::symbol::Symbol::new("b")]);
        map.insert(t1.clone(), 1);
        map.insert(t2.clone(), 2);
        map.insert(t1.clone(), 3);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&t1), Some(&3));
        // Borrowed-slice lookups (the probe-key path) keep working.
        assert_eq!(map.get(t2.as_slice()), Some(&2));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            set.insert(i * 0x9e37_79b9);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&0));
    }

    #[test]
    fn byte_tails_hash_consistently() {
        // write() must agree with itself across chunk boundaries (same input
        // → same hash), covering the 8/4/1-byte folds.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14]);
        assert_ne!(a.finish(), c.finish());
    }
}
