//! A bottom-up, stratum-by-stratum Datalog engine with semi-naive evaluation
//! of recursive rules, stratified negation and built-in constraints.
//!
//! # Architecture
//!
//! The engine evaluates each stratum with **compiled join plans** over
//! **lazily indexed relations**; the design follows the standard semi-naive
//! playbook (compare cozo's `query/eval.rs`) specialized to this crate's
//! workload — the linear CQA programs of Lemma 14, whose hot loop dominates
//! every certain-answer call:
//!
//! * **Compile once, evaluate many times.** A [`Program`] is compiled into a
//!   reusable [`CompiledProgram`] — stratified join plans, a dense
//!   [`PredTable`] of interned [`PredId`]s, and index-slot assignments — that
//!   is immutable, `Sync`, and can be shared across threads and cached across
//!   calls (see [`crate::plan_cache`]). An [`Evaluator`] borrows a compiled
//!   program and carries only per-run state.
//!
//! * **Join planning** ([`crate::plan`]). Each rule is compiled into a
//!   sequence of ops over a flat binding array indexed by the rule's
//!   [`crate::ast::RuleVars`] numbering. Positive literals are ordered
//!   greedily by how many of their positions are bound at placement time
//!   (constants count), so every literal after the first is an index probe in
//!   the common case; negative literals and built-ins run as soon as their
//!   variables are bound, pruning early. A fully bound atom degenerates to a
//!   set-membership test.
//!
//! * **Layered copy-on-write stores** ([`crate::store`]). Relations live in
//!   a [`RelationStore`] that is either flat or an overlay over a frozen,
//!   `Arc`-shared [`BaseStore`] (a shared EDB prefix plus its committed
//!   `(pred, mask)` indexes, built once per base). Tuple ids index the
//!   base-then-overlay concatenation, so the semi-naive delta machinery and
//!   the probe indexes work unchanged across the seam; a flat store is the
//!   empty-base case and keeps the exact single-layer code paths.
//!
//! * **Interned predicates.** Plans refer to predicates by dense [`PredId`],
//!   and [`RelationStore`] keeps its relations in a flat `Vec` behind its own
//!   [`PredTable`]; a per-run translation array maps program ids to store
//!   ids, so the evaluator's inner loop never hashes a predicate — every
//!   relation lookup is a vector index, and every `(predicate, bound-mask)`
//!   index probe goes through a compile-time slot into a flat
//!   [`crate::plan::IndexSpace`].
//!
//! * **Delta indexes.** Relations are append-only during a run, so the
//!   semi-naive delta of a predicate is simply the id range of tuples
//!   appended in the previous round. A delta-restricted plan scans exactly
//!   that range for its delta literal and probes indexes for everything
//!   else; indexes are built on first probe and *extended* (never
//!   invalidated) by absorbing the tuples appended since their last use. On
//!   an overlay store a probe pairs the base's committed index with the
//!   run's overlay extension.
//!
//! * **Allocation-free inner loop.** Bindings live in a
//!   `Vec<Option<Symbol>>` with compile-time-known reset lists instead of
//!   cloned `BTreeMap` environments, tuples up to arity 4 are stored inline
//!   ([`crate::tuple::Tuple`]), and probe results are copied into per-depth
//!   scratch buffers that are reused across candidates.
//!
//! * **Shape-specialized kernels** ([`crate::kernel`]). Rules in the
//!   unary/binary fragment — which covers the entire generated CQA program
//!   family — are *additionally* compiled to a register machine over raw
//!   `u32` symbol ids: columnar scans, CSR-adjacency probes, bitset
//!   membership and a sort-merge fast path replace tuple matching and hash
//!   probing. Selection is per rule at compile time and recorded in the
//!   [`CompiledProgram`] (so `plan_cache` caches it like everything else);
//!   whether the kernels *execute* is a per-run knob
//!   ([`crate::parallel::Kernels`], environment override
//!   `PATH_CQA_KERNELS=off|on`). Ineligible rules — wide atoms, or probes
//!   into the stratum currently being grown — keep the generic path, rule by
//!   rule; [`crate::parallel::EvalStats`] reports the split.
//!
//! * **Parallel rounds** ([`crate::parallel`]). With
//!   [`crate::parallel::EvalOptions`] resolving to more than one thread,
//!   each semi-naive round fans its rules (and chunks of their depth-0 scan
//!   ranges) out across scoped workers over a frozen snapshot, merging
//!   per-worker deltas deterministically; one thread selects this module's
//!   sequential loop unchanged.
//!
//! The previous scan-based evaluator is retained verbatim-in-spirit under
//! [`crate::reference`] (re-exported here as [`reference`]); the property
//! suites (`tests/engine_agreement.rs`, `tests/parallel_agreement.rs`,
//! `tests/family_cow.rs`) check that all engines — and layered vs fresh-load
//! stores — derive identical fact sets on random programs, and the
//! `datalog_engine` / `datalog_parallel` / `session_cow` benches track the
//! speedups.

use std::collections::BTreeSet;

use cqa_core::symbol::Symbol;
use cqa_db::instance::DatabaseInstance;

use crate::ast::{Predicate, Program, Rule, RuleVars};
use crate::kernel::{
    compile_kernel, CsrSlotSpec, CsrSlots, KernelExecutor, KernelRule, KernelSpace,
};
use crate::parallel::{evaluate_stratum_parallel, EvalOptions, EvalStats, WorkerPool};
use crate::plan::{compile_rule, CompiledRule, IndexSlots, IndexSpace, Op, ProbeSlot};
use crate::stratify::{stratify, StratifyError};

pub use crate::reference;
pub use crate::store::{
    edb_base_from_instance, edb_from_instance, edb_overlay_on, BaseStore, PredId, PredTable,
    RelationStore, Tuples, UnaryView,
};
pub use crate::tuple::Tuple;

/// Errors produced by compilation and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The program is not stratifiable.
    Stratification(StratifyError),
    /// A rule is unsafe (an unbound variable in the head, a negative literal
    /// or a builtin).
    UnsafeRule(String),
    /// A predicate was used at the wrong arity.
    ArityMismatch {
        /// The offending predicate.
        pred: Predicate,
        /// The arity the operation requires.
        expected: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Stratification(e) => write!(f, "stratification error: {e}"),
            EngineError::UnsafeRule(r) => write!(f, "unsafe rule: {r}"),
            EngineError::ArityMismatch { pred, expected } => write!(
                f,
                "arity mismatch: {pred} has arity {}, expected {expected}",
                pred.arity
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StratifyError> for EngineError {
    fn from(e: StratifyError) -> EngineError {
        EngineError::Stratification(e)
    }
}

/// One stratum's compiled plans.
#[derive(Debug)]
pub(crate) struct CompiledStratum {
    /// The stratum's predicates, as program-scoped ids; delta watermarks are
    /// tracked positionally against this list.
    pub(crate) preds: Vec<PredId>,
    /// One full (non-delta) plan per rule of the stratum.
    pub(crate) full_plans: Vec<CompiledRule>,
    /// Delta-restricted plans, keyed by the position of the delta predicate
    /// in `preds`.
    pub(crate) delta_plans: Vec<(usize, CompiledRule)>,
    /// Every `(slot, pred, mask)` index this stratum's probes use, deduped.
    /// The parallel driver extends exactly these slots once per round and
    /// then shares the index space read-only across its workers — all of
    /// them when kernels are off, only `generic_probe_slots` when on.
    pub(crate) probe_slots: Vec<ProbeSlot>,
    /// Kernel translations of `full_plans`, aligned by index; `None` marks a
    /// rule that keeps the generic path (see [`crate::kernel`]).
    pub(crate) full_kernels: Vec<Option<KernelRule>>,
    /// Kernel translations of `delta_plans`, aligned by index.
    pub(crate) delta_kernels: Vec<Option<KernelRule>>,
    /// Every CSR adjacency this stratum's kernels probe, deduped; the
    /// parallel driver prepares exactly these once per round.
    pub(crate) csr_slots: Vec<CsrSlotSpec>,
    /// The subset of `probe_slots` some kernel-less plan probes. When
    /// kernels execute, only these hash indexes need extending per round —
    /// extending the rest would rebuild exactly the structures the kernels
    /// bypass.
    pub(crate) generic_probe_slots: Vec<ProbeSlot>,
    /// Whether this stratum can be *checkpointed*: every rule is negation-free
    /// and every positive body literal is EDB, same-stratum, or from an
    /// earlier checkpointable stratum — so its fixpoint over a base EDB is a
    /// valid semi-naive intermediate state for any EDB extension, and
    /// per-request evaluation can resume from it instead of re-deriving.
    pub(crate) checkpointable: bool,
    /// Resume plans of a checkpointable stratum: for every positive body
    /// literal position on a *non*-same-stratum predicate, the rule compiled
    /// with a forced leading scan at that position, keyed by the scanned
    /// predicate's program-scoped id. A resumed run fires each of these over
    /// the predicate's overlay segment only (the EDB delta, or tuples an
    /// earlier checkpointable stratum derived in the same run), replacing the
    /// initial full-plan round; the ordinary delta loop then closes
    /// same-stratum recursion. Empty for non-checkpointable strata.
    pub(crate) resume_plans: Vec<(PredId, CompiledRule)>,
    /// Index slots the resume plans probe; the parallel driver extends these
    /// once at resume-round entry (they may be disjoint from
    /// `generic_probe_slots`, which only covers full/delta plans).
    pub(crate) resume_probe_slots: Vec<ProbeSlot>,
}

/// A program compiled once and evaluated many times: stratified join plans,
/// the dense predicate table they refer to, and the index-slot layout.
///
/// A compiled program is immutable and `Sync`, so it can be shared across
/// threads and cached across calls — [`crate::plan_cache::PlanCache`] keys
/// compiled programs by program identity, and
/// [`crate::cqa_program::CqaProgram`] carries one per generated CQA program.
#[derive(Debug)]
pub struct CompiledProgram {
    preds: PredTable,
    pub(crate) strata: Vec<CompiledStratum>,
    pub(crate) num_index_slots: usize,
    /// Distinct CSR adjacencies the program's kernels probe (see
    /// [`crate::kernel::CsrSlots`]).
    pub(crate) num_csr_slots: usize,
    /// Compiled plans (full + delta, across strata) with a kernel
    /// translation; stamped into [`EvalStats`] when kernels execute.
    pub(crate) kernel_rules: u64,
    /// Compiled plans without one.
    pub(crate) generic_rules: u64,
    /// Per-stratum differential maintenance plans (see [`crate::maintain`]).
    pub(crate) maintain: crate::maintain::MaintainProgram,
}

impl CompiledProgram {
    /// Compiles a program: safety check, stratification, variable numbering,
    /// join planning (full + delta plans), predicate interning and index-slot
    /// assignment.
    pub fn compile(program: &Program) -> Result<CompiledProgram, EngineError> {
        for rule in &program.rules {
            if !rule.is_safe() {
                return Err(EngineError::UnsafeRule(rule.to_string()));
            }
        }
        let strat = stratify(program)?;
        let numberings: Vec<RuleVars> = program.rules.iter().map(RuleVars::of).collect();
        let mut preds = PredTable::default();
        // EDB predicates first, so extensional relations get the lowest ids
        // regardless of rule order.
        for &p in &program.edb {
            preds.intern(p);
        }
        let mut islots = IndexSlots::default();
        let mut kslots = CsrSlots::default();
        let mut strata = Vec::with_capacity(strat.strata.len());
        // Grows stratum by stratum: the predicates whose fixpoint a base
        // checkpoint may hold (EDB, then every checkpointable stratum in
        // order). A stratum depending on anything outside this set cannot be
        // pre-evaluated — those tuples don't exist at checkpoint-build time.
        let mut checkpointable_preds: BTreeSet<Predicate> = program.edb.iter().copied().collect();
        for stratum_preds in &strat.strata {
            let stratum: BTreeSet<Predicate> = stratum_preds.iter().copied().collect();
            let rules: Vec<(usize, &Rule)> = program
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| stratum.contains(&r.head.pred))
                .collect();
            let pred_ids: Vec<PredId> = stratum_preds.iter().map(|&p| preds.intern(p)).collect();
            let full_plans: Vec<CompiledRule> = rules
                .iter()
                .map(|&(i, rule)| compile_rule(rule, &numberings[i], None, &mut preds, &mut islots))
                .collect();
            let mut delta_plans: Vec<(usize, CompiledRule)> = Vec::new();
            for &(i, rule) in &rules {
                for (pos, literal) in rule.body.iter().enumerate() {
                    if let crate::ast::BodyLiteral::Positive(atom) = literal {
                        if let Some(delta_idx) = stratum_preds.iter().position(|&p| p == atom.pred)
                        {
                            delta_plans.push((
                                delta_idx,
                                compile_rule(
                                    rule,
                                    &numberings[i],
                                    Some(pos),
                                    &mut preds,
                                    &mut islots,
                                ),
                            ));
                        }
                    }
                }
            }
            // Checkpoint eligibility and resume plans. Negation disqualifies
            // (the stratum's output can shrink under EDB growth); builtins
            // are pure filters and keep monotonicity.
            let checkpointable = rules.iter().all(|&(_, rule)| {
                rule.body.iter().all(|literal| match literal {
                    crate::ast::BodyLiteral::Positive(atom) => {
                        stratum.contains(&atom.pred) || checkpointable_preds.contains(&atom.pred)
                    }
                    crate::ast::BodyLiteral::Negative(_) => false,
                    crate::ast::BodyLiteral::Builtin(_) => true,
                })
            });
            let mut resume_plans: Vec<(PredId, CompiledRule)> = Vec::new();
            if checkpointable {
                checkpointable_preds.extend(stratum_preds.iter().copied());
                for &(i, rule) in &rules {
                    for (pos, literal) in rule.body.iter().enumerate() {
                        if let crate::ast::BodyLiteral::Positive(atom) = literal {
                            if !stratum.contains(&atom.pred) {
                                resume_plans.push((
                                    preds.intern(atom.pred),
                                    compile_rule(
                                        rule,
                                        &numberings[i],
                                        Some(pos),
                                        &mut preds,
                                        &mut islots,
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            let mut resume_probe_slots: Vec<ProbeSlot> = Vec::new();
            for (_, plan) in &resume_plans {
                for op in &plan.ops {
                    if let Op::Probe(ap) = op {
                        let ps = ProbeSlot {
                            slot: ap.index_slot,
                            pred: ap.pred,
                            mask: ap.mask,
                        };
                        if !resume_probe_slots.contains(&ps) {
                            resume_probe_slots.push(ps);
                        }
                    }
                }
            }
            resume_probe_slots.sort_by_key(|ps| ps.slot);
            // Kernel selection: translate each plan to the specialized
            // register machine where the fragment allows (per-rule fallback
            // otherwise — see `crate::kernel`). The stratum's own predicates
            // are passed so probes into the growing stratum are declined.
            let full_kernels: Vec<Option<KernelRule>> = full_plans
                .iter()
                .map(|plan| compile_kernel(plan, &pred_ids, &mut kslots))
                .collect();
            let delta_kernels: Vec<Option<KernelRule>> = delta_plans
                .iter()
                .map(|(_, plan)| compile_kernel(plan, &pred_ids, &mut kslots))
                .collect();
            let mut csr_slots: Vec<CsrSlotSpec> = Vec::new();
            for kernel in full_kernels.iter().chain(&delta_kernels).flatten() {
                for &spec in &kernel.csr_slots {
                    if !csr_slots.contains(&spec) {
                        csr_slots.push(spec);
                    }
                }
            }
            csr_slots.sort_by_key(|spec| spec.slot);
            let mut probe_slots: Vec<ProbeSlot> = Vec::new();
            let mut generic_probe_slots: Vec<ProbeSlot> = Vec::new();
            let plans_and_kernels = full_plans
                .iter()
                .zip(&full_kernels)
                .chain(delta_plans.iter().map(|(_, p)| p).zip(&delta_kernels));
            for (plan, kernel) in plans_and_kernels {
                for op in &plan.ops {
                    if let Op::Probe(ap) = op {
                        let ps = ProbeSlot {
                            slot: ap.index_slot,
                            pred: ap.pred,
                            mask: ap.mask,
                        };
                        if !probe_slots.contains(&ps) {
                            probe_slots.push(ps);
                        }
                        if kernel.is_none() && !generic_probe_slots.contains(&ps) {
                            generic_probe_slots.push(ps);
                        }
                    }
                }
            }
            probe_slots.sort_by_key(|ps| ps.slot);
            generic_probe_slots.sort_by_key(|ps| ps.slot);
            strata.push(CompiledStratum {
                preds: pred_ids,
                full_plans,
                delta_plans,
                probe_slots,
                full_kernels,
                delta_kernels,
                csr_slots,
                generic_probe_slots,
                checkpointable,
                resume_plans,
                resume_probe_slots,
            });
        }
        let kernel_rules: u64 = strata
            .iter()
            .flat_map(|s| s.full_kernels.iter().chain(&s.delta_kernels))
            .filter(|k| k.is_some())
            .count() as u64;
        let total_rules: u64 = strata
            .iter()
            .map(|s| (s.full_plans.len() + s.delta_plans.len()) as u64)
            .sum();
        let maintain = crate::maintain::MaintainProgram::build(
            program,
            &strat.strata,
            &numberings,
            &mut preds,
        );
        Ok(CompiledProgram {
            preds,
            strata,
            num_index_slots: islots.len(),
            num_csr_slots: kslots.len(),
            kernel_rules,
            generic_rules: total_rules - kernel_rules,
            maintain,
        })
    }

    /// The compiled program's predicate table (program-scoped ids).
    pub fn preds(&self) -> &PredTable {
        &self.preds
    }

    /// Runs the program on the EDB extracted from `db`, returning all derived
    /// relations (the EDB tuples are included in the result).
    pub fn run(&self, db: &DatabaseInstance) -> RelationStore {
        Evaluator::new(self).run(db)
    }

    /// Runs the program on an explicitly provided EDB store.
    pub fn run_on_store(&self, store: RelationStore) -> RelationStore {
        Evaluator::new(self).run_on_store(store)
    }

    /// Runs the program on the EDB extracted from `db` with explicit
    /// evaluation options (thread count).
    pub fn run_with(&self, db: &DatabaseInstance, options: &EvalOptions) -> RelationStore {
        Evaluator::with_options(self, *options).run(db)
    }

    /// Runs the program on an explicit EDB store with explicit options.
    pub fn run_on_store_with(&self, store: RelationStore, options: &EvalOptions) -> RelationStore {
        Evaluator::with_options(self, *options).run_on_store(store)
    }

    /// Like [`CompiledProgram::run_on_store_with`], additionally reporting
    /// evaluation statistics (rounds, index-extension passes, threads used).
    pub fn run_on_store_with_stats(
        &self,
        store: RelationStore,
        options: &EvalOptions,
    ) -> (RelationStore, EvalStats) {
        Evaluator::with_options(self, *options).run_on_store_with_stats(store)
    }

    /// True iff at least one stratum with rules is checkpointable — i.e.
    /// [`CompiledProgram::checkpoint_base`] would pre-derive something and a
    /// resumed run would skip work. When false, resuming degenerates to a
    /// plain run and callers should not bother building a checkpoint.
    pub fn has_checkpointable_strata(&self) -> bool {
        self.strata
            .iter()
            .any(|s| s.checkpointable && !s.full_plans.is_empty())
    }

    /// Builds this program's **checkpointed variant** of a frozen base: a new
    /// [`BaseStore`] holding the base's relations plus the fixpoint of every
    /// checkpointable stratum (evaluated sequentially, once). Evaluating an
    /// overlay on the returned base with
    /// [`CompiledProgram::resume_on_store_with_stats`] derives exactly what a
    /// from-scratch run on the raw base derives — the checkpoint only moves
    /// the prefix-determined part of that work out of the request path.
    ///
    /// Callers should cache the result per (base, program); see
    /// [`BaseStore::checkpoint`].
    pub fn checkpoint_base(&self, base: &BaseStore) -> std::sync::Arc<BaseStore> {
        let (store, _) = Evaluator::with_options(self, EvalOptions::sequential()).run_inner(
            base.thaw(),
            false,
            true,
        );
        BaseStore::freeze(store)
    }

    /// Runs the program on an overlay over a **checkpointed** base (built by
    /// [`CompiledProgram::checkpoint_base`] from the same program), resuming
    /// checkpointable strata semi-naive from the checkpoint: their initial
    /// full-plan round is replaced by delta-restricted resume plans over the
    /// overlay segments, and non-checkpointable strata re-run from scratch as
    /// usual. The resulting fact set is identical to
    /// [`CompiledProgram::run_on_store_with_stats`] on the raw base;
    /// [`EvalStats::checkpoint_hits`] counts the resumed strata.
    pub fn resume_on_store_with_stats(
        &self,
        store: RelationStore,
        options: &EvalOptions,
    ) -> (RelationStore, EvalStats) {
        Evaluator::with_options(self, *options).run_inner(store, true, false)
    }
}

/// Evaluates a [`CompiledProgram`] over a database instance; all per-run
/// state (indexes, binding scratch) lives inside a single `run*` call, so an
/// evaluator is free to be shared or rebuilt at will.
pub struct Evaluator<'a> {
    compiled: &'a CompiledProgram,
    options: EvalOptions,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator borrowing a compiled program, with default
    /// options ([`crate::parallel::Threads::Auto`]: the `PATH_CQA_THREADS`
    /// environment variable if set, otherwise the host's available
    /// parallelism — so multicore hosts evaluate in parallel by default;
    /// use [`crate::parallel::EvalOptions::sequential`] to pin the exact
    /// single-threaded path).
    pub fn new(compiled: &'a CompiledProgram) -> Evaluator<'a> {
        Evaluator::with_options(compiled, EvalOptions::default())
    }

    /// Creates an evaluator with explicit evaluation options.
    pub fn with_options(compiled: &'a CompiledProgram, options: EvalOptions) -> Evaluator<'a> {
        Evaluator { compiled, options }
    }

    /// Runs the program on the EDB extracted from `db`, returning all derived
    /// relations (the EDB tuples are included in the result).
    pub fn run(&self, db: &DatabaseInstance) -> RelationStore {
        self.run_on_store(edb_from_instance(db))
    }

    /// Runs the program on an explicitly provided EDB store (flat, or an
    /// overlay forked from a shared base — see [`crate::store`]).
    pub fn run_on_store(&self, store: RelationStore) -> RelationStore {
        self.run_on_store_with_stats(store).0
    }

    /// Runs the program, additionally reporting evaluation statistics.
    ///
    /// With one resolved thread this is *exactly* the sequential semi-naive
    /// loop (the stats bookkeeping never changes what is derived, or in which
    /// order); with more it switches to the parallel per-round driver of
    /// [`crate::parallel`].
    pub fn run_on_store_with_stats(&self, store: RelationStore) -> (RelationStore, EvalStats) {
        self.run_inner(store, false, false)
    }

    /// The shared driver behind every `run*` entry point. `resume` makes
    /// checkpointable strata start from their base checkpoint (resume plans
    /// over overlay segments instead of the full-plan round);
    /// `only_checkpointable` restricts the run to checkpointable strata (the
    /// checkpoint *construction* pass — see
    /// [`CompiledProgram::checkpoint_base`]).
    fn run_inner(
        &self,
        mut store: RelationStore,
        resume: bool,
        only_checkpointable: bool,
    ) -> (RelationStore, EvalStats) {
        // Translate program-scoped ids to store-scoped ids once per run; the
        // inner loop then only does vector indexing.
        let pred_map: Vec<PredId> = self
            .compiled
            .preds
            .iter()
            .map(|(_, pred)| store.intern(pred))
            .collect();
        let threads = self.options.threads.resolve();
        let use_kernels = self.options.kernels.resolve();
        let mut indexes = IndexSpace::new(self.compiled.num_index_slots);
        let mut kspace = KernelSpace::new(self.compiled.num_csr_slots);
        let mut stats = EvalStats::new(threads);
        if use_kernels {
            stats.kernel_rules = self.compiled.kernel_rules;
            stats.generic_rules = self.compiled.generic_rules;
        } else {
            stats.generic_rules = self.compiled.kernel_rules + self.compiled.generic_rules;
        }
        // Generation counts successful inserts only (flat stores and
        // overlays alike), so the watermark delta is exactly the tuples this
        // run derived, independent of how the EDB was loaded.
        let start_generation = store.generation();
        if threads <= 1 {
            let mut executor = Executor::default();
            let mut kexec = KernelExecutor::default();
            for stratum in &self.compiled.strata {
                if only_checkpointable && !stratum.checkpointable {
                    continue;
                }
                let timer = cqa_obs::Stopwatch::start();
                evaluate_stratum(
                    stratum,
                    &pred_map,
                    &mut store,
                    &mut indexes,
                    &mut kspace,
                    use_kernels,
                    resume,
                    &mut executor,
                    &mut kexec,
                    &mut stats,
                );
                let ns = timer.elapsed_ns();
                stats.eval_ns += ns;
                cqa_obs::record_span(cqa_obs::Span::StratumEval, ns);
            }
        } else {
            let mut pool = WorkerPool::new(threads);
            for stratum in &self.compiled.strata {
                if only_checkpointable && !stratum.checkpointable {
                    continue;
                }
                let timer = cqa_obs::Stopwatch::start();
                evaluate_stratum_parallel(
                    stratum,
                    &pred_map,
                    &mut store,
                    &mut indexes,
                    &mut kspace,
                    use_kernels,
                    resume,
                    &mut pool,
                    &mut stats,
                );
                let ns = timer.elapsed_ns();
                stats.eval_ns += ns;
                cqa_obs::record_span(cqa_obs::Span::StratumEval, ns);
            }
        }
        stats.index_extensions = indexes.extensions();
        stats.base_index_builds = indexes.base_builds() + kspace.base_builds();
        stats.index_build_ns = indexes.build_ns() + kspace.build_ns();
        if stats.index_build_ns > 0 {
            cqa_obs::record_span(cqa_obs::Span::IndexBuild, stats.index_build_ns);
        }
        stats.tuples_derived = store.generation() - start_generation;
        (store, stats)
    }
}

/// Semi-naive evaluation of one stratum with compiled plans. Each rule runs
/// through its kernel when one was compiled and kernels are enabled for the
/// run, the generic executor otherwise; the kernel's CSR adjacencies are
/// brought up to date just before each kernel execution (a no-op unless the
/// probed relation grew, which — kernels only probe outside the stratum —
/// happens at most once per stratum).
#[allow(clippy::too_many_arguments)]
fn evaluate_stratum(
    stratum: &CompiledStratum,
    pred_map: &[PredId],
    store: &mut RelationStore,
    indexes: &mut IndexSpace,
    kspace: &mut KernelSpace,
    use_kernels: bool,
    resume: bool,
    executor: &mut Executor,
    kexec: &mut KernelExecutor,
    stats: &mut EvalStats,
) {
    // The predicates whose growth drives the iteration.
    let watermark = |store: &RelationStore| -> Vec<usize> {
        stratum
            .preds
            .iter()
            .map(|&p| store.len_of(pred_map[p.index()]))
            .collect()
    };

    let mut low = watermark(store);
    let mut derived: Vec<Tuple> = Vec::new();

    stats.rounds += 1;
    if resume && stratum.checkpointable {
        // Resume round: the base already holds this stratum's checkpoint
        // fixpoint, so each resume plan fires only over the overlay segment
        // of its non-same-stratum scan predicate (the EDB delta, or tuples an
        // earlier checkpointable stratum derived in this run); `low` was
        // taken above, so the delta loop below closes same-stratum recursion
        // over everything inserted here.
        stats.checkpoint_hits += 1;
        for (pred, plan) in &stratum.resume_plans {
            let tuples = store.tuples_by_id(pred_map[pred.index()]);
            let (lo, hi) = (tuples.base_len(), tuples.len());
            if lo == hi {
                continue;
            }
            derived.clear();
            executor.derive(
                plan,
                pred_map,
                store,
                &mut Probing::Lazy(indexes),
                Some((lo, hi)),
                &mut derived,
            );
            let head = pred_map[plan.head_pred.index()];
            for tuple in derived.drain(..) {
                store.insert_by_id(head, tuple);
            }
        }
    } else {
        // Initial round: every rule against the full store.
        for (plan, kernel) in stratum.full_plans.iter().zip(&stratum.full_kernels) {
            derived.clear();
            match kernel {
                Some(k) if use_kernels => {
                    for &spec in &k.csr_slots {
                        kspace.prepare(spec, pred_map, store);
                    }
                    stats.kernel_invocations += 1;
                    kexec.derive(k, pred_map, store, kspace, None, &mut derived);
                }
                _ => executor.derive(
                    plan,
                    pred_map,
                    store,
                    &mut Probing::Lazy(indexes),
                    None,
                    &mut derived,
                ),
            }
            let head = pred_map[plan.head_pred.index()];
            for tuple in derived.drain(..) {
                store.insert_by_id(head, tuple);
            }
        }
    }

    // Non-recursive stratum: nothing to iterate. (Entering the loop would
    // derive nothing either, but would count a phantom round that the
    // parallel driver — which returns here too — does not.)
    if stratum.delta_plans.is_empty() {
        return;
    }

    // Iterate: each recursive plan consumes the delta range of its delta
    // predicate — the tuples appended during the previous round.
    loop {
        let high = watermark(store);
        if high == low {
            break;
        }
        stats.rounds += 1;
        for ((delta_idx, plan), kernel) in stratum.delta_plans.iter().zip(&stratum.delta_kernels) {
            let (lo, hi) = (low[*delta_idx], high[*delta_idx]);
            if lo == hi {
                continue;
            }
            derived.clear();
            match kernel {
                Some(k) if use_kernels => {
                    for &spec in &k.csr_slots {
                        kspace.prepare(spec, pred_map, store);
                    }
                    stats.kernel_invocations += 1;
                    kexec.derive(k, pred_map, store, kspace, Some((lo, hi)), &mut derived);
                }
                _ => executor.derive(
                    plan,
                    pred_map,
                    store,
                    &mut Probing::Lazy(indexes),
                    Some((lo, hi)),
                    &mut derived,
                ),
            }
            let head = pred_map[plan.head_pred.index()];
            for tuple in derived.drain(..) {
                store.insert_by_id(head, tuple);
            }
        }
        low = high;
    }
}

/// How the executor reaches the probe indexes.
///
/// The sequential engine owns the [`IndexSpace`] mutably and extends slots
/// lazily inside every probe (`Lazy`); parallel workers share it read-only
/// after the round driver extended every slot the stratum needs (`Ready`).
/// A single match per probe keeps the two modes on one code path.
pub(crate) enum Probing<'a> {
    /// Extend-on-probe: the original sequential behavior.
    Lazy(&'a mut IndexSpace),
    /// Read-only lookups against pre-extended slots.
    Ready(&'a IndexSpace),
}

/// Reusable execution state: the flat binding array and per-depth candidate
/// buffers. Nothing here allocates per candidate tuple.
#[derive(Debug, Default)]
pub(crate) struct Executor {
    bindings: Vec<Option<Symbol>>,
    id_bufs: Vec<Vec<u32>>,
}

impl Executor {
    /// Derives all head tuples of a compiled rule into `out`. If `delta` is
    /// given, the first op (the delta literal's scan) enumerates only that id
    /// range of its predicate.
    pub(crate) fn derive(
        &mut self,
        plan: &CompiledRule,
        pred_map: &[PredId],
        store: &RelationStore,
        probing: &mut Probing<'_>,
        delta: Option<(usize, usize)>,
        out: &mut Vec<Tuple>,
    ) {
        self.bindings.clear();
        self.bindings.resize(plan.num_vars, None);
        if self.id_bufs.len() < plan.ops.len() {
            self.id_bufs.resize_with(plan.ops.len(), Vec::new);
        }
        self.step(plan, 0, pred_map, store, probing, delta, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        plan: &CompiledRule,
        depth: usize,
        pred_map: &[PredId],
        store: &RelationStore,
        probing: &mut Probing<'_>,
        delta: Option<(usize, usize)>,
        out: &mut Vec<Tuple>,
    ) {
        let Some(op) = plan.ops.get(depth) else {
            out.push(
                plan.head
                    .iter()
                    .map(|slot| slot.resolve(&self.bindings))
                    .collect(),
            );
            return;
        };
        match op {
            Op::Scan(ap) => {
                let tuples = store.tuples_by_id(pred_map[ap.pred.index()]);
                let (lo, hi) = match delta {
                    Some(range) if depth == 0 => range,
                    _ => (0, tuples.len()),
                };
                // Two tight per-segment loops instead of one chained
                // iterator; a flat store's base segment is empty, so this is
                // the original single-slice scan there.
                let (base, overlay) = tuples.segments(lo, hi);
                for segment in [base, overlay] {
                    for tuple in segment {
                        if self.try_match(ap, tuple) {
                            self.step(plan, depth + 1, pred_map, store, probing, delta, out);
                        }
                        self.reset(ap);
                    }
                }
            }
            Op::Probe(ap) => {
                let key: Tuple = ap
                    .key
                    .iter()
                    .map(|slot| slot.resolve(&self.bindings))
                    .collect();
                let mut ids = std::mem::take(&mut self.id_bufs[depth]);
                ids.clear();
                let pred = pred_map[ap.pred.index()];
                let tuples = store.tuples_by_id(pred);
                match probing {
                    Probing::Lazy(indexes) => {
                        indexes.probe(ap.index_slot, store, pred, ap.mask, &key, &mut ids)
                    }
                    Probing::Ready(indexes) => indexes.probe_ready(ap.index_slot, &key, &mut ids),
                }
                for &id in &ids {
                    if self.try_match(ap, tuples.get(id as usize)) {
                        self.step(plan, depth + 1, pred_map, store, probing, delta, out);
                    }
                    self.reset(ap);
                }
                self.id_bufs[depth] = ids;
            }
            Op::Exists(ap) => {
                let ground: Tuple = ap
                    .key
                    .iter()
                    .map(|slot| slot.resolve(&self.bindings))
                    .collect();
                if store.contains_by_id(pred_map[ap.pred.index()], &ground) {
                    self.step(plan, depth + 1, pred_map, store, probing, delta, out);
                }
            }
            Op::Negative { pred, args } => {
                let ground: Tuple = args
                    .iter()
                    .map(|slot| slot.resolve(&self.bindings))
                    .collect();
                if !store.contains_by_id(pred_map[pred.index()], &ground) {
                    self.step(plan, depth + 1, pred_map, store, probing, delta, out);
                }
            }
            Op::Filter(builtin) => {
                if builtin.holds(&self.bindings) {
                    self.step(plan, depth + 1, pred_map, store, probing, delta, out);
                }
            }
        }
    }

    /// Applies an atom's non-key actions against a candidate tuple.
    #[inline]
    fn try_match(&mut self, ap: &crate::plan::AtomPlan, tuple: &Tuple) -> bool {
        use crate::plan::SlotAction;
        for &(pos, action) in &ap.rest {
            let value = tuple[pos];
            match action {
                SlotAction::Bind(v) => self.bindings[v as usize] = Some(value),
                SlotAction::CheckVar(v) => {
                    if self.bindings[v as usize] != Some(value) {
                        return false;
                    }
                }
                SlotAction::CheckConst(c) => {
                    if c != value {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Clears the bindings an atom wrote (its static `binds` list).
    #[inline]
    fn reset(&mut self, ap: &crate::plan::AtomPlan) {
        for &v in &ap.binds {
            self.bindings[v as usize] = None;
        }
    }
}

/// Convenience: compiles and evaluates a program over a database instance
/// with the indexed engine. Callers that evaluate the same program more than
/// once should compile once ([`CompiledProgram::compile`], or
/// [`crate::plan_cache::PlanCache`] for cross-call reuse) and call
/// [`CompiledProgram::run`] instead.
pub fn evaluate(program: &Program, db: &DatabaseInstance) -> Result<RelationStore, EngineError> {
    Ok(CompiledProgram::compile(program)?.run(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Rule};

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn atom(name: &str, vars: &[&str]) -> DlAtom {
        DlAtom::new(
            pred(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn chain_db(n: usize) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for i in 0..n {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    fn reachability_program() -> Program {
        let mut p = Program::new();
        p.declare_edb(pred("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("E", &["Y", "Z"])),
            ],
        ));
        p
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = chain_db(5);
        let store = evaluate(&reachability_program(), &db).unwrap();
        let path = pred("path", 2);
        // 6 nodes, closure of a chain has n(n+1)/2 = 15 pairs.
        assert_eq!(store.len(path), 15);
        assert!(store.contains(path, &[sym("n0"), sym("n5")]));
        assert!(!store.contains(path, &[sym("n5"), sym("n0")]));
    }

    #[test]
    fn compiled_programs_are_reusable_across_instances() {
        let compiled = CompiledProgram::compile(&reachability_program()).unwrap();
        let evaluator = Evaluator::new(&compiled);
        let path = pred("path", 2);
        assert_eq!(evaluator.run(&chain_db(5)).len(path), 15);
        assert_eq!(evaluator.run(&chain_db(3)).len(path), 6);
        // Again with the first instance: the shared plans are not consumed.
        assert_eq!(compiled.run(&chain_db(5)).len(path), 15);
    }

    #[test]
    fn closure_of_a_cycle_terminates() {
        let mut db = chain_db(3);
        db.insert_parsed("E", "n3", "n0");
        let store = evaluate(&reachability_program(), &db).unwrap();
        let path = pred("path", 2);
        // Four nodes on a cycle: every node reaches every node, 16 pairs.
        assert_eq!(store.len(path), 16);
    }

    #[test]
    fn stratified_negation_complement() {
        let mut program = reachability_program();
        program.declare_edb(pred("adom", 1));
        program.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
            ],
        ));
        let db = chain_db(2);
        let store = evaluate(&program, &db).unwrap();
        let unreach = pred("unreach", 2);
        assert!(store.contains(unreach, &[sym("n2"), sym("n0")]));
        assert!(!store.contains(unreach, &[sym("n0"), sym("n2")]));
        // Every node "unreaches" itself (no self-loops in a chain).
        assert!(store.contains(unreach, &[sym("n1"), sym("n1")]));
    }

    #[test]
    fn checkpointability_follows_negation_and_edb_dependence() {
        // Pure monotone EDB-closure: every stratum is checkpointable.
        let monotone = CompiledProgram::compile(&reachability_program()).unwrap();
        assert!(monotone.strata.iter().all(|s| s.checkpointable));
        assert!(monotone.has_checkpointable_strata());
        assert!(
            monotone.strata.iter().any(|s| !s.resume_plans.is_empty()),
            "monotone strata need resume plans"
        );

        // Adding a negation-dependent stratum: `path` stays checkpointable,
        // `unreach` (negating it) does not.
        let mut program = reachability_program();
        program.declare_edb(pred("adom", 1));
        program.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
            ],
        ));
        let mixed = CompiledProgram::compile(&program).unwrap();
        let flags: Vec<bool> = mixed.strata.iter().map(|s| s.checkpointable).collect();
        assert!(
            flags.contains(&true) && flags.contains(&false),
            "expected a mix of checkpointable and not, got {flags:?}"
        );
        // A stratum depending (positively) on a non-checkpointable one is
        // itself not checkpointable: derived-from-unreach can't resume.
        let mut tainted = program;
        tainted.add_rule(Rule::new(
            atom("tainted", &["X"]),
            vec![BodyLiteral::Positive(atom("unreach", &["X", "X"]))],
        ));
        let compiled = CompiledProgram::compile(&tainted).unwrap();
        let tainted_stratum = compiled
            .strata
            .iter()
            .find(|s| {
                s.full_plans
                    .iter()
                    .any(|p| compiled.preds.predicate(p.head_pred).name.as_str() == "tainted")
            })
            .expect("tainted stratum");
        assert!(!tainted_stratum.checkpointable);
    }

    #[test]
    fn resume_from_checkpoint_matches_scratch() {
        // Freeze a chain prefix, checkpoint it, then overlay edges that both
        // extend the chain and merge into it; the resumed store must equal a
        // from-scratch run on the raw base, for a monotone program and for
        // one with a negation-dependent stratum on top.
        let mut program = reachability_program();
        program.declare_edb(pred("adom", 1));
        program.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
            ],
        ));
        let compiled = CompiledProgram::compile(&program).unwrap();

        let base = crate::store::edb_base_from_instance(&chain_db(6));
        let checkpointed = compiled.checkpoint_base(&base);
        let mut delta = DatabaseInstance::new();
        delta.insert_parsed("E", "n6", "n7"); // extends the chain
        delta.insert_parsed("E", "m0", "n0"); // new source merging in
        let options = EvalOptions::sequential();
        let (scratch, scratch_stats) =
            compiled.run_on_store_with_stats(crate::store::edb_overlay_on(&base, &delta), &options);
        let (resumed, resumed_stats) = compiled.resume_on_store_with_stats(
            crate::store::edb_overlay_on(&checkpointed, &delta),
            &options,
        );
        let path = pred("path", 2);
        let unreach = pred("unreach", 2);
        for p in [path, unreach] {
            assert_eq!(resumed.len(p), scratch.len(p), "{p:?} cardinality drifted");
        }
        assert!(resumed.contains(path, &[sym("m0"), sym("n7")]));
        assert!(resumed_stats.checkpoint_hits > 0, "{resumed_stats:?}");
        assert_eq!(scratch_stats.checkpoint_hits, 0);
        assert!(
            resumed_stats.tuples_derived < scratch_stats.tuples_derived,
            "resume must skip the prefix-internal closure ({} vs {})",
            resumed_stats.tuples_derived,
            scratch_stats.tuples_derived
        );

        // An empty overlay resumes to exactly the checkpointed fixpoint.
        let empty = DatabaseInstance::new();
        let (idle, idle_stats) = compiled.resume_on_store_with_stats(
            crate::store::edb_overlay_on(&checkpointed, &empty),
            &options,
        );
        let (full, _) =
            compiled.run_on_store_with_stats(crate::store::edb_overlay_on(&base, &empty), &options);
        assert_eq!(idle.len(path), full.len(path));
        assert_eq!(idle.len(unreach), full.len(unreach));
        // Checkpointable strata derive nothing on an empty overlay; only the
        // negation-dependent stratum re-runs, so the resumed derivation
        // count is exactly the re-derived `unreach` tuples.
        assert_eq!(
            idle_stats.tuples_derived,
            idle.len(unreach) as u64,
            "an empty overlay must re-derive only the non-checkpointable strata"
        );
    }

    #[test]
    fn builtins_filter_bindings() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("loopless", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("E", &["X", "Y"])),
                BodyLiteral::Builtin(Builtin::Neq(DlTerm::var("X"), DlTerm::var("Y"))),
            ],
        ));
        let mut db = DatabaseInstance::new();
        db.insert_parsed("E", "a", "a");
        db.insert_parsed("E", "a", "b");
        let store = evaluate(&program, &db).unwrap();
        assert_eq!(store.len(pred("loopless", 2)), 1);
        assert!(store.contains(pred("loopless", 2), &[sym("a"), sym("b")]));
    }

    #[test]
    fn key_consistent_builtin_semantics() {
        use crate::plan::{CompiledBuiltin, Slot};
        let bindings = [
            Some(sym("a")), // X1
            Some(sym("b")), // Y1
            Some(sym("a")), // X2
            Some(sym("c")), // Y2
        ];
        let v = |i: u32| Slot::Var(i);
        let conflicting = CompiledBuiltin::KeyConsistent(v(0), v(1), v(2), v(3));
        assert!(!conflicting.holds(&bindings));
        let same_value = CompiledBuiltin::KeyConsistent(v(0), v(1), v(2), v(1));
        assert!(same_value.holds(&bindings));
        let different_key = CompiledBuiltin::KeyConsistent(v(0), v(1), v(1), v(3));
        assert!(different_key.holds(&bindings));
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("bad", &["X", "Z"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        let db = chain_db(1);
        assert!(matches!(
            CompiledProgram::compile(&program),
            Err(EngineError::UnsafeRule(_))
        ));
        assert!(matches!(
            evaluate(&program, &db),
            Err(EngineError::UnsafeRule(_))
        ));
        assert!(matches!(
            reference::evaluate_scan(&program, &db),
            Err(EngineError::UnsafeRule(_))
        ));
    }

    #[test]
    fn constants_in_rules_are_matched() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("from_a", &["Y"]),
            vec![BodyLiteral::Positive(DlAtom::new(
                pred("E", 2),
                vec![DlTerm::constant("a"), DlTerm::var("Y")],
            ))],
        ));
        let mut db = DatabaseInstance::new();
        db.insert_parsed("E", "a", "b");
        db.insert_parsed("E", "c", "d");
        let store = evaluate(&program, &db).unwrap();
        assert_eq!(store.len(pred("from_a", 1)), 1);
        assert!(store.contains(pred("from_a", 1), &[sym("b")]));
    }

    #[test]
    fn constants_in_recursive_rules_are_matched() {
        // Reaches-from-a through delta rounds: the recursive rule carries a
        // constant, exercising probe keys that mix constants and variables.
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("r", &["Y"]),
            vec![BodyLiteral::Positive(DlAtom::new(
                pred("E", 2),
                vec![DlTerm::constant("n0"), DlTerm::var("Y")],
            ))],
        ));
        program.add_rule(Rule::new(
            atom("r", &["Z"]),
            vec![
                BodyLiteral::Positive(atom("r", &["Y"])),
                BodyLiteral::Positive(atom("E", &["Y", "Z"])),
            ],
        ));
        let db = chain_db(4);
        let store = evaluate(&program, &db).unwrap();
        assert_eq!(store.len(pred("r", 1)), 4);
        assert!(store.contains(pred("r", 1), &[sym("n4")]));
    }

    #[test]
    fn adom_predicate_is_populated() {
        let db = chain_db(2);
        let store = edb_from_instance(&db);
        assert_eq!(store.len(pred("adom", 1)), 3);
        assert_eq!(store.unary(pred("adom", 1)).unwrap().len(), 3);
    }

    #[test]
    fn unary_rejects_wrong_arities() {
        let db = chain_db(2);
        let store = edb_from_instance(&db);
        assert!(matches!(
            store.unary(pred("E", 2)),
            Err(EngineError::ArityMismatch { expected: 1, .. })
        ));
    }

    #[test]
    fn store_accessors_expose_relations_without_internals() {
        let db = chain_db(3);
        let store = evaluate(&reachability_program(), &db).unwrap();
        let path_id = store.pred_id(pred("path", 2)).expect("path was derived");
        assert_eq!(store.len_of(path_id), store.len(pred("path", 2)));
        // iter_relations covers E, adom and path, with consistent lengths.
        let mut seen = std::collections::BTreeMap::new();
        for (p, tuples) in store.iter_relations() {
            seen.insert(p, tuples.len());
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[&pred("E", 2)], 3);
        assert_eq!(seen[&pred("path", 2)], 6);
        assert!(store.pred_id(pred("nonexistent", 1)).is_none());
    }

    #[test]
    fn evaluation_over_an_overlay_matches_fresh_load() {
        // The layered entry: a base of the first half of the chain, an
        // overlay with the second half, evaluated without ever copying the
        // base — against a fresh load of the full instance. Sequential and
        // 4-thread runs both agree, and the base indexes are built during
        // the first run only.
        let full = chain_db(9);
        let mut prefix = DatabaseInstance::new();
        let mut delta = DatabaseInstance::new();
        for (i, &fact) in full.facts().iter().enumerate() {
            if i < 5 {
                prefix.insert(fact);
            } else {
                delta.insert(fact);
            }
        }
        let compiled = CompiledProgram::compile(&reachability_program()).unwrap();
        let fresh =
            compiled.run_on_store_with(edb_from_instance(&full), &EvalOptions::sequential());

        let base = edb_base_from_instance(&prefix);
        let (layered, stats) = compiled
            .run_on_store_with_stats(edb_overlay_on(&base, &delta), &EvalOptions::sequential());
        assert_eq!(layered, fresh);
        assert!(stats.base_index_builds > 0, "first run builds base indexes");

        let (again, stats2) = compiled
            .run_on_store_with_stats(edb_overlay_on(&base, &delta), &EvalOptions::sequential());
        assert_eq!(again, fresh);
        assert_eq!(stats2.base_index_builds, 0, "second run reuses them");

        let threaded = compiled
            .run_on_store_with(edb_overlay_on(&base, &delta), &EvalOptions::with_threads(4));
        assert_eq!(threaded, fresh);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i/j index several matrices at once
    fn semi_naive_matches_naive_on_random_graphs() {
        // Cross-check the engine against a straightforward reachability
        // computation on pseudo-random graphs.
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 8;
            let mut db = DatabaseInstance::new();
            let mut edges = Vec::new();
            for _ in 0..14 {
                let a = (next() % n) as usize;
                let b = (next() % n) as usize;
                db.insert_parsed("E", &format!("v{a}"), &format!("v{b}"));
                edges.push((a, b));
            }
            let store = evaluate(&reachability_program(), &db).unwrap();
            // Floyd-Warshall style ground truth.
            let mut reach = vec![vec![false; n as usize]; n as usize];
            for &(a, b) in &edges {
                reach[a][b] = true;
            }
            for k in 0..n as usize {
                for i in 0..n as usize {
                    for j in 0..n as usize {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            for i in 0..n as usize {
                for j in 0..n as usize {
                    let expected = reach[i][j];
                    let got = store.contains(
                        pred("path", 2),
                        &[sym(&format!("v{i}")), sym(&format!("v{j}"))],
                    );
                    assert_eq!(expected, got, "reachability mismatch {i}->{j}");
                }
            }
        }
    }

    #[test]
    fn indexed_and_scan_engines_agree_on_negation_and_builtins() {
        let mut program = reachability_program();
        program.declare_edb(pred("adom", 1));
        program.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
                BodyLiteral::Builtin(Builtin::Neq(DlTerm::var("X"), DlTerm::var("Y"))),
            ],
        ));
        let mut db = chain_db(4);
        db.insert_parsed("E", "n4", "n1");
        let indexed = evaluate(&program, &db).unwrap();
        let scanned = reference::evaluate_scan(&program, &db).unwrap();
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn store_equality_is_order_insensitive() {
        let mut a = RelationStore::new();
        let mut b = RelationStore::new();
        let p = pred("p", 1);
        a.insert(p, [sym("x")]);
        a.insert(p, [sym("y")]);
        b.insert(p, [sym("y")]);
        b.insert(p, [sym("x")]);
        assert_eq!(a, b);
        b.insert(p, [sym("z")]);
        assert_ne!(a, b);
    }
}
