//! A bottom-up, stratum-by-stratum Datalog engine with semi-naive evaluation
//! of recursive rules, stratified negation and built-in constraints.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use cqa_core::symbol::Symbol;
use cqa_db::instance::DatabaseInstance;

use crate::ast::{BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Program, Rule};
use crate::stratify::{stratify, StratifyError};

/// A tuple of constants.
pub type Tuple = Vec<Symbol>;

/// A set of derived relations.
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    relations: HashMap<Predicate, HashSet<Tuple>>,
}

impl RelationStore {
    /// Creates an empty store.
    pub fn new() -> RelationStore {
        RelationStore::default()
    }

    /// The tuples of a predicate (empty if absent).
    pub fn tuples(&self, pred: Predicate) -> impl Iterator<Item = &Tuple> {
        self.relations.get(&pred).into_iter().flatten()
    }

    /// True iff the tuple is present.
    pub fn contains(&self, pred: Predicate, tuple: &Tuple) -> bool {
        self.relations
            .get(&pred)
            .is_some_and(|set| set.contains(tuple))
    }

    /// Inserts a tuple; returns true if it was new.
    pub fn insert(&mut self, pred: Predicate, tuple: Tuple) -> bool {
        debug_assert_eq!(pred.arity, tuple.len());
        self.relations.entry(pred).or_default().insert(tuple)
    }

    /// Number of tuples of a predicate.
    pub fn len(&self, pred: Predicate) -> usize {
        self.relations.get(&pred).map_or(0, HashSet::len)
    }

    /// True iff no tuples at all are stored.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(HashSet::is_empty)
    }

    /// The unary relation of a predicate as a set of symbols.
    pub fn unary(&self, pred: Predicate) -> BTreeSet<Symbol> {
        assert_eq!(pred.arity, 1);
        self.tuples(pred).map(|t| t[0]).collect()
    }
}

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The program is not stratifiable.
    Stratification(StratifyError),
    /// A rule is unsafe (an unbound variable in the head, a negative literal
    /// or a builtin).
    UnsafeRule(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Stratification(e) => write!(f, "stratification error: {e}"),
            EngineError::UnsafeRule(r) => write!(f, "unsafe rule: {r}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StratifyError> for EngineError {
    fn from(e: StratifyError) -> EngineError {
        EngineError::Stratification(e)
    }
}

/// Loads the extensional database from a [`DatabaseInstance`]: every relation
/// name `R` becomes a binary predicate `R`, and the unary predicate `adom`
/// holds the active domain.
pub fn edb_from_instance(db: &DatabaseInstance) -> RelationStore {
    let mut store = RelationStore::new();
    for fact in db.facts() {
        let pred = Predicate {
            name: fact.rel.symbol(),
            arity: 2,
        };
        store.insert(pred, vec![fact.key.symbol(), fact.value.symbol()]);
    }
    let adom = Predicate::new("adom", 1);
    for &c in db.adom() {
        store.insert(adom, vec![c.symbol()]);
    }
    store
}

/// The binding environment during rule evaluation.
type Env = BTreeMap<Symbol, Symbol>;

fn resolve(term: &DlTerm, env: &Env) -> Option<Symbol> {
    match term {
        DlTerm::Const(c) => Some(*c),
        DlTerm::Var(v) => env.get(v).copied(),
    }
}

fn match_atom(atom: &DlAtom, tuple: &Tuple, env: &Env) -> Option<Env> {
    let mut new_env = env.clone();
    for (term, &value) in atom.args.iter().zip(tuple.iter()) {
        match term {
            DlTerm::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            DlTerm::Var(v) => match new_env.get(v) {
                Some(&bound) if bound != value => return None,
                Some(_) => {}
                None => {
                    new_env.insert(*v, value);
                }
            },
        }
    }
    Some(new_env)
}

fn eval_builtin(builtin: &Builtin, env: &Env) -> bool {
    let value = |t: &DlTerm| resolve(t, env).expect("builtin arguments must be bound (safe rule)");
    match builtin {
        Builtin::Neq(a, b) => value(a) != value(b),
        Builtin::Eq(a, b) => value(a) == value(b),
        Builtin::KeyConsistent(x1, y1, x2, y2) => value(x1) != value(x2) || value(y1) == value(y2),
    }
}

/// Evaluates a Datalog program over a database instance.
pub struct Evaluator<'a> {
    program: &'a Program,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for the program.
    pub fn new(program: &'a Program) -> Evaluator<'a> {
        Evaluator { program }
    }

    /// Runs the program on the EDB extracted from `db`, returning all derived
    /// relations (the EDB tuples are included in the result).
    pub fn run(&self, db: &DatabaseInstance) -> Result<RelationStore, EngineError> {
        self.run_on_store(edb_from_instance(db))
    }

    /// Runs the program on an explicitly provided EDB store.
    pub fn run_on_store(&self, mut store: RelationStore) -> Result<RelationStore, EngineError> {
        for rule in &self.program.rules {
            if !rule.is_safe() {
                return Err(EngineError::UnsafeRule(rule.to_string()));
            }
        }
        let strat = stratify(self.program)?;
        for stratum_preds in &strat.strata {
            let stratum_set: BTreeSet<Predicate> = stratum_preds.iter().copied().collect();
            let rules: Vec<&Rule> = self
                .program
                .rules
                .iter()
                .filter(|r| stratum_set.contains(&r.head.pred))
                .collect();
            self.evaluate_stratum(&rules, &stratum_set, &mut store);
        }
        Ok(store)
    }

    /// Semi-naive evaluation of one stratum.
    fn evaluate_stratum(
        &self,
        rules: &[&Rule],
        stratum: &BTreeSet<Predicate>,
        store: &mut RelationStore,
    ) {
        // Initial round: evaluate every rule against the full store.
        let mut delta: Vec<(Predicate, Tuple)> = Vec::new();
        for rule in rules {
            for tuple in self.derive(rule, store, None) {
                if store.insert(rule.head.pred, tuple.clone()) {
                    delta.push((rule.head.pred, tuple));
                }
            }
        }
        // Iterate: only rules with a positive atom in this stratum can fire
        // again, and at least one such atom must match a delta tuple.
        while !delta.is_empty() {
            let delta_set: HashSet<(Predicate, Tuple)> = delta.drain(..).collect();
            let mut next_delta = Vec::new();
            for rule in rules {
                let recursive_positions: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| {
                        matches!(l, BodyLiteral::Positive(a) if stratum.contains(&a.pred))
                    })
                    .map(|(i, _)| i)
                    .collect();
                if recursive_positions.is_empty() {
                    continue;
                }
                for &pos in &recursive_positions {
                    for tuple in self.derive(rule, store, Some((pos, &delta_set))) {
                        if store.insert(rule.head.pred, tuple.clone()) {
                            next_delta.push((rule.head.pred, tuple));
                        }
                    }
                }
            }
            delta = next_delta;
        }
    }

    /// Derives all head tuples of a rule. If `delta_at` is given, the
    /// positive literal at that body position is restricted to delta tuples.
    fn derive(
        &self,
        rule: &Rule,
        store: &RelationStore,
        delta_at: Option<(usize, &HashSet<(Predicate, Tuple)>)>,
    ) -> Vec<Tuple> {
        let mut results = Vec::new();
        // Order literals: positives first in given order, then negatives and
        // builtins (whose variables are bound by then because the rule is safe).
        let mut ordered: Vec<(usize, &BodyLiteral)> = Vec::new();
        for (i, l) in rule.body.iter().enumerate() {
            if matches!(l, BodyLiteral::Positive(_)) {
                ordered.push((i, l));
            }
        }
        for (i, l) in rule.body.iter().enumerate() {
            if !matches!(l, BodyLiteral::Positive(_)) {
                ordered.push((i, l));
            }
        }
        let mut envs: Vec<Env> = vec![Env::new()];
        for (position, literal) in ordered {
            let mut next: Vec<Env> = Vec::new();
            match literal {
                BodyLiteral::Positive(atom) => {
                    for env in &envs {
                        match delta_at {
                            Some((delta_pos, delta_set)) if delta_pos == position => {
                                for (pred, tuple) in delta_set {
                                    if *pred != atom.pred {
                                        continue;
                                    }
                                    if let Some(extended) = match_atom(atom, tuple, env) {
                                        next.push(extended);
                                    }
                                }
                            }
                            _ => {
                                for tuple in store.tuples(atom.pred) {
                                    if let Some(extended) = match_atom(atom, tuple, env) {
                                        next.push(extended);
                                    }
                                }
                            }
                        }
                    }
                }
                BodyLiteral::Negative(atom) => {
                    for env in &envs {
                        let ground: Option<Tuple> =
                            atom.args.iter().map(|t| resolve(t, env)).collect();
                        let ground = ground.expect("safe rule: negated atoms are bound");
                        if !store.contains(atom.pred, &ground) {
                            next.push(env.clone());
                        }
                    }
                }
                BodyLiteral::Builtin(builtin) => {
                    for env in &envs {
                        if eval_builtin(builtin, env) {
                            next.push(env.clone());
                        }
                    }
                }
            }
            envs = next;
            if envs.is_empty() {
                return results;
            }
        }
        for env in envs {
            let tuple: Option<Tuple> = rule.head.args.iter().map(|t| resolve(t, &env)).collect();
            results.push(tuple.expect("safe rule: head variables are bound"));
        }
        results
    }
}

/// Convenience: evaluates a program over a database instance.
pub fn evaluate(program: &Program, db: &DatabaseInstance) -> Result<RelationStore, EngineError> {
    Evaluator::new(program).run(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Rule;

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn atom(name: &str, vars: &[&str]) -> DlAtom {
        DlAtom::new(
            pred(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    }

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn chain_db(n: usize) -> DatabaseInstance {
        let mut db = DatabaseInstance::new();
        for i in 0..n {
            db.insert_parsed("E", &format!("n{i}"), &format!("n{}", i + 1));
        }
        db
    }

    fn reachability_program() -> Program {
        let mut p = Program::new();
        p.declare_edb(pred("E", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("E", &["Y", "Z"])),
            ],
        ));
        p
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let db = chain_db(5);
        let store = evaluate(&reachability_program(), &db).unwrap();
        let path = pred("path", 2);
        // 6 nodes, closure of a chain has n(n+1)/2 = 15 pairs.
        assert_eq!(store.len(path), 15);
        assert!(store.contains(path, &vec![sym("n0"), sym("n5")]));
        assert!(!store.contains(path, &vec![sym("n5"), sym("n0")]));
    }

    #[test]
    fn closure_of_a_cycle_terminates() {
        let mut db = chain_db(3);
        db.insert_parsed("E", "n3", "n0");
        let store = evaluate(&reachability_program(), &db).unwrap();
        let path = pred("path", 2);
        // Four nodes on a cycle: every node reaches every node, 16 pairs.
        assert_eq!(store.len(path), 16);
    }

    #[test]
    fn stratified_negation_complement() {
        let mut program = reachability_program();
        program.declare_edb(pred("adom", 1));
        program.add_rule(Rule::new(
            atom("unreach", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("adom", &["X"])),
                BodyLiteral::Positive(atom("adom", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
            ],
        ));
        let db = chain_db(2);
        let store = evaluate(&program, &db).unwrap();
        let unreach = pred("unreach", 2);
        assert!(store.contains(unreach, &vec![sym("n2"), sym("n0")]));
        assert!(!store.contains(unreach, &vec![sym("n0"), sym("n2")]));
        // Every node "unreaches" itself (no self-loops in a chain).
        assert!(store.contains(unreach, &vec![sym("n1"), sym("n1")]));
    }

    #[test]
    fn builtins_filter_bindings() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("loopless", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("E", &["X", "Y"])),
                BodyLiteral::Builtin(Builtin::Neq(DlTerm::var("X"), DlTerm::var("Y"))),
            ],
        ));
        let mut db = DatabaseInstance::new();
        db.insert_parsed("E", "a", "a");
        db.insert_parsed("E", "a", "b");
        let store = evaluate(&program, &db).unwrap();
        assert_eq!(store.len(pred("loopless", 2)), 1);
        assert!(store.contains(pred("loopless", 2), &vec![sym("a"), sym("b")]));
    }

    #[test]
    fn key_consistent_builtin_semantics() {
        let env: Env = [
            (sym("X1"), sym("a")),
            (sym("Y1"), sym("b")),
            (sym("X2"), sym("a")),
            (sym("Y2"), sym("c")),
        ]
        .into_iter()
        .collect();
        let conflicting = Builtin::KeyConsistent(
            DlTerm::var("X1"),
            DlTerm::var("Y1"),
            DlTerm::var("X2"),
            DlTerm::var("Y2"),
        );
        assert!(!eval_builtin(&conflicting, &env));
        let same_value = Builtin::KeyConsistent(
            DlTerm::var("X1"),
            DlTerm::var("Y1"),
            DlTerm::var("X2"),
            DlTerm::var("Y1"),
        );
        assert!(eval_builtin(&same_value, &env));
        let different_key = Builtin::KeyConsistent(
            DlTerm::var("X1"),
            DlTerm::var("Y1"),
            DlTerm::var("Y1"),
            DlTerm::var("Y2"),
        );
        assert!(eval_builtin(&different_key, &env));
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("bad", &["X", "Z"]),
            vec![BodyLiteral::Positive(atom("E", &["X", "Y"]))],
        ));
        let db = chain_db(1);
        assert!(matches!(
            evaluate(&program, &db),
            Err(EngineError::UnsafeRule(_))
        ));
    }

    #[test]
    fn constants_in_rules_are_matched() {
        let mut program = Program::new();
        program.declare_edb(pred("E", 2));
        program.add_rule(Rule::new(
            atom("from_a", &["Y"]),
            vec![BodyLiteral::Positive(DlAtom::new(
                pred("E", 2),
                vec![DlTerm::constant("a"), DlTerm::var("Y")],
            ))],
        ));
        let mut db = DatabaseInstance::new();
        db.insert_parsed("E", "a", "b");
        db.insert_parsed("E", "c", "d");
        let store = evaluate(&program, &db).unwrap();
        assert_eq!(store.len(pred("from_a", 1)), 1);
        assert!(store.contains(pred("from_a", 1), &vec![sym("b")]));
    }

    #[test]
    fn adom_predicate_is_populated() {
        let db = chain_db(2);
        let store = edb_from_instance(&db);
        assert_eq!(store.len(pred("adom", 1)), 3);
        assert_eq!(store.unary(pred("adom", 1)).len(), 3);
    }

    #[test]
    fn semi_naive_matches_naive_on_random_graphs() {
        // Cross-check the engine against a straightforward reachability
        // computation on pseudo-random graphs.
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 8;
            let mut db = DatabaseInstance::new();
            let mut edges = Vec::new();
            for _ in 0..14 {
                let a = (next() % n) as usize;
                let b = (next() % n) as usize;
                db.insert_parsed("E", &format!("v{a}"), &format!("v{b}"));
                edges.push((a, b));
            }
            let store = evaluate(&reachability_program(), &db).unwrap();
            // Floyd-Warshall style ground truth.
            let mut reach = vec![vec![false; n as usize]; n as usize];
            for &(a, b) in &edges {
                reach[a][b] = true;
            }
            for k in 0..n as usize {
                for i in 0..n as usize {
                    for j in 0..n as usize {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            for i in 0..n as usize {
                for j in 0..n as usize {
                    let expected = reach[i][j];
                    let got = store.contains(
                        pred("path", 2),
                        &vec![sym(&format!("v{i}")), sym(&format!("v{j}"))],
                    );
                    assert_eq!(expected, got, "reachability mismatch {i}->{j}");
                }
            }
        }
    }
}
