//! Stratification and linearity analysis.
//!
//! A program with negation is *stratified* if no predicate depends negatively
//! on itself through recursion; the engine evaluates strata bottom-up, and
//! the NL upper bound of Lemma 14 additionally requires the program to be
//! *linear*: within each recursive component, every rule body contains at
//! most one atom of that component.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BodyLiteral, Predicate, Program};

/// Errors produced by stratification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratifyError {
    /// A predicate depends negatively on itself (directly or through a cycle).
    NegativeCycle(Predicate),
}

impl std::fmt::Display for StratifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StratifyError::NegativeCycle(p) => {
                write!(f, "predicate {p} depends negatively on its own recursion")
            }
        }
    }
}

impl std::error::Error for StratifyError {}

/// The result of stratifying a program: a stratum index per IDB predicate,
/// and the list of strata in evaluation order.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum of every IDB predicate.
    pub stratum_of: BTreeMap<Predicate, usize>,
    /// Predicates grouped by stratum, in evaluation order.
    pub strata: Vec<Vec<Predicate>>,
}

/// Computes a stratification of the program, or reports that none exists.
///
/// The algorithm is the classical one: iterate
/// `stratum(p) ≥ stratum(q)` for positive dependencies and
/// `stratum(p) ≥ stratum(q) + 1` for negative dependencies until a fixpoint,
/// failing if a stratum exceeds the number of predicates.
pub fn stratify(program: &Program) -> Result<Stratification, StratifyError> {
    let idb: BTreeSet<Predicate> = program.idb_predicates().into_iter().collect();
    let mut stratum: BTreeMap<Predicate, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let limit = idb.len().max(1);
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let head = rule.head.pred;
            let head_stratum = stratum[&head];
            for literal in &rule.body {
                match literal {
                    BodyLiteral::Positive(a) if idb.contains(&a.pred) => {
                        let required = stratum[&a.pred];
                        if head_stratum < required {
                            stratum.insert(head, required);
                            changed = true;
                        }
                    }
                    BodyLiteral::Negative(a) if idb.contains(&a.pred) => {
                        let required = stratum[&a.pred] + 1;
                        if required > limit {
                            return Err(StratifyError::NegativeCycle(a.pred));
                        }
                        if head_stratum < required {
                            stratum.insert(head, required);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        if !changed {
            break;
        }
    }
    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<Predicate>> = vec![Vec::new(); max_stratum + 1];
    for (&p, &s) in &stratum {
        strata[s].push(p);
    }
    Ok(Stratification {
        stratum_of: stratum,
        strata,
    })
}

/// Computes the strongly connected components of the positive dependency
/// graph restricted to IDB predicates (a simple iterative Tarjan would be
/// overkill; we use repeated reachability, fine for the small programs here).
fn recursive_components(program: &Program) -> Vec<BTreeSet<Predicate>> {
    let idb: Vec<Predicate> = program.idb_predicates();
    let idb_set: BTreeSet<Predicate> = idb.iter().copied().collect();
    // edges p -> q if q appears positively in a body of a rule with head p.
    let mut edges: BTreeMap<Predicate, BTreeSet<Predicate>> = BTreeMap::new();
    for rule in &program.rules {
        for literal in &rule.body {
            if let BodyLiteral::Positive(a) = literal {
                if idb_set.contains(&a.pred) {
                    edges.entry(rule.head.pred).or_default().insert(a.pred);
                }
            }
        }
    }
    let reachable = |from: Predicate| -> BTreeSet<Predicate> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if let Some(next) = edges.get(&p) {
                for &q in next {
                    if seen.insert(q) {
                        stack.push(q);
                    }
                }
            }
        }
        seen
    };
    let mut assigned: BTreeSet<Predicate> = BTreeSet::new();
    let mut components = Vec::new();
    for &p in &idb {
        if assigned.contains(&p) {
            continue;
        }
        let forward = reachable(p);
        let component: BTreeSet<Predicate> = forward
            .iter()
            .copied()
            .filter(|&q| reachable(q).contains(&p))
            .chain(std::iter::once(p))
            .filter(|&q| !assigned.contains(&q))
            .collect();
        for &q in &component {
            assigned.insert(q);
        }
        components.push(component);
    }
    components
}

/// True iff the program is *linear*: every rule body contains at most one
/// positive atom whose predicate belongs to the same recursive component as
/// the head. Linear Datalog with stratified negation captures NL.
pub fn is_linear(program: &Program) -> bool {
    let components = recursive_components(program);
    let component_of =
        |p: Predicate| -> Option<usize> { components.iter().position(|c| c.contains(&p)) };
    for rule in &program.rules {
        let Some(head_component) = component_of(rule.head.pred) else {
            continue;
        };
        // Only count atoms in the *same* component as the head, and only if
        // the component is genuinely recursive for this rule's head (i.e. the
        // head can reach itself). A component is recursive if it has > 1
        // member or the single member occurs positively in one of its own
        // rule bodies.
        let recursive = components[head_component].len() > 1
            || program.rules.iter().any(|r| {
                r.head.pred == rule.head.pred
                    && r.body
                        .iter()
                        .any(|l| matches!(l, BodyLiteral::Positive(a) if a.pred == rule.head.pred))
            });
        if !recursive {
            continue;
        }
        let same_component = rule
            .body
            .iter()
            .filter(|l| {
                matches!(l, BodyLiteral::Positive(a)
                    if component_of(a.pred) == Some(head_component))
            })
            .count();
        if same_component > 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, DlTerm, Rule};

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    fn atom(name: &str, vars: &[&str]) -> DlAtom {
        DlAtom::new(
            pred(name, vars.len()),
            vars.iter().map(|v| DlTerm::var(v)).collect(),
        )
    }

    fn transitive_closure() -> Program {
        let mut p = Program::new();
        p.declare_edb(pred("edge", 2));
        p.add_rule(Rule::new(
            atom("path", &["X", "Y"]),
            vec![BodyLiteral::Positive(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("edge", &["Y", "Z"])),
            ],
        ));
        p
    }

    #[test]
    fn transitive_closure_is_stratified_and_linear() {
        let p = transitive_closure();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata.len(), 1);
        assert!(is_linear(&p));
    }

    #[test]
    fn nonlinear_closure_is_detected() {
        let mut p = transitive_closure();
        // path(X, Z) :- path(X, Y), path(Y, Z): quadratic rule.
        p.add_rule(Rule::new(
            atom("path", &["X", "Z"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("path", &["Y", "Z"])),
            ],
        ));
        assert!(!is_linear(&p));
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let mut p = transitive_closure();
        p.add_rule(Rule::new(
            atom("unreachable", &["X", "Y"]),
            vec![
                BodyLiteral::Positive(atom("node", &["X"])),
                BodyLiteral::Positive(atom("node", &["Y"])),
                BodyLiteral::Negative(atom("path", &["X", "Y"])),
            ],
        ));
        p.declare_edb(pred("node", 1));
        let s = stratify(&p).unwrap();
        assert!(s.stratum_of[&pred("unreachable", 2)] > s.stratum_of[&pred("path", 2)]);
    }

    #[test]
    fn negative_recursion_is_rejected() {
        let mut p = Program::new();
        p.declare_edb(pred("node", 1));
        // win(X) :- node(X), not win(X): not stratifiable.
        p.add_rule(Rule::new(
            atom("win", &["X"]),
            vec![
                BodyLiteral::Positive(atom("node", &["X"])),
                BodyLiteral::Negative(atom("win", &["X"])),
            ],
        ));
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn usage_of_lower_stratum_predicate_twice_is_still_linear() {
        // p(X) :- path(X, Y), path(Y, Y): two atoms of a *lower* component.
        let mut prog = transitive_closure();
        prog.add_rule(Rule::new(
            atom("p", &["X"]),
            vec![
                BodyLiteral::Positive(atom("path", &["X", "Y"])),
                BodyLiteral::Positive(atom("path", &["Y", "Y"])),
            ],
        ));
        assert!(is_linear(&prog));
        assert!(stratify(&prog).is_ok());
    }

    #[test]
    fn mutual_recursion_forms_one_component() {
        let mut p = Program::new();
        p.declare_edb(pred("e", 2));
        p.add_rule(Rule::new(
            atom("a", &["X"]),
            vec![
                BodyLiteral::Positive(atom("e", &["X", "Y"])),
                BodyLiteral::Positive(atom("b", &["Y"])),
            ],
        ));
        p.add_rule(Rule::new(
            atom("b", &["X"]),
            vec![
                BodyLiteral::Positive(atom("e", &["X", "Y"])),
                BodyLiteral::Positive(atom("a", &["Y"])),
            ],
        ));
        p.add_rule(Rule::new(
            atom("a", &["X"]),
            vec![BodyLiteral::Positive(atom("e", &["X", "X"]))],
        ));
        let comps = super::recursive_components(&p);
        assert!(comps.iter().any(|c| c.len() == 2));
        assert!(is_linear(&p));
    }
}
