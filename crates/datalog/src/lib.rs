//! # cqa-datalog
//!
//! Datalog with stratified negation: abstract syntax, stratification and
//! linearity analysis, a bottom-up semi-naive engine with built-in
//! constraints, and the generator of the **linear** Datalog program of
//! Lemma 14 that solves `CERTAINTY(q)` for path queries satisfying C2.
//!
//! ```
//! use cqa_core::prelude::*;
//! use cqa_datalog::prelude::*;
//!
//! let q = PathQuery::parse("RRX").unwrap();
//! let dec = b2b_strict_decomposition(q.word()).unwrap();
//! let cqa = generate_program(&dec, q.word()).unwrap();
//! assert!(is_linear(&cqa.program));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cqa_program;
pub mod engine;
mod fxhash;
pub mod parallel;
mod plan;
pub mod plan_cache;
pub mod reference;
pub mod store;
pub mod stratify;
pub mod tuple;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ast::{
        BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Program, Rule, RuleVars,
    };
    pub use crate::cqa_program::{generate_program, generate_program_with_cache, CqaProgram};
    pub use crate::engine::{evaluate, CompiledProgram, Evaluator};
    pub use crate::parallel::{EvalOptions, EvalStats, Threads};
    pub use crate::plan_cache::PlanCache;
    pub use crate::reference::evaluate_scan;
    pub use crate::store::{
        edb_base_from_instance, edb_from_instance, edb_overlay_on, BaseStore, PredId, PredTable,
        RelationStore, Tuples, UnaryView,
    };
    pub use crate::stratify::{is_linear, stratify, Stratification, StratifyError};
    pub use crate::tuple::Tuple;
    pub use cqa_core::regex_forms::b2b_strict_decomposition;
}
