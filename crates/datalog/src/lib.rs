//! # cqa-datalog
//!
//! Datalog with stratified negation: abstract syntax, stratification and
//! linearity analysis, a bottom-up semi-naive engine with built-in
//! constraints, and the generator of the **linear** Datalog program of
//! Lemma 14 that solves `CERTAINTY(q)` for path queries satisfying C2.
//!
//! # The demand pipeline
//!
//! The certainty check only inspects the `o/1` goal predicate, so generated
//! programs pass through [`demand::transform`] before plan compilation
//! (knob: [`demand::Demand`] in [`parallel::EvalOptions`], environment
//! override `PATH_CQA_DEMAND=off|prune|magic`):
//!
//! 1. **Prune** — rules whose head cannot reach the goal in the dependency
//!    graph are dropped; applies to any stratified program.
//! 2. **Magic** — eligible predicates are guarded behind `magic$…` demand
//!    predicates seeded from the goal's bound arguments (sideways
//!    information passing), so whole cones of irrelevant tuples are never
//!    derived. Negated predicates are restricted too when a per-stratum
//!    hazard analysis proves it safe — their negative occurrences then emit
//!    demand from the enclosing rule's positive literals; only negations
//!    whose restriction could break stratification keep their dependency
//!    cone exempt (see [`demand`] for the full argument).
//!
//! Both stages preserve the goal extension exactly; the transformed program
//! is generally *not* linear, which the engine never requires. The
//! [`plan_cache::PlanCache`] caches the transformed program and its
//! compiled plan as a unit, keyed by the *untransformed* program plus the
//! demand mode, so warm program generation skips the rewrite and the join
//! planner entirely.
//!
//! # Kernel selection
//!
//! Orthogonally to demand, plan compilation runs a per-rule *kernel
//! selection* pass: rules in the unary/binary fragment (all of the generated
//! CQA programs) are additionally translated to shape-specialized kernels —
//! columnar `(u32, u32)` scans, CSR-adjacency and sort-merge joins, bitset
//! membership — while ineligible rules keep the generic hash-join plan. The
//! selection is recorded in the compiled program (and therefore cached by
//! [`plan_cache::PlanCache`] as usual); whether kernels *execute* is decided
//! per run by [`parallel::Kernels`] in [`parallel::EvalOptions`]
//! (environment override `PATH_CQA_KERNELS=off|on`), and
//! [`parallel::EvalStats`] reports the kernel/generic split per run.
//!
//! ```
//! use cqa_core::prelude::*;
//! use cqa_datalog::prelude::*;
//!
//! let q = PathQuery::parse("RRX").unwrap();
//! let dec = b2b_strict_decomposition(q.word()).unwrap();
//! // The untransformed Lemma 14 program is linear (the NL upper bound)…
//! let plain = generate_program_with_options(&dec, q.word(), PlanCache::global(), Demand::Off)
//!     .unwrap();
//! assert!(is_linear(&plain.program));
//! // …and the demand-transformed default trades linearity for
//! // goal-directedness.
//! let cqa = generate_program(&dec, q.word()).unwrap();
//! assert!(stratify(&cqa.program).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cqa_program;
pub mod demand;
pub mod engine;
mod fxhash;
mod kernel;
pub mod maintain;
pub mod parallel;
mod plan;
pub mod plan_cache;
pub mod reference;
pub mod store;
pub mod stratify;
pub mod tuple;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::ast::{
        BodyLiteral, Builtin, DlAtom, DlTerm, Predicate, Program, Rule, RuleVars,
    };
    pub use crate::cqa_program::{
        generate_program, generate_program_with_cache, generate_program_with_options, CqaProgram,
    };
    pub use crate::demand::{transform as demand_transform, Demand, DemandMode, DemandReport};
    pub use crate::engine::{evaluate, CompiledProgram, Evaluator};
    pub use crate::maintain::{MaintainVerdict, MaintainedIdb};
    pub use crate::parallel::{Checkpoint, EvalOptions, EvalStats, Kernels, Maintain, Threads};
    pub use crate::plan_cache::PlanCache;
    pub use crate::reference::evaluate_scan;
    pub use crate::store::{
        edb_base_from_instance, edb_from_instance, edb_overlay_on, BaseStore, PredId, PredTable,
        RelationStore, Tuples, UnaryView,
    };
    pub use crate::stratify::{is_linear, stratify, Stratification, StratifyError};
    pub use crate::tuple::Tuple;
    pub use cqa_core::regex_forms::b2b_strict_decomposition;
}
